"""Tests for ordered-set partitioning (single-dimension)."""

import pytest

from repro.core.anonymity import check_k_anonymity
from repro.core.problem import PreparedTable
from repro.hierarchy import SuppressionHierarchy
from repro.models.partition1d import (
    Partition1DModel,
    interval_label,
    optimal_1d_partition,
)
from repro.relational.table import Table
from tests.conftest import tiny_numeric_problem


class TestIntervalLabel:
    def test_singleton(self):
        assert interval_label(5, 5) == "5"

    def test_range(self):
        assert interval_label(3, 9) == "[3-9]"


class TestOptimal1DPartition:
    def test_every_interval_covers_k(self):
        values = [1, 1, 2, 3, 3, 4, 5, 6, 7, 8, 9, 10]
        partition = optimal_1d_partition(values, 3)
        counts = []
        for low, high in partition:
            counts.append(sum(1 for v in values if low <= v <= high))
        assert all(count >= 3 for count in counts)
        assert sum(counts) == len(values)

    def test_intervals_are_disjoint_and_ordered(self):
        partition = optimal_1d_partition(list(range(20)), 4)
        for (_, a_high), (b_low, _) in zip(partition, partition[1:]):
            assert a_high < b_low

    def test_optimality_against_bruteforce(self):
        """DP must match exhaustive search on small inputs."""
        import itertools

        values = [1, 2, 2, 3, 4, 4, 5, 6]
        k = 2
        distinct = sorted(set(values))
        counts = [values.count(v) for v in distinct]

        def cost_of(boundaries):
            total = 0
            start = 0
            for end in boundaries:
                size = sum(counts[start:end])
                if size < k:
                    return None
                total += size ** 2
                start = end
            return total

        best = None
        for r in range(1, len(distinct) + 1):
            for cut in itertools.combinations(range(1, len(distinct) + 1), r):
                if cut[-1] != len(distinct):
                    continue
                cost = cost_of(cut)
                if cost is not None and (best is None or cost < best):
                    best = cost

        partition = optimal_1d_partition(values, k)
        dp_cost = 0
        for low, high in partition:
            dp_cost += sum(1 for v in values if low <= v <= high) ** 2
        assert dp_cost == best

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            optimal_1d_partition([1, 2], 3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            optimal_1d_partition([1, 2], 0)

    def test_string_domain(self):
        partition = optimal_1d_partition(list("aabbccdd"), 4)
        assert partition == [("a", "b"), ("c", "d")]


class TestPartition1DModel:
    def test_tiny_numeric(self):
        problem = tiny_numeric_problem()
        result = Partition1DModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_interval_details_exposed(self):
        problem = tiny_numeric_problem()
        result = Partition1DModel().anonymize(problem, 2)
        assert set(result.details["intervals"]) == set(problem.quasi_identifier)

    def test_already_anonymous_data_untouched(self):
        table = Table.from_columns({"a": ["x", "x", "y", "y"]})
        problem = PreparedTable(table, {"a": SuppressionHierarchy()})
        result = Partition1DModel().anonymize(problem, 2)
        assert result.table.column("a").to_list() == ["x", "x", "y", "y"]

    def test_coarsens_to_single_class_when_needed(self):
        table = Table.from_columns({"a": ["p", "q", "r", "s"]})
        problem = PreparedTable(table, {"a": SuppressionHierarchy()})
        result = Partition1DModel().anonymize(problem, 4)
        assert len(set(result.table.column("a").to_list())) == 1
