"""Tests for the full-domain and attribute-suppression model wrappers."""

import pytest

from repro.datasets.patients import patients_problem
from repro.models.fulldomain import (
    AttributeSuppressionModel,
    FullDomainModel,
    node_view,
)
from repro.lattice.node import LatticeNode


class TestFullDomainModel:
    def test_picks_minimal_height_node(self):
        result = FullDomainModel().anonymize(patients_problem(), 2)
        assert result.details["node"].height == 2
        assert result.details["solutions"] == 5

    def test_weighted_choice(self):
        model = FullDomainModel(weights={"Sex": 10.0})
        result = model.anonymize(patients_problem(), 2)
        assert result.details["node"].level_of("Sex") == 0

    def test_custom_search_injection(self):
        from repro.core.bottomup import bottom_up_search

        model = FullDomainModel(search=bottom_up_search)
        result = model.anonymize(patients_problem(), 2)
        assert result.details["node"].height == 2

    def test_infeasible_k(self):
        from repro.models.base import RecodingError

        with pytest.raises(RecodingError):
            FullDomainModel().anonymize(patients_problem(), 6 + 1)


class TestAttributeSuppressionModel:
    def test_each_column_intact_or_starred(self):
        problem = patients_problem()
        result = AttributeSuppressionModel().anonymize(problem, 2)
        for name in problem.quasi_identifier:
            values = set(result.table.column(name).to_list())
            original = set(problem.table.column(name).to_list())
            assert values == {"*"} or values <= original

    def test_patients_needs_two_suppressions(self):
        """No single-attribute release keeps Patients 2-anonymous with the
        other two intact; the minimal answer suppresses two columns."""
        result = AttributeSuppressionModel().anonymize(patients_problem(), 2)
        assert len(result.details["suppressed_attributes"]) == 2

    def test_details_node_in_suppression_lattice(self):
        result = AttributeSuppressionModel().anonymize(patients_problem(), 2)
        node = result.details["node"]
        assert all(level in (0, 1) for level in node.levels)


class TestNodeView:
    def test_wraps_explicit_node(self):
        problem = patients_problem()
        node = LatticeNode(("Birthdate", "Sex", "Zipcode"), (1, 1, 0))
        result = node_view(problem, node)
        assert set(result.table.column("Sex").to_list()) == {"Person"}
