"""Tests for unrestricted single-dimension recoding."""

from repro.core.anonymity import check_k_anonymity
from repro.core.problem import PreparedTable
from repro.datasets.patients import patients_problem
from repro.hierarchy import RoundingHierarchy, SuppressionHierarchy
from repro.models.unrestricted import UnrestrictedModel
from repro.relational.table import Table


class TestUnrestrictedModel:
    def test_patients(self):
        problem = patients_problem()
        result = UnrestrictedModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_values_move_independently(self):
        """The paper's own illustration of this model: one value of a domain
        can generalize while a sibling stays intact (no subtree closure)."""
        table = Table.from_columns(
            {
                "zip": ["53715"] * 4 + ["53710", "53711"],
                "pad": ["p"] * 6,
            }
        )
        problem = PreparedTable(
            table,
            {"zip": RoundingHierarchy(5), "pad": SuppressionHierarchy()},
        )
        result = UnrestrictedModel().anonymize(problem, 2)
        recoded = result.table.column("zip").to_list()
        # the four 53715 rows need no generalization; the two rare values do
        assert recoded[:4] == ["53715"] * 4
        assert recoded[4] == recoded[5] == "5371*"

    def test_value_levels_reported(self):
        problem = patients_problem()
        result = UnrestrictedModel().anonymize(problem, 2)
        levels = result.details["value_levels"]
        assert set(levels) == set(problem.quasi_identifier)

    def test_converges_on_hard_instance(self):
        """All-distinct rows with k = rows: must coarsen everything."""
        table = Table.from_columns({"a": ["p", "q", "r"], "b": ["1", "2", "3"]})
        problem = PreparedTable(
            table, {"a": SuppressionHierarchy(), "b": SuppressionHierarchy()}
        )
        result = UnrestrictedModel().anonymize(problem, 3)
        assert len(set(result.table.to_rows())) == 1

    def test_anonymous_input_untouched(self):
        table = Table.from_columns({"a": ["x", "x", "y", "y"]})
        problem = PreparedTable(table, {"a": SuppressionHierarchy()})
        result = UnrestrictedModel().anonymize(problem, 2)
        assert result.table.column("a").to_list() == ["x", "x", "y", "y"]
