"""Tests for the Figure 13 multi-attribute value generalization lattice."""

import pytest

from repro.core.problem import PreparedTable
from repro.hierarchy import RoundingHierarchy, SuppressionHierarchy
from repro.models.value_lattice import ValueLattice, ValueNode
from repro.relational.table import Table


def figure13_problem() -> PreparedTable:
    """Sex × Zipcode over the Figure 2 domains."""
    table = Table.from_columns(
        {
            "Sex": ["Male", "Female", "Male", "Female"],
            "Zipcode": ["53715", "53710", "53706", "53703"],
        }
    )
    return PreparedTable(
        table,
        {
            "Sex": SuppressionHierarchy("Person"),
            "Zipcode": RoundingHierarchy(5, height=2),
        },
    )


@pytest.fixture(scope="module")
def lattice() -> ValueLattice:
    return ValueLattice(figure13_problem())


class TestStructure:
    def test_base_nodes_are_all_combinations(self, lattice):
        assert sum(1 for _ in lattice.base_nodes()) == 2 * 4

    def test_figure13_total_node_count(self, lattice):
        # Figure 13 draws 2·4 + 1·4 + 2·2 + 1·2 + 2·1 + 1·1 = 21 nodes
        assert lattice.size() == 21

    def test_node_inference(self, lattice):
        node = lattice.node(("Male", "5371*"))
        assert node.levels == (0, 1)

    def test_ambiguity_requires_levels(self):
        # a hierarchy whose suppressed token collides with a base value
        table = Table.from_columns({"a": ["*", "x"]})
        problem = PreparedTable(table, {"a": SuppressionHierarchy("*")})
        lattice = ValueLattice(problem)
        with pytest.raises(ValueError, match="ambiguous"):
            lattice.node(("*",))
        assert lattice.node(("*",), levels=(1,)).levels == (1,)


class TestPaperExample:
    """Section 5.1.3's worked example around ⟨Male, 53715⟩ / ⟨Person, 5371*⟩."""

    def test_direct_generalizations_of_male_53715(self, lattice):
        node = lattice.node(("Male", "53715"))
        gens = {str(g) for g in lattice.direct_generalizations(node)}
        assert gens == {"<Person, 53715>", "<Male, 5371*>"}

    def test_implied_generalizations_reach_top(self, lattice):
        node = lattice.node(("Male", "53715"))
        implied = {str(g) for g in lattice.implied_generalizations(node)}
        assert "<Person, 537**>" in implied
        assert "<Person, 5371*>" in implied
        assert "<Male, 53710>" not in implied  # siblings are not reachable

    def test_subgraph_rooted_at_person_5371star(self, lattice):
        """The paper: "the subgraph rooted at ⟨Person, 5371*⟩ contains nodes
        ⟨Person, 53715⟩, ⟨Person, 53710⟩, ⟨Male, 5371*⟩, ⟨Female, 5371*⟩,
        ⟨Male, 53715⟩, ⟨Female, 53715⟩, ⟨Male, 53710⟩, and ⟨Female, 53710⟩."
        """
        root = lattice.node(("Person", "5371*"))
        members = {str(node) for node in lattice.subgraph_rooted_at(root)}
        assert members == {
            "<Person, 53715>",
            "<Person, 53710>",
            "<Male, 5371*>",
            "<Female, 5371*>",
            "<Male, 53715>",
            "<Female, 53715>",
            "<Male, 53710>",
            "<Female, 53710>",
        }

    def test_subgraph_of_base_node_is_empty(self, lattice):
        node = lattice.node(("Male", "53715"))
        assert lattice.subgraph_rooted_at(node) == set()

    def test_top_subgraph_contains_everything_else(self, lattice):
        top = lattice.node(("Person", "537**"))
        assert len(lattice.subgraph_rooted_at(top)) == 21 - 1
