"""Cross-cutting tests: every Section 5 model yields verified k-anonymity."""

import pytest

from repro.core.anonymity import check_k_anonymity
from repro.models import (
    AttributeSuppressionModel,
    CellGeneralizationModel,
    CellSuppressionModel,
    FullDomainModel,
    MondrianModel,
    MultiDimSubgraphModel,
    Partition1DModel,
    SubtreeModel,
    UnrestrictedModel,
    UnrestrictedMultiDimModel,
)
from repro.models.base import RecodingError
from tests.conftest import make_random_problem, tiny_numeric_problem

ALL_MODELS = [
    FullDomainModel,
    AttributeSuppressionModel,
    SubtreeModel,
    UnrestrictedModel,
    Partition1DModel,
    MondrianModel,
    MultiDimSubgraphModel,
    UnrestrictedMultiDimModel,
    CellSuppressionModel,
    CellGeneralizationModel,
]


@pytest.mark.parametrize("model_class", ALL_MODELS)
class TestEveryModel:
    def test_output_is_k_anonymous(self, model_class):
        problem = tiny_numeric_problem()
        result = model_class().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_row_count_preserved_for_generalizing_models(self, model_class):
        problem = tiny_numeric_problem()
        result = model_class().anonymize(problem, 2)
        assert result.table.num_rows == problem.num_rows

    def test_k_above_rows_rejected(self, model_class):
        problem = tiny_numeric_problem()
        with pytest.raises(RecodingError):
            model_class().anonymize(problem, problem.num_rows + 1)

    def test_invalid_k_rejected(self, model_class):
        with pytest.raises(ValueError):
            model_class().anonymize(tiny_numeric_problem(), 0)

    def test_descriptor_resolves(self, model_class):
        descriptor = model_class().descriptor
        assert descriptor.paper_section.startswith("5")

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 3])
    def test_random_instances(self, model_class, seed, k):
        problem = make_random_problem(seed + 900, num_rows=30)
        result = model_class().anonymize(problem, k)
        assert check_k_anonymity(result.table, problem.quasi_identifier, k)

    def test_non_qi_columns_untouched(self, model_class):
        problem = tiny_numeric_problem()
        # add a sensitive column outside the QI
        from repro.core.problem import PreparedTable
        from repro.relational.column import Column

        table = problem.table.with_column(
            "disease", Column.from_values([f"d{i % 3}" for i in range(10)])
        )
        extended = PreparedTable(
            table,
            {name: problem.hierarchy(name) for name in problem.quasi_identifier},
            problem.quasi_identifier,
        )
        result = model_class().anonymize(extended, 2)
        assert result.table.column("disease") == table.column("disease")
