"""Tests for multi-dimension hierarchy-based recoding (Section 5.1.3)."""

from repro.core.anonymity import check_k_anonymity
from repro.core.problem import PreparedTable
from repro.datasets.patients import patients_problem
from repro.hierarchy import RoundingHierarchy, SuppressionHierarchy
from repro.metrics import discernibility
from repro.models.multidim import (
    MultiDimSubgraphModel,
    UnrestrictedMultiDimModel,
    _VectorRecoding,
)
from repro.relational.table import Table


def sex_zip_problem() -> PreparedTable:
    """The Figure 13 domain: Sex × Zipcode."""
    table = Table.from_columns(
        {
            "Sex": ["Male", "Male", "Female", "Female", "Male", "Female"],
            "Zipcode": ["53715", "53710", "53715", "53710", "53706", "53703"],
        }
    )
    return PreparedTable(
        table,
        {
            "Sex": SuppressionHierarchy("Person"),
            "Zipcode": RoundingHierarchy(5, height=2),
        },
    )


class TestVectorRecoding:
    def test_distinct_vectors_found(self):
        state = _VectorRecoding(sex_zip_problem())
        assert state.vectors.shape[0] == 6

    def test_initial_levels_zero(self):
        state = _VectorRecoding(sex_zip_problem())
        assert not state.levels.any()

    def test_bump_targets_most_headroom(self):
        state = _VectorRecoding(sex_zip_problem())
        assert state.bump(0)
        # Zipcode (height 2) has more headroom than Sex (height 1)
        assert state.levels[0].tolist() == [0, 1]

    def test_bump_exhausts(self):
        state = _VectorRecoding(sex_zip_problem())
        for _ in range(3):
            assert state.bump(0)
        assert not state.bump(0)


class TestUnrestrictedMultiDim:
    def test_patients(self):
        problem = patients_problem()
        result = UnrestrictedMultiDimModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_only_rare_vectors_move(self):
        """Vectors already in big classes stay at level zero: the two rare
        zipcodes merge with each other, not with the popular one."""
        table = Table.from_columns(
            {
                "Sex": ["Male"] * 7,
                "Zipcode": ["53715"] * 5 + ["53710", "53711"],
            }
        )
        problem = PreparedTable(
            table,
            {
                "Sex": SuppressionHierarchy("Person"),
                "Zipcode": RoundingHierarchy(5, height=2),
            },
        )
        result = UnrestrictedMultiDimModel().anonymize(problem, 2)
        recoded = result.table.to_rows()
        assert recoded.count(("Male", "53715")) == 5
        assert recoded.count(("Male", "5371*")) == 2

    def test_whole_class_moves_when_it_must(self):
        """With only two distinct vectors, the popular one must coarsen too
        (recoding maps value vectors, so identical rows move together)."""
        table = Table.from_columns(
            {
                "Sex": ["Male"] * 5 + ["Female"],
                "Zipcode": ["53715"] * 5 + ["53703"],
            }
        )
        problem = PreparedTable(
            table,
            {
                "Sex": SuppressionHierarchy("Person"),
                "Zipcode": RoundingHierarchy(5, height=2),
            },
        )
        result = UnrestrictedMultiDimModel().anonymize(problem, 2)
        assert len(set(result.table.to_rows())) == 1

    def test_distinct_vector_count_reported(self):
        result = UnrestrictedMultiDimModel().anonymize(sex_zip_problem(), 2)
        assert result.details["distinct_vectors"] == 6


class TestSubgraphModel:
    def test_patients(self):
        problem = patients_problem()
        result = MultiDimSubgraphModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_subgraph_closure_property(self):
        """Section 5.1.3's example: if ⟨Male, 53715⟩ maps to ⟨Person, 5371*⟩
        then ⟨Female, 53715⟩, ⟨Male, 53710⟩, ⟨Female, 53710⟩ must too."""
        problem = sex_zip_problem()
        result = MultiDimSubgraphModel().anonymize(problem, 3)
        original = problem.table.to_rows()
        recoded = result.table.to_rows()
        mapping = dict(zip(original, recoded))
        targets = set(mapping.values())
        for target in targets:
            sex_t, zip_t = target
            members = {
                source for source, dest in mapping.items() if dest == target
            }
            # every source vector that generalizes to the target must be a member
            for source in mapping:
                sex_s, zip_s = source
                sex_matches = sex_t in (sex_s, "Person")
                zip_matches = (
                    zip_t == zip_s
                    or (zip_t.endswith("*") and zip_s.startswith(zip_t.rstrip("*")))
                )
                if sex_matches and zip_matches:
                    assert source in members, (source, target)

    def test_subgraph_at_least_as_coarse_as_unrestricted(self):
        problem = sex_zip_problem()
        qi = problem.quasi_identifier
        subgraph = MultiDimSubgraphModel().anonymize(problem, 2)
        unrestricted = UnrestrictedMultiDimModel().anonymize(problem, 2)
        assert discernibility(subgraph.table, qi) >= discernibility(
            unrestricted.table, qi
        )
