"""Tests for k-Optimize (Bayardo-Agrawal [3], §6)."""

import itertools

import numpy as np
import pytest

from repro.core.anonymity import check_k_anonymity
from repro.core.problem import PreparedTable
from repro.hierarchy import SuppressionHierarchy
from repro.models.koptimize import (
    KOptimizeModel,
    _PartitionSpace,
    partition_cost,
    partition_lower_bound,
)
from repro.relational.table import Table


def numeric_problem(values_by_attr: dict[str, list]) -> PreparedTable:
    table = Table.from_columns(values_by_attr)
    return PreparedTable(
        table, {name: SuppressionHierarchy() for name in values_by_attr}
    )


def brute_force_cost(problem: PreparedTable, k: int) -> int:
    """Exhaustive minimum over every split-point subset."""
    space = _PartitionSpace(problem)
    best = None
    for r in range(len(space.items) + 1):
        for subset in itertools.combinations(space.items, r):
            sizes = space.class_sizes(frozenset(subset))
            cost = partition_cost(sizes, k, problem.num_rows)
            if best is None or cost < best:
                best = cost
    return best


class TestCostAndBound:
    def test_cost_all_retained(self):
        sizes = np.asarray([2, 3])
        assert partition_cost(sizes, 2, 5) == 4 + 9

    def test_cost_with_suppression(self):
        sizes = np.asarray([1, 4])
        assert partition_cost(sizes, 2, 5) == 16 + 1 * 5

    def test_bound_is_admissible_under_refinement(self):
        """The bound must never exceed the cost of any refinement."""
        problem = numeric_problem(
            {"a": [1, 1, 2, 3, 4, 4, 5, 6], "b": list("xxyyxxyy")}
        )
        space = _PartitionSpace(problem)
        k = 2
        for r in range(3):
            for subset in itertools.combinations(space.items, r):
                splits = frozenset(subset)
                bound = partition_lower_bound(
                    space.class_sizes(splits), k, problem.num_rows
                )
                # every superset (refinement) must cost at least the bound
                remaining = [i for i in space.items if i not in splits]
                for extra in range(len(remaining) + 1):
                    for addition in itertools.combinations(remaining, extra):
                        refined = splits | set(addition)
                        cost = partition_cost(
                            space.class_sizes(refined), k, problem.num_rows
                        )
                        assert bound <= cost, (splits, refined)


class TestOptimality:
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_brute_force_single_attribute(self, k):
        problem = numeric_problem({"a": [1, 1, 2, 3, 3, 4, 5, 6, 7, 8]})
        result = KOptimizeModel().anonymize(problem, k)
        assert result.details["cost"] == brute_force_cost(problem, k)

    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_brute_force_two_attributes(self, k):
        problem = numeric_problem(
            {"a": [1, 2, 2, 3, 4, 4], "b": [9, 9, 8, 8, 7, 7]}
        )
        result = KOptimizeModel().anonymize(problem, k)
        assert result.details["cost"] == brute_force_cost(problem, k)

    def test_randomized_against_brute_force(self):
        import random

        rng = random.Random(4)
        for _ in range(6):
            values = {
                "a": [rng.randint(0, 4) for _ in range(10)],
                "b": [rng.randint(0, 2) for _ in range(10)],
            }
            problem = numeric_problem(values)
            result = KOptimizeModel().anonymize(problem, 2)
            assert result.details["cost"] == brute_force_cost(problem, 2)

    def test_pruning_explores_fewer_nodes_than_powerset(self):
        problem = numeric_problem({"a": [1, 1, 2, 2, 3, 3, 4, 4, 5, 5]})
        result = KOptimizeModel().anonymize(problem, 2)
        total_items = result.details["total_items"]
        assert result.details["nodes_explored"] < 2 ** total_items


class TestOutput:
    def test_output_is_k_anonymous(self):
        problem = numeric_problem({"a": [1, 1, 2, 3, 3, 4, 5, 6, 7, 8]})
        result = KOptimizeModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_perfectly_partitionable_data_keeps_intervals_tight(self):
        problem = numeric_problem({"a": [1, 1, 2, 2, 9, 9]})
        result = KOptimizeModel().anonymize(problem, 2)
        assert result.suppressed_rows == 0
        assert set(result.table.column("a").to_list()) == {"1", "2", "9"}

    def test_suppression_when_cheaper(self):
        # one extreme outlier: suppressing it beats merging it into a range
        problem = numeric_problem(
            {"a": [1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 99]}
        )
        result = KOptimizeModel().anonymize(problem, 2)
        assert result.suppressed_rows == 1
        assert result.table.num_rows == 12

    def test_item_cap(self):
        problem = numeric_problem({"a": list(range(30))})
        with pytest.raises(ValueError, match="exponential"):
            KOptimizeModel(max_items=10).anonymize(problem, 2)

    def test_interval_labels_well_formed(self):
        problem = numeric_problem({"a": [1, 1, 2, 3, 3, 4]})
        result = KOptimizeModel().anonymize(problem, 3)
        for value in set(result.table.column("a").to_list()):
            assert value.startswith("[") or value.isdigit()
