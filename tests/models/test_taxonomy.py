"""Tests for the model taxonomy registry (Section 5 axes)."""

import pytest

from repro.models.taxonomy import (
    Coding,
    Dimensionality,
    Scope,
    Structure,
    all_model_descriptors,
    descriptor,
)


class TestRegistry:
    def test_all_ten_cells_present(self):
        assert len(all_model_descriptors()) == 10

    def test_descriptor_lookup(self):
        full_domain = descriptor("full-domain")
        assert full_domain.scope is Scope.GLOBAL
        assert full_domain.structure is Structure.HIERARCHY
        assert full_domain.dimensionality is Dimensionality.SINGLE

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="unknown model"):
            descriptor("nope")

    def test_registry_copy_is_defensive(self):
        copy = all_model_descriptors()
        copy.clear()
        assert len(all_model_descriptors()) == 10


class TestClassification:
    def test_local_models_are_local(self):
        assert descriptor("cell-suppression").scope is Scope.LOCAL
        assert descriptor("cell-generalization").scope is Scope.LOCAL

    def test_partition_models(self):
        assert descriptor("partition-1d").structure is Structure.PARTITION
        assert descriptor("mondrian").structure is Structure.PARTITION

    def test_multidim_models(self):
        for key in ("multidim-subgraph", "multidim-unrestricted", "mondrian"):
            assert descriptor(key).dimensionality is Dimensionality.MULTI

    def test_suppression_models(self):
        assert descriptor("attribute-suppression").coding is Coding.SUPPRESSION
        assert descriptor("cell-suppression").coding is Coding.SUPPRESSION

    def test_paper_sections_recorded(self):
        assert descriptor("mondrian").paper_section == "5.1.4"
        assert descriptor("subtree").paper_section == "5.1.1"

    def test_axes_tuple(self):
        axes = descriptor("full-domain").axes()
        assert axes == ("generalization", "global", "hierarchy", "single-dimension")

    def test_str_mentions_axes(self):
        assert "global" in str(descriptor("full-domain"))
