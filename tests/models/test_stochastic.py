"""Tests for the genetic and simulated-annealing searches (§6 refs [11],[21])."""

import pytest

from repro.core.anonymity import check_k_anonymity
from repro.datasets.patients import patients_problem
from repro.models.stochastic import AnnealingSubtreeModel, GeneticSubtreeModel
from repro.models.subtree import SubtreeModel
from tests.conftest import make_random_problem, tiny_numeric_problem

MODELS = [
    GeneticSubtreeModel(population=6, generations=5, seed=1),
    AnnealingSubtreeModel(steps=80, seed=1),
]


@pytest.mark.parametrize("model", MODELS, ids=["genetic", "annealing"])
class TestBothSearches:
    def test_patients(self, model):
        problem = patients_problem()
        result = model.anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_tiny_numeric(self, model):
        problem = tiny_numeric_problem()
        result = model.anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_instances(self, model, seed):
        problem = make_random_problem(seed + 1_500, num_rows=25)
        result = model.anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_row_count_preserved(self, model):
        problem = tiny_numeric_problem()
        assert model.anonymize(problem, 2).table.num_rows == problem.num_rows

    def test_evaluation_count_reported(self, model):
        result = model.anonymize(patients_problem(), 2)
        assert result.details["evaluations"] > 0

    def test_cut_details_cover_qi(self, model):
        problem = patients_problem()
        result = model.anonymize(problem, 2)
        assert set(result.details["cuts"]) == set(problem.quasi_identifier)


class TestDeterminismAndSeeds:
    def test_same_seed_same_answer(self):
        problem = patients_problem()
        first = GeneticSubtreeModel(seed=7).anonymize(problem, 2)
        second = GeneticSubtreeModel(seed=7).anonymize(problem, 2)
        assert first.table == second.table

    def test_annealing_same_seed_same_answer(self):
        problem = patients_problem()
        first = AnnealingSubtreeModel(seed=7).anonymize(problem, 2)
        second = AnnealingSubtreeModel(seed=7).anonymize(problem, 2)
        assert first.table == second.table


class TestParameterValidation:
    def test_population_bounds(self):
        with pytest.raises(ValueError):
            GeneticSubtreeModel(population=1)

    def test_cooling_bounds(self):
        with pytest.raises(ValueError):
            AnnealingSubtreeModel(cooling=1.5)


class TestNoMinimalityGuarantee:
    def test_stochastic_can_lose_to_greedy(self):
        """The paper's contrast: local search has no minimality guarantee —
        on at least one instance it should end coarser than greedy TDS."""
        from repro.metrics import discernibility

        losses = 0
        for seed in range(6):
            problem = make_random_problem(seed + 1_600, num_rows=30)
            qi = problem.quasi_identifier
            greedy = SubtreeModel().anonymize(problem, 2)
            stochastic = AnnealingSubtreeModel(steps=25, seed=seed).anonymize(
                problem, 2
            )
            if discernibility(stochastic.table, qi) > discernibility(
                greedy.table, qi
            ):
                losses += 1
        assert losses >= 1
