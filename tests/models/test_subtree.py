"""Tests for single-dimension full-subtree recoding."""

from repro.core.anonymity import check_k_anonymity
from repro.core.problem import PreparedTable
from repro.datasets.patients import patients_problem
from repro.hierarchy import SuppressionHierarchy, TaxonomyHierarchy
from repro.models.subtree import SubtreeModel
from repro.relational.table import Table


class TestSubtreeModel:
    def test_patients(self):
        problem = patients_problem()
        result = SubtreeModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_cut_descriptions_cover_domains(self):
        problem = patients_problem()
        result = SubtreeModel().anonymize(problem, 2)
        cuts = result.details["cuts"]
        assert set(cuts) == set(problem.quasi_identifier)

    def test_subtree_constraint_holds(self):
        """Sibling leaves under a generalized node must map together."""
        table = Table.from_columns(
            {
                "color": ["red", "crimson", "navy", "sky", "red", "crimson",
                          "navy", "sky"],
                "size": ["s", "s", "s", "s", "l", "l", "l", "l"],
            }
        )
        hierarchy = TaxonomyHierarchy.grouped(
            {"warm": ["red", "crimson"], "cool": ["navy", "sky"]}
        )
        problem = PreparedTable(
            table, {"color": hierarchy, "size": SuppressionHierarchy()}
        )
        result = SubtreeModel().anonymize(problem, 2)
        recoded = dict(
            zip(table.column("color").to_list(), result.table.column("color").to_list())
        )
        # if red was generalized to warm, crimson must be too (and vice versa)
        if recoded["red"] == "warm":
            assert recoded["crimson"] == "warm"
        if recoded["navy"] == "cool":
            assert recoded["sky"] == "cool"

    def test_specializes_when_data_allows(self):
        """Uniform data should end fully specialized (no generalization)."""
        table = Table.from_columns({"a": ["x", "x", "x", "x"]})
        problem = PreparedTable(table, {"a": SuppressionHierarchy()})
        result = SubtreeModel().anonymize(problem, 2)
        assert result.table.column("a").to_list() == ["x"] * 4

    def test_never_loosens_below_k(self):
        """Greedy specialization stops exactly where k-anonymity would break."""
        problem = patients_problem()
        result = SubtreeModel().anonymize(problem, 3)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 3)

    def test_beats_or_ties_full_domain_on_discernibility(self):
        """Subtree recoding is a superset of full-domain: the greedy answer
        should never be (much) worse; on Patients it ties or wins."""
        from repro.metrics import discernibility
        from repro.models.fulldomain import FullDomainModel

        problem = patients_problem()
        qi = problem.quasi_identifier
        subtree = SubtreeModel().anonymize(problem, 2)
        full = FullDomainModel().anonymize(problem, 2)
        assert discernibility(subtree.table, qi) <= discernibility(full.table, qi)
