"""Tests for local recoding models (Section 5.2)."""

from repro.core.anonymity import check_k_anonymity
from repro.core.problem import PreparedTable
from repro.datasets.patients import patients_problem
from repro.hierarchy import RoundingHierarchy, SuppressionHierarchy
from repro.models.local import (
    SUPPRESSED,
    CellGeneralizationModel,
    CellSuppressionModel,
)
from repro.relational.table import Table


class TestCellSuppression:
    def test_patients(self):
        problem = patients_problem()
        result = CellSuppressionModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_cells_are_original_or_star(self):
        problem = patients_problem()
        result = CellSuppressionModel().anonymize(problem, 2)
        for name in problem.quasi_identifier:
            original = set(problem.table.column(name).to_list())
            for value in result.table.column(name).to_list():
                assert value == SUPPRESSED or value in original

    def test_local_recoding_keeps_some_instances_intact(self):
        """The defining property vs. global recoding: the same base value
        may stay intact in one row and be suppressed in another."""
        table = Table.from_columns(
            {
                "a": ["x", "x", "x", "x", "y", "z"],
                "b": ["1", "1", "2", "2", "3", "3"],
            }
        )
        problem = PreparedTable(
            table, {"a": SuppressionHierarchy(), "b": SuppressionHierarchy()}
        )
        result = CellSuppressionModel().anonymize(problem, 2)
        recoded_a = result.table.column("a").to_list()
        assert "x" in recoded_a  # some instances intact
        assert SUPPRESSED in recoded_a + result.table.column("b").to_list()

    def test_suppressed_cell_count_reported(self):
        problem = patients_problem()
        result = CellSuppressionModel().anonymize(problem, 2)
        assert result.details["suppressed_cells"] > 0

    def test_no_suppression_when_already_anonymous(self):
        table = Table.from_columns({"a": ["x", "x", "y", "y"]})
        problem = PreparedTable(table, {"a": SuppressionHierarchy()})
        result = CellSuppressionModel().anonymize(problem, 2)
        assert result.details["suppressed_cells"] == 0
        assert result.table.column("a").to_list() == ["x", "x", "y", "y"]


class TestCellGeneralization:
    def test_patients(self):
        problem = patients_problem()
        result = CellGeneralizationModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_uses_hierarchy_ancestors_not_stars(self):
        table = Table.from_columns(
            {"zip": ["53715", "53710", "53703", "53706"]}
        )
        problem = PreparedTable(table, {"zip": RoundingHierarchy(5, height=2)})
        result = CellGeneralizationModel().anonymize(problem, 2)
        values = set(result.table.column("zip").to_list())
        # sorted order pairs 53703/53706 and 53710/53715 → 5370*/5371*
        assert values == {"5370*", "5371*"}

    def test_lifts_to_lowest_common_level(self):
        table = Table.from_columns({"zip": ["53715", "53710", "10001", "10002"]})
        problem = PreparedTable(table, {"zip": RoundingHierarchy(5)})
        result = CellGeneralizationModel().anonymize(problem, 2)
        values = sorted(set(result.table.column("zip").to_list()))
        assert values == ["1000*", "5371*"]

    def test_generalized_cell_count_reported(self):
        problem = patients_problem()
        result = CellGeneralizationModel().anonymize(problem, 2)
        assert result.details["generalized_cells"] > 0

    def test_height_zero_attribute_falls_back_to_suppression(self):
        """A disagreeing cluster on an attribute whose hierarchy top still
        disagrees must suppress (only possible with a degenerate
        hierarchy, simulated here with height-1 suppression — top always
        agrees, so no star appears)."""
        table = Table.from_columns({"a": ["p", "q", "r", "s"]})
        problem = PreparedTable(table, {"a": SuppressionHierarchy()})
        result = CellGeneralizationModel().anonymize(problem, 4)
        assert set(result.table.column("a").to_list()) == {"*"}
