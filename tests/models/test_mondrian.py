"""Tests for the Mondrian multi-dimensional partitioning model."""

from repro.core.anonymity import check_k_anonymity
from repro.core.problem import PreparedTable
from repro.hierarchy import SuppressionHierarchy
from repro.metrics import average_class_size
from repro.models.mondrian import MondrianModel
from repro.relational.table import Table
from tests.conftest import tiny_numeric_problem


class TestMondrian:
    def test_tiny_numeric(self):
        problem = tiny_numeric_problem()
        result = MondrianModel().anonymize(problem, 2)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_partition_count_reported(self):
        problem = tiny_numeric_problem()
        result = MondrianModel().anonymize(problem, 2)
        assert 1 <= result.details["partitions"] <= problem.num_rows // 2

    def test_classes_near_k(self):
        """Median splits keep classes between k and 2k-1 in the ideal case;
        C_AVG must stay well below the full-domain answer's."""
        problem = tiny_numeric_problem()
        result = MondrianModel().anonymize(problem, 2)
        avg = average_class_size(result.table, problem.quasi_identifier, 2)
        assert avg < 2.0

    def test_uniform_distinct_grid_splits_fully(self):
        table = Table.from_columns(
            {"x": [str(i) for i in range(8)], "y": ["c"] * 8}
        )
        problem = PreparedTable(
            table, {"x": SuppressionHierarchy(), "y": SuppressionHierarchy()}
        )
        result = MondrianModel().anonymize(problem, 2)
        # 8 distinct x values, k=2 → 4 partitions of 2
        assert result.details["partitions"] == 4

    def test_identical_rows_single_partition(self):
        table = Table.from_columns({"x": ["a"] * 6})
        problem = PreparedTable(table, {"x": SuppressionHierarchy()})
        result = MondrianModel().anonymize(problem, 3)
        assert result.details["partitions"] == 1
        assert result.table.column("x").to_list() == ["a"] * 6

    def test_interval_labels_cover_partition_ranges(self):
        table = Table.from_columns({"x": ["1", "2", "3", "4"]})
        problem = PreparedTable(table, {"x": SuppressionHierarchy()})
        result = MondrianModel().anonymize(problem, 2)
        assert sorted(set(result.table.column("x").to_list())) == [
            "[1-2]", "[3-4]",
        ]

    def test_relaxed_variant_splits_heavy_ties(self):
        """Strict Mondrian stalls when one value holds a majority; relaxed
        divides the tied rows and keeps partitioning."""
        table = Table.from_columns({"x": ["5"] * 7 + ["9"]})
        problem = PreparedTable(table, {"x": SuppressionHierarchy()})
        strict = MondrianModel().anonymize(problem, 2)
        relaxed = MondrianModel(relaxed=True).anonymize(problem, 2)
        assert strict.details["partitions"] == 1
        assert relaxed.details["partitions"] >= 2

    def test_relaxed_variant_still_k_anonymous(self):
        problem = tiny_numeric_problem()
        result = MondrianModel(relaxed=True).anonymize(problem, 3)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 3)

    def test_relaxed_never_fewer_partitions_than_strict(self):
        problem = tiny_numeric_problem()
        strict = MondrianModel().anonymize(problem, 2)
        relaxed = MondrianModel(relaxed=True).anonymize(problem, 2)
        assert relaxed.details["partitions"] >= strict.details["partitions"]

    def test_multidim_beats_single_dim_on_utility(self):
        """The motivation for reference [12]: multi-dimension partitioning
        yields smaller classes than single-dimension partitioning."""
        from repro.models.partition1d import Partition1DModel

        problem = tiny_numeric_problem()
        qi = problem.quasi_identifier
        multi = MondrianModel().anonymize(problem, 2)
        single = Partition1DModel().anonymize(problem, 2)
        assert average_class_size(multi.table, qi, 2) <= average_class_size(
            single.table, qi, 2
        )
