"""Property-based tests across the Section 5 model implementations."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.anonymity import check_k_anonymity
from repro.core.problem import PreparedTable
from repro.hierarchy import RangeHierarchy, SuppressionHierarchy
from repro.models import (
    CellGeneralizationModel,
    CellSuppressionModel,
    KOptimizeModel,
    MondrianModel,
    Partition1DModel,
    SubtreeModel,
    UnrestrictedMultiDimModel,
)
from repro.relational.groupby import group_by_count
from repro.relational.table import Table


@st.composite
def numeric_problems(draw) -> PreparedTable:
    """Small 2-attribute numeric tables with range/suppression hierarchies."""
    num_rows = draw(st.integers(4, 24))
    xs = draw(
        st.lists(st.integers(0, 15), min_size=num_rows, max_size=num_rows)
    )
    ys = draw(
        st.lists(st.integers(0, 7), min_size=num_rows, max_size=num_rows)
    )
    table = Table.from_columns({"x": xs, "y": ys})
    return PreparedTable(
        table,
        {
            "x": RangeHierarchy([2, 4, 8], suppress_top=True),
            "y": SuppressionHierarchy(),
        },
    )


@settings(max_examples=30, deadline=None)
@given(problem=numeric_problems(), k=st.integers(2, 4))
def test_mondrian_classes_at_least_k(problem, k):
    if k > problem.num_rows:
        return
    result = MondrianModel().anonymize(problem, k)
    counts = group_by_count(result.table, list(problem.quasi_identifier)).counts
    assert counts.min() >= k


@settings(max_examples=30, deadline=None)
@given(problem=numeric_problems(), k=st.integers(2, 4))
def test_mondrian_classes_below_2k_when_splittable(problem, k):
    """Strict Mondrian leaves no class that could still be median-split
    into two >= k halves along a dimension with distinct values...
    weaker check: partition count is maximal possible bound |T|/k."""
    if k > problem.num_rows:
        return
    result = MondrianModel().anonymize(problem, k)
    assert result.details["partitions"] <= problem.num_rows // k


@settings(max_examples=25, deadline=None)
@given(problem=numeric_problems(), k=st.integers(2, 3))
def test_koptimize_never_worse_than_greedy_partition(problem, k):
    """Optimal branch-and-bound cost <= the greedy coarsening's cost
    (both score with the suppression-augmented discernibility)."""
    from repro.models.koptimize import partition_cost
    from repro.metrics import equivalence_class_sizes

    if k > problem.num_rows:
        return
    optimal = KOptimizeModel(max_items=24).anonymize(problem, k)
    greedy = Partition1DModel().anonymize(problem, k)
    greedy_sizes = equivalence_class_sizes(
        greedy.table, problem.quasi_identifier
    )
    greedy_cost = partition_cost(greedy_sizes, k, problem.num_rows)
    assert optimal.details["cost"] <= greedy_cost


@settings(max_examples=30, deadline=None)
@given(problem=numeric_problems(), k=st.integers(2, 4))
def test_local_models_k_anonymous(problem, k):
    if k > problem.num_rows:
        return
    for model in (CellSuppressionModel(), CellGeneralizationModel()):
        result = model.anonymize(problem, k)
        assert check_k_anonymity(result.table, problem.quasi_identifier, k)


@settings(max_examples=25, deadline=None)
@given(problem=numeric_problems(), k=st.integers(2, 4))
def test_subtree_cuts_cover_domains(problem, k):
    if k > problem.num_rows:
        return
    result = SubtreeModel().anonymize(problem, k)
    for name in problem.quasi_identifier:
        recoded = result.table.column(name)
        assert len(recoded) == problem.num_rows
        # every original value maps somewhere (no NaNs/holes)
        assert all(value is not None for value in recoded.values)


@settings(max_examples=25, deadline=None)
@given(problem=numeric_problems(), k=st.integers(2, 4))
def test_multidim_only_coarsens(problem, k):
    """Every output class is a union of input equivalence classes."""
    if k > problem.num_rows:
        return
    result = UnrestrictedMultiDimModel().anonymize(problem, k)
    original = problem.table.to_rows()
    recoded = result.table.to_rows()
    mapping: dict = {}
    for source, target in zip(original, recoded):
        assert mapping.setdefault(source, target) == target, (
            "one base vector mapped to two different targets"
        )
