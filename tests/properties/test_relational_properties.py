"""Property-based tests for the relational substrate."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.relational.column import Column
from repro.relational.groupby import group_by_count
from repro.relational.join import hash_join
from repro.relational.table import Table

values = st.one_of(
    st.integers(-50, 50), st.text(alphabet="abcxyz", max_size=3)
)


@settings(max_examples=80, deadline=None)
@given(raw=st.lists(values, max_size=60))
def test_column_round_trip(raw):
    assert Column.from_values(raw).to_list() == raw


@settings(max_examples=80, deadline=None)
@given(raw=st.lists(values, max_size=60))
def test_column_cardinality_is_distinct_count(raw):
    assert Column.from_values(raw).cardinality == len(set(raw))


@settings(max_examples=50, deadline=None)
@given(
    raw=st.lists(values, min_size=1, max_size=40),
    data=st.data(),
)
def test_take_then_tolist_matches_python(raw, data):
    positions = data.draw(
        st.lists(st.integers(0, len(raw) - 1), max_size=30)
    )
    column = Column.from_values(raw)
    taken = column.take(np.asarray(positions, dtype=np.int64))
    assert taken.to_list() == [raw[p] for p in positions]


@settings(max_examples=50, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=60
    )
)
def test_group_by_count_matches_collections_counter(rows):
    import collections

    table = Table.from_rows(["a", "b"], rows)
    if not rows:
        assert group_by_count(table, ["a", "b"]).num_groups == 0
        return
    result = group_by_count(table, ["a", "b"]).as_dict()
    assert result == dict(collections.Counter(rows))


@settings(max_examples=50, deadline=None)
@given(
    left_rows=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 9)), max_size=25
    ),
    right_rows=st.lists(
        st.tuples(st.integers(0, 4), st.text(alphabet="pq", max_size=2)),
        max_size=25,
    ),
)
def test_hash_join_matches_nested_loops(left_rows, right_rows):
    left = Table.from_rows(["k", "a"], left_rows)
    right = Table.from_rows(["k", "b"], right_rows)
    joined = sorted(
        map(repr, hash_join(left, right, on=["k"]).iter_rows())
    )
    expected = sorted(
        repr((lk, la, rb))
        for lk, la in left_rows
        for rk, rb in right_rows
        if lk == rk
    )
    assert joined == expected


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(st.tuples(values, values), max_size=40))
def test_concat_preserves_multiset(rows):
    table = Table.from_rows(["a", "b"], rows)
    doubled = table.concat(table)
    assert doubled.num_rows == 2 * len(rows)
    assert sorted(map(repr, doubled.iter_rows())) == sorted(
        map(repr, rows + rows)
    )


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(st.tuples(values, values), max_size=40))
def test_distinct_is_set_semantics(rows):
    table = Table.from_rows(["a", "b"], rows)
    assert sorted(map(repr, table.distinct().iter_rows())) == sorted(
        map(repr, set(rows))
    )


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(st.tuples(st.integers(0, 9), values), max_size=40))
def test_sort_by_matches_python_sorted(rows):
    table = Table.from_rows(["k", "v"], rows)
    result = [row[0] for row in table.sort_by(["k"]).iter_rows()]
    assert result == sorted(row[0] for row in rows)


@settings(max_examples=50, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 4), st.integers(-20, 20)),
        min_size=1,
        max_size=40,
    )
)
def test_aggregate_matches_python(rows):
    """SUM/MIN/MAX/MEAN/COUNT agree with a hand-rolled group-by."""
    from collections import defaultdict

    from repro.relational.aggregate import aggregate

    table = Table.from_rows(["g", "v"], rows)
    grouped: dict[int, list[int]] = defaultdict(list)
    for g, v in rows:
        grouped[g].append(v)

    result = aggregate(
        table, ["g"], {"v": "sum"}
    )
    assert dict(result.iter_rows()) == {
        g: sum(vs) for g, vs in grouped.items()
    }
    assert dict(aggregate(table, ["g"], {"v": "min"}).iter_rows()) == {
        g: min(vs) for g, vs in grouped.items()
    }
    assert dict(aggregate(table, ["g"], {"v": "max"}).iter_rows()) == {
        g: max(vs) for g, vs in grouped.items()
    }
    assert dict(aggregate(table, ["g"], {"v": "count"}).iter_rows()) == {
        g: len(vs) for g, vs in grouped.items()
    }
    means = dict(aggregate(table, ["g"], {"v": "mean"}).iter_rows())
    for g, vs in grouped.items():
        assert abs(means[g] - sum(vs) / len(vs)) < 1e-9
