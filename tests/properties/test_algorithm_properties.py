"""Property-based tests over whole algorithm runs."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.anonymity import check_k_anonymity, compute_frequency_set
from repro.core.bottomup import bottom_up_search
from repro.core.generalize import apply_generalization
from repro.core.incognito import basic_incognito
from repro.core.binary_search import samarati_binary_search
from tests.conftest import make_random_problem


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
def test_incognito_result_set_is_upward_closed(seed, k):
    """Every generalization of a solution is a solution (soundness shape)."""
    problem = make_random_problem(seed)
    result = basic_incognito(problem, k)
    solutions = set(result.anonymous_nodes)
    lattice = problem.lattice()
    for node in solutions:
        for upper in lattice.generalizations_of(node):
            assert upper in solutions


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
def test_incognito_agrees_with_bottom_up(seed, k):
    problem = make_random_problem(seed)
    assert (
        basic_incognito(problem, k).anonymous_nodes
        == bottom_up_search(problem, k).anonymous_nodes
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
def test_every_solution_yields_anonymous_view(seed, k):
    problem = make_random_problem(seed)
    result = basic_incognito(problem, k)
    for node in result.anonymous_nodes[:5]:
        view = apply_generalization(problem, node)
        assert check_k_anonymity(view.table, problem.quasi_identifier, k)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
def test_binary_search_member_of_complete_set(seed, k):
    problem = make_random_problem(seed)
    complete = set(basic_incognito(problem, k).anonymous_nodes)
    single = samarati_binary_search(problem, k)
    if complete:
        assert single.anonymous_nodes[0] in complete
    else:
        assert not single.found


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_solution_count_monotone_in_k(seed):
    """Raising k can only shrink the solution set."""
    problem = make_random_problem(seed)
    previous = None
    for k in (1, 2, 4, 8):
        solutions = set(basic_incognito(problem, k).anonymous_nodes)
        if previous is not None:
            assert solutions <= previous
        previous = solutions


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(2, 5), budget=st.integers(0, 10))
def test_suppression_budget_monotone(seed, k, budget):
    """A larger suppression budget can only grow the solution set."""
    problem = make_random_problem(seed)
    strict = set(basic_incognito(problem, k).anonymous_nodes)
    relaxed = set(
        basic_incognito(problem, k, max_suppression=budget).anonymous_nodes
    )
    assert strict <= relaxed


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
def test_suppressed_view_is_anonymous_without_budget(seed, k):
    """After dropping outliers, the view is plainly k-anonymous."""
    problem = make_random_problem(seed)
    budget = max(1, problem.num_rows // 5)
    result = basic_incognito(problem, k, max_suppression=budget)
    for node in result.anonymous_nodes[:3]:
        view = apply_generalization(problem, node, k=k, max_suppression=budget)
        assert check_k_anonymity(view.table, problem.quasi_identifier, k)
        fs = compute_frequency_set(problem, node)
        assert view.suppressed_rows == fs.rows_below(k)
