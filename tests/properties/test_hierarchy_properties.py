"""Property-based tests for hierarchy invariants."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.hierarchy import (
    DateHierarchy,
    RangeHierarchy,
    RoundingHierarchy,
    SuppressionHierarchy,
    TaxonomyHierarchy,
)


@st.composite
def hierarchy_and_domain(draw):
    """A random hierarchy together with a valid base domain sample."""
    shape = draw(st.sampled_from(["suppress", "round", "range", "date", "taxonomy"]))
    if shape == "suppress":
        hierarchy = SuppressionHierarchy(draw(st.sampled_from(["*", "ANY"])))
        domain = draw(
            st.lists(st.text("abcde", min_size=1, max_size=3),
                     min_size=1, max_size=6, unique=True)
        )
    elif shape == "round":
        digits = draw(st.integers(2, 4))
        pool = draw(
            st.lists(st.integers(0, 10 ** digits - 1),
                     min_size=1, max_size=8, unique=True)
        )
        hierarchy = RoundingHierarchy(digits)
        domain = [str(v).rjust(digits, "0") for v in pool]
    elif shape == "range":
        widths = draw(st.sampled_from([[2], [5, 10], [2, 4, 8], [3, 6]]))
        hierarchy = RangeHierarchy(widths, suppress_top=draw(st.booleans()))
        domain = draw(
            st.lists(st.integers(-40, 120), min_size=1, max_size=8, unique=True)
        )
    elif shape == "date":
        hierarchy = DateHierarchy()
        days = draw(
            st.lists(st.integers(0, 700), min_size=1, max_size=8, unique=True)
        )
        import datetime

        start = datetime.date(2000, 1, 1)
        domain = [
            (start + datetime.timedelta(days=d)).isoformat() for d in days
        ]
    else:
        num_leaves = draw(st.integers(2, 8))
        leaves = [f"leaf{i}" for i in range(num_leaves)]
        split = draw(st.integers(1, num_leaves - 1))
        hierarchy = TaxonomyHierarchy.grouped(
            {"left": leaves[:split], "right": leaves[split:]}
        )
        size = draw(st.integers(1, num_leaves))
        domain = leaves[:size]
    return hierarchy, domain


@settings(max_examples=120, deadline=None)
@given(data=hierarchy_and_domain())
def test_level_zero_is_identity(data):
    hierarchy, domain = data
    for value in domain:
        assert hierarchy.generalize(value, 0) == value


@settings(max_examples=120, deadline=None)
@given(data=hierarchy_and_domain())
def test_monotone_coarsening(data):
    """If two values coincide at level l, they coincide at every l' > l."""
    hierarchy, domain = data
    for level in range(hierarchy.height):
        groups: dict = {}
        for value in domain:
            groups.setdefault(hierarchy.generalize(value, level), []).append(value)
        for members in groups.values():
            above = {hierarchy.generalize(v, level + 1) for v in members}
            assert len(above) == 1


@settings(max_examples=120, deadline=None)
@given(data=hierarchy_and_domain())
def test_compile_is_consistent_with_generalize(data):
    hierarchy, domain = data
    compiled = hierarchy.compile(domain)
    for base_code, value in enumerate(domain):
        for level in range(hierarchy.num_levels):
            via_lookup = compiled.level_values(level)[
                compiled.level_lookup(level)[base_code]
            ]
            assert via_lookup == hierarchy.generalize(value, level)


@settings(max_examples=120, deadline=None)
@given(data=hierarchy_and_domain())
def test_mapping_between_composes(data):
    hierarchy, domain = data
    compiled = hierarchy.compile(domain)
    height = compiled.height
    for low in range(height + 1):
        for high in range(low, height + 1):
            direct = compiled.mapping_between(low, high)
            # composing through any midpoint must agree
            mid = (low + high) // 2
            composed = compiled.mapping_between(mid, high)[
                compiled.mapping_between(low, mid)
            ]
            assert direct.tolist() == composed.tolist()


@settings(max_examples=120, deadline=None)
@given(data=hierarchy_and_domain())
def test_cardinalities_non_increasing(data):
    hierarchy, domain = data
    compiled = hierarchy.compile(domain)
    cards = [compiled.cardinality(level) for level in range(compiled.num_levels)]
    assert cards == sorted(cards, reverse=True)
    assert cards[0] == len(domain)
