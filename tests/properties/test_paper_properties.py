"""Property-based tests for the paper's three theorems (Section 3).

Hypothesis generates random tables, hierarchies, and lattice nodes, then
checks:

* **Generalization property** — if T is k-anonymous wrt P, it is
  k-anonymous wrt any generalization Q of P.
* **Rollup property** — the frequency set wrt Q equals the rollup of the
  frequency set wrt P for any P ≤ Q.
* **Subset property** — if T is k-anonymous wrt Q, it is k-anonymous wrt
  every subset of Q.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.anonymity import compute_frequency_set
from repro.core.problem import PreparedTable
from repro.hierarchy import RoundingHierarchy, SuppressionHierarchy, TaxonomyHierarchy
from repro.lattice.node import LatticeNode
from repro.relational.table import Table


@st.composite
def problems(draw) -> PreparedTable:
    """A random small PreparedTable with 2-3 mixed-shape hierarchies."""
    num_attributes = draw(st.integers(2, 3))
    num_rows = draw(st.integers(1, 30))
    hierarchies = {}
    columns = {}
    for position in range(num_attributes):
        name = f"q{position}"
        shape = draw(st.sampled_from(["suppress", "round", "taxonomy"]))
        if shape == "suppress":
            domain = [f"s{i}" for i in range(draw(st.integers(1, 4)))]
            hierarchies[name] = SuppressionHierarchy()
        elif shape == "round":
            digits = draw(st.integers(2, 3))
            pool = draw(
                st.lists(
                    st.integers(0, 10 ** digits - 1),
                    min_size=1, max_size=5, unique=True,
                )
            )
            domain = [str(v).rjust(digits, "0") for v in pool]
            hierarchies[name] = RoundingHierarchy(digits)
        else:
            leaves = [f"t{position}_{i}" for i in range(draw(st.integers(2, 5)))]
            split = draw(st.integers(1, len(leaves) - 1))
            hierarchies[name] = TaxonomyHierarchy.grouped(
                {"g0": leaves[:split], "g1": leaves[split:]}
            )
            domain = leaves
        columns[name] = [
            domain[draw(st.integers(0, len(domain) - 1))] for _ in range(num_rows)
        ]
    return PreparedTable(Table.from_columns(columns), hierarchies)


@st.composite
def problem_and_node_pair(draw):
    """A problem plus two comparable full-QI nodes (lower ≤ upper)."""
    problem = draw(problems())
    qi = problem.quasi_identifier
    lower_levels = []
    upper_levels = []
    for name in qi:
        height = problem.height(name)
        low = draw(st.integers(0, height))
        high = draw(st.integers(low, height))
        lower_levels.append(low)
        upper_levels.append(high)
    return (
        problem,
        LatticeNode(qi, tuple(lower_levels)),
        LatticeNode(qi, tuple(upper_levels)),
    )


@settings(max_examples=60, deadline=None)
@given(data=problem_and_node_pair(), k=st.integers(1, 5))
def test_generalization_property(data, k):
    problem, lower, upper = data
    lower_fs = compute_frequency_set(problem, lower)
    upper_fs = compute_frequency_set(problem, upper)
    if lower_fs.is_k_anonymous(k):
        assert upper_fs.is_k_anonymous(k)


@settings(max_examples=60, deadline=None)
@given(data=problem_and_node_pair())
def test_rollup_property(data):
    problem, lower, upper = data
    rolled = compute_frequency_set(problem, lower).rollup(upper)
    direct = compute_frequency_set(problem, upper)
    assert rolled.as_dict() == direct.as_dict()


@settings(max_examples=60, deadline=None)
@given(problem=problems(), k=st.integers(1, 5), data=st.data())
def test_subset_property(problem, k, data):
    qi = problem.quasi_identifier
    node = problem.bottom_node()
    full_fs = compute_frequency_set(problem, node)
    if not full_fs.is_k_anonymous(k):
        return
    subset_size = data.draw(st.integers(1, len(qi) - 1))
    subset = data.draw(
        st.lists(
            st.sampled_from(list(qi)),
            min_size=subset_size, max_size=subset_size, unique=True,
        )
    )
    subset_fs = compute_frequency_set(problem, problem.bottom_node(subset))
    assert subset_fs.is_k_anonymous(k)


@settings(max_examples=60, deadline=None)
@given(data=problem_and_node_pair())
def test_counts_monotone_under_generalization(data):
    """Generalizing never splits groups: group count shrinks, min grows."""
    problem, lower, upper = data
    lower_fs = compute_frequency_set(problem, lower)
    upper_fs = compute_frequency_set(problem, upper)
    assert upper_fs.num_groups <= lower_fs.num_groups
    assert upper_fs.min_count() >= lower_fs.min_count()
    assert upper_fs.total() == lower_fs.total()


@settings(max_examples=60, deadline=None)
@given(data=problem_and_node_pair())
def test_project_matches_direct_groupby(data):
    """The data-cube direction: projection equals a fresh group-by."""
    problem, lower, _ = data
    qi = problem.quasi_identifier
    full = compute_frequency_set(problem, lower)
    subset = qi[:-1]
    projected = full.project(subset)
    direct = compute_frequency_set(problem, lower.subset(subset))
    assert projected.as_dict() == direct.as_dict()
