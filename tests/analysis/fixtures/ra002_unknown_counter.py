"""Fixture: violates RA002 only — counter name absent from the obs registry."""


def record(counters):
    counters.incr("cache.hitz")
