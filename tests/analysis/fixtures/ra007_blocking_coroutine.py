"""Fixture: violates RA007 only — a coroutine reaches ``time.sleep``
through a synchronous helper (``time.sleep`` itself is RA001-legal)."""

import time


def settle():
    time.sleep(0.5)


async def handler():
    settle()
    return "ok"


async def quiet_handler():
    settle()  # ra: RA007 -- fixture: the suppressed twin of handler()
    return "ok"
