"""Fixture: violates RA006 only — lock held across a subprocess join."""

import threading


class Reaper:
    def __init__(self, process):
        self._lock = threading.Lock()
        self.process = process

    def reap(self):
        with self._lock:
            self.process.join(timeout=5.0)

    def reap_quietly(self):
        with self._lock:
            self.process.join(timeout=0.1)  # ra: RA006 -- fixture: the suppressed twin of reap()
