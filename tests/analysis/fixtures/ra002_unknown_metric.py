"""Fixture: violates RA002 only — metric name absent from the obs registry."""


def record(metrics):
    metrics.observe("latency.scan_secondz", 0.25)
