"""Fixture: violates RA004 only — direct open-for-write of an export file."""

import json


def save_bench(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)
