"""Fixture: violates RA005 only — argparse flag absent from README/DESIGN."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--frobnicate-level", type=int, default=0)
    return parser
