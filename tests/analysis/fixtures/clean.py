"""Fixture: violates nothing — the sanctioned spelling of each pattern."""

import random


def seeded_draw(seed):
    rng = random.Random(f"fixture:{seed}")
    return rng.random()


def ordered(items):
    return sorted(set(items))


def record(counters):
    counters.incr("cache.hits")
