"""Fixture: violates RA009 only — the sidecar is renamed into place
without an fsync (the RA004 routing concern is suppressed; the *order*
bug is what this fixture isolates)."""

import json
import os


def publish(tmp, path, document):
    tmp.write_text(json.dumps(document))  # ra: RA004 -- fixture isolates the fsync-order bug, not write routing
    os.replace(tmp, path)


def publish_quietly(tmp, path, document):
    tmp.write_text(json.dumps(document))  # ra: RA004 -- fixture isolates the fsync-order bug, not write routing
    os.replace(tmp, path)  # ra: RA009 -- fixture: the suppressed twin of publish()
