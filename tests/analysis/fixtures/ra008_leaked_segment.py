"""Fixture: violates RA008 only — an attached segment with no cleanup
covering the exception window."""

from multiprocessing import shared_memory


def peek(name):
    segment = shared_memory.SharedMemory(name=name)
    value = bytes(segment.buf[:4])
    segment.close()
    return value


def peek_quietly(name):
    segment = shared_memory.SharedMemory(name=name)  # ra: RA008 -- fixture: the suppressed twin of peek()
    return bytes(segment.buf[:4])
