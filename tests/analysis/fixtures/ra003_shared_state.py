"""Fixture: violates RA003 only — dispatched function reads a module mutable."""

from concurrent.futures import ThreadPoolExecutor

_RESULTS = []


def work(value):
    _RESULTS.append(value)
    return value


def run():
    with ThreadPoolExecutor(max_workers=1) as pool:
        future = pool.submit(work, 1)
    return future.result()
