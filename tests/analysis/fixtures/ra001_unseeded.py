"""Fixture: violates RA001 only — wall-clock read in worker-reachable code."""

import time


def chunk_timestamp():
    return time.time()
