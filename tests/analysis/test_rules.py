"""Each fixture under ``fixtures/`` trips exactly its intended rule."""

from pathlib import Path

import pytest

from repro.analysis import active, all_rules, analyze_paths, rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"

CASES = [
    ("ra001_unseeded.py", {"RA001"}),
    ("ra002_unknown_counter.py", {"RA002"}),
    ("ra002_unknown_metric.py", {"RA002"}),
    ("ra003_shared_state.py", {"RA003"}),
    ("ra004_plain_write.py", {"RA004"}),
    ("ra005_undocumented_flag.py", {"RA005"}),
    ("ra006_lock_across_join.py", {"RA006"}),
    ("ra007_blocking_coroutine.py", {"RA007"}),
    ("ra008_leaked_segment.py", {"RA008"}),
    ("ra009_rename_before_fsync.py", {"RA009"}),
    ("clean.py", set()),
]


@pytest.mark.parametrize("name,expected", CASES, ids=[c[0] for c in CASES])
def test_fixture_trips_exactly_its_rule(name, expected):
    findings = active(analyze_paths([FIXTURES / name]))
    assert {finding.rule for finding in findings} == expected
    if expected:
        # One deliberate violation per fixture, pinpointed to a line.
        assert len(findings) == 1
        assert findings[0].line > 0
        assert findings[0].path.endswith(name)


def test_fixture_directory_as_a_whole():
    findings = active(analyze_paths([FIXTURES]))
    assert {finding.rule for finding in findings} == {
        "RA001",
        "RA002",
        "RA003",
        "RA004",
        "RA005",
        "RA006",
        "RA007",
        "RA008",
        "RA009",
    }


NEW_RULE_FIXTURES = [
    ("ra006_lock_across_join.py", "RA006"),
    ("ra007_blocking_coroutine.py", "RA007"),
    ("ra008_leaked_segment.py", "RA008"),
    ("ra009_rename_before_fsync.py", "RA009"),
]


@pytest.mark.parametrize(
    "name,rule", NEW_RULE_FIXTURES, ids=[c[1] for c in NEW_RULE_FIXTURES]
)
def test_new_rule_fixture_has_a_suppressed_twin(name, rule):
    """Each concurrency/lifecycle fixture carries one firing case and
    one justified-suppression case of its own rule."""
    findings = analyze_paths([FIXTURES / name])
    firing = [f for f in findings if f.rule == rule and not f.suppressed]
    suppressed = [f for f in findings if f.rule == rule and f.suppressed]
    assert len(firing) == 1
    assert len(suppressed) == 1
    assert suppressed[0].justification


def test_rule_ids_are_unique_and_described():
    rules = all_rules()
    ids = [rule.rule_id for rule in rules]
    assert len(ids) == len(set(ids))
    for rule in rules:
        assert rule.title and rule.rationale


def test_rules_by_id_selects_and_rejects():
    selected = rules_by_id(["RA004", "RA001"])
    assert [rule.rule_id for rule in selected] == ["RA004", "RA001"]
    with pytest.raises(ValueError, match="RA999"):
        rules_by_id(["RA999"])


def test_syntax_error_surfaces_as_ra000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    findings = active(analyze_paths([bad]))
    assert [finding.rule for finding in findings] == ["RA000"]
