"""Suppression-comment parsing and enforcement semantics."""

import textwrap

from repro.analysis import active, all_rules, analyze_paths
from repro.analysis.suppress import parse_suppressions


def test_trailing_comment_applies_to_its_own_line():
    source = 'x = 1\ny = open(p, "w")  # ra: RA004 -- test primitive\n'
    by_line = parse_suppressions(source)
    assert list(by_line) == [2]
    (sup,) = by_line[2]
    assert sup.rule_id == "RA004"
    assert sup.justification == "test primitive"


def test_own_line_comment_skips_to_next_code_line():
    source = textwrap.dedent(
        """\
        # ra: RA003 -- worker-resident state, installed once by the
        # pool initializer and read-only thereafter.
        global _PROBLEM
        """
    )
    by_line = parse_suppressions(source)
    assert list(by_line) == [3]
    assert by_line[3][0].rule_id == "RA003"


def test_multiple_suppressions_in_one_comment():
    source = 'risky()  # ra: RA001 -- why one; ra: RA003 -- why two\n'
    (sups,) = parse_suppressions(source).values()
    assert {(s.rule_id, s.justification) for s in sups} == {
        ("RA001", "why one"),
        ("RA003", "why two"),
    }


def test_directive_inside_string_literal_is_ignored():
    source = 'text = "# ra: RA001 -- not a comment"\n'
    assert parse_suppressions(source) == {}


def test_justified_suppression_suppresses(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # ra: RA001 -- fixture, sanctioned\n"
    )
    findings = analyze_paths([target], all_rules())
    assert active(findings) == []
    (finding,) = [f for f in findings if f.suppressed]
    assert finding.rule == "RA001"
    assert finding.justification == "fixture, sanctioned"


def test_unjustified_suppression_does_not_suppress(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # ra: RA001\n"
    )
    (finding,) = active(analyze_paths([target], all_rules()))
    assert finding.rule == "RA001"
    assert "missing justification" in finding.message


def test_suppression_is_rule_specific(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # ra: RA004 -- wrong rule\n"
    )
    found = active(analyze_paths([target], all_rules()))
    # The RA001 violation stays active (the mute names the wrong rule),
    # and the RA004 suppression itself is flagged stale: RA004 ran and
    # found nothing on that line.
    assert [f.rule for f in found] == ["RA001", "RA004"]
    assert "stale suppression" in found[1].message


def test_multi_rule_suppressions_enforced_on_one_line(tmp_path):
    """One trailing comment muting two different rules, both of which
    actually fire on that line (RA004 plain write + RA007 blocking file
    IO inside a coroutine)."""
    target = tmp_path / "mod.py"
    target.write_text(
        "async def publish(path, text):\n"
        "    path.write_text(text)"
        "  # ra: RA004 -- test: sanctioned; ra: RA007 -- test: sanctioned\n"
    )
    findings = analyze_paths([target], all_rules())
    assert active(findings) == []
    assert {f.rule for f in findings if f.suppressed} == {"RA004", "RA007"}
    assert all(f.justification for f in findings if f.suppressed)


def test_stale_suppression_surfaces_as_active_finding(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "def nothing_wrong_here():\n"
        "    return 1  # ra: RA004 -- excuse for a long-gone write\n"
    )
    (finding,) = active(analyze_paths([target], all_rules()))
    assert finding.rule == "RA004"
    assert "stale suppression" in finding.message


def test_stale_detection_needs_the_rule_to_have_run(tmp_path):
    """A suppression for a rule outside the run's rule set is left
    alone — its staleness is unknowable."""
    from repro.analysis import rules_by_id

    target = tmp_path / "mod.py"
    target.write_text(
        "def nothing_wrong_here():\n"
        "    return 1  # ra: RA004 -- excuse for a long-gone write\n"
    )
    assert active(analyze_paths([target], rules_by_id(["RA001"]))) == []
