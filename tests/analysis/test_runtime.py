"""The runtime lock-order recorder and its static cross-check."""

from __future__ import annotations

import threading

from repro.analysis.core import Project
from repro.analysis.rules.lock_order import (
    LockAnalysis,
    LockEdge,
    LockInfo,
    analyze_lock_order,
)
from repro.analysis.runtime import (
    LockOrderRecorder,
    combined_cycle,
    observed_static_pairs,
)


def _analysis_for(recorder, quals_to_locks, edges=()):
    """A LockAnalysis whose lock table keys on the given wrappers'
    creation sites (what the static pass would have discovered)."""
    locks = {}
    for qual, lock in quals_to_locks.items():
        filename, line = lock._site
        locks[qual] = LockInfo(
            qual=qual,
            attr=qual.rsplit(".", 1)[-1],
            kind=lock._kind,
            path=filename,
            line=line,
        )
    analysis = LockAnalysis(locks=locks)
    for held, acquired in edges:
        analysis.edges.append(LockEdge(held, acquired, "static", 0))
    return analysis


def test_install_wraps_and_uninstall_restores():
    original_lock, original_rlock = threading.Lock, threading.RLock
    recorder = LockOrderRecorder()
    recorder.install()
    try:
        assert threading.Lock is not original_lock
        lock = threading.Lock()
        with lock:
            assert lock.locked()
        assert not lock.locked()
    finally:
        recorder.uninstall()
    assert threading.Lock is original_lock
    assert threading.RLock is original_rlock


def test_nested_acquisition_records_ordered_pair():
    with LockOrderRecorder() as recorder:
        outer = threading.Lock()
        inner = threading.Lock()
        with outer:
            with inner:
                pass
    assert (outer._site, inner._site) in recorder.observed
    assert (inner._site, outer._site) not in recorder.observed


def test_rlock_reentry_is_not_a_self_pair():
    with LockOrderRecorder() as recorder:
        lock = threading.RLock()
        with lock:
            with lock:
                pass
    assert (lock._site, lock._site) not in recorder.observed


def test_pairs_outside_static_table_are_ignored():
    with LockOrderRecorder() as recorder:
        known = threading.Lock()
        stray = threading.Lock()
        with known:
            with stray:
                pass
    analysis = _analysis_for(recorder, {"m.C.known": known})
    assert observed_static_pairs(recorder, analysis) == set()
    assert combined_cycle(recorder, analysis) is None


def test_observed_order_consistent_with_static_edge():
    with LockOrderRecorder() as recorder:
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
    analysis = _analysis_for(
        recorder,
        {"m.C.a": a, "m.C.b": b},
        edges=[("m.C.a", "m.C.b")],  # static agrees: a before b
    )
    assert observed_static_pairs(recorder, analysis) == {("m.C.a", "m.C.b")}
    assert combined_cycle(recorder, analysis) is None


def test_inverted_static_edge_makes_a_combined_cycle():
    with LockOrderRecorder() as recorder:
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
    analysis = _analysis_for(
        recorder,
        {"m.C.a": a, "m.C.b": b},
        edges=[("m.C.b", "m.C.a")],  # static says b before a: cycle
    )
    cycle = combined_cycle(recorder, analysis)
    assert cycle is not None
    assert set(cycle) == {"m.C.a", "m.C.b"}


def test_plain_lock_self_pair_is_a_cycle():
    recorder = LockOrderRecorder()
    with recorder:
        lock = threading.Lock()
        with lock:
            pass
    # A genuine re-acquisition would deadlock the test; inject the
    # observation the wrapper would have made.
    recorder.observed.add((lock._site, lock._site))
    analysis = _analysis_for(recorder, {"m.C.lock": lock})
    assert combined_cycle(recorder, analysis) == ["m.C.lock", "m.C.lock"]


def test_wrapped_locks_interoperate_with_condition_and_event():
    """Condition/Event built while installed must behave normally."""
    with LockOrderRecorder():
        event = threading.Event()
        results = []

        def waiter():
            results.append(event.wait(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        event.set()
        thread.join(timeout=5.0)
    assert results == [True]


def test_manager_lock_site_matches_static_table(tmp_path):
    """The bridge between the halves: constructing a real JobManager
    under the recorder yields a lock whose runtime creation site is
    exactly the (path, line) RA006's static table discovered — the
    translation `observed_static_pairs` depends on."""
    import os

    analysis = analyze_lock_order(Project.load(["src"]))
    static_sites = {
        (os.path.abspath(info.path), info.line): qual
        for qual, info in analysis.locks.items()
    }
    with LockOrderRecorder():
        from repro.service.manager import JobManager

        manager = JobManager(tmp_path)
        try:
            site = manager._lock._site
        finally:
            manager.drain()
    assert static_sites.get(site, "").endswith("JobManager._lock")
