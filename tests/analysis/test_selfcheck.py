"""The merged tree is lint-clean, and the gate actually bites.

Three properties:

* ``src/repro`` has zero *active* findings — the CI ``--strict`` gate on
  the real tree, run in-process;
* the obs registry and ``SearchStats`` agree about the counter namespace;
* mutating one counter literal (the CI canary: ``cache.hits`` →
  ``cache.hitz`` in ``fscache.py``) makes RA002 fire — the gate cannot
  silently pass a renamed counter.
"""

import io
import json
from pathlib import Path

from repro.analysis import active, all_rules, analyze_paths
from repro.analysis.__main__ import main
from repro.analysis.reporting import render_json
from repro.core.stats import _COUNTER_KEYS
from repro.obs.registry import default_registry

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def test_src_tree_has_no_active_findings():
    findings = analyze_paths([SRC])
    assert active(findings) == [], "\n".join(
        finding.render() for finding in active(findings)
    )


def test_sanctioned_suppressions_are_present_and_justified():
    findings = analyze_paths([SRC])
    suppressed = [finding for finding in findings if finding.suppressed]
    # The sanctioned sites: the worker-resident problem (write + read),
    # the atomic-write primitive's own temp-file open, and the tracer's
    # wall-clock anchor (the one deliberate time.time() that lets spans
    # from different processes stitch onto a shared clock).
    assert {(f.rule, Path(f.path).name) for f in suppressed} == {
        ("RA003", "worker.py"),
        ("RA004", "atomicio.py"),
        ("RA001", "trace.py"),
    }
    assert all(finding.justification for finding in suppressed)


def test_registry_and_stats_agree():
    registry = default_registry()
    for dotted in _COUNTER_KEYS.values():
        assert registry.allows_counter(dotted), dotted
    for span in ("scan", "rollup", "project", "groupby", "parallel.batch"):
        assert registry.allows_span(span), span
    for metric in (
        "latency.scan_seconds",
        "worker.rss_bytes",
        "dist.frequency_set_rows",
    ):
        assert registry.allows_metric(metric), metric
    assert not registry.allows_metric("latency.nope_seconds")
    document = registry.as_document()
    assert set(document) == {
        "counters",
        "counter_prefixes",
        "metrics",
        "spans",
    }
    assert document["counters"] == sorted(document["counters"])
    assert document["metrics"] == sorted(document["metrics"])


def test_renamed_counter_literal_fails_ra002(tmp_path):
    """The CI canary, in miniature: rename one literal, RA002 must fire."""
    source = (SRC / "core" / "fscache.py").read_text()
    assert 'incr("cache.hits")' in source
    mutated = tmp_path / "fscache.py"
    mutated.write_text(source.replace('"cache.hits"', '"cache.hitz"'))
    findings = active(analyze_paths([mutated]))
    assert any(
        finding.rule == "RA002" and "cache.hitz" in finding.message
        for finding in findings
    )


def test_cli_strict_exit_codes(tmp_path, capsys):
    clean = Path(__file__).parent / "fixtures" / "clean.py"
    dirty = Path(__file__).parent / "fixtures" / "ra004_plain_write.py"
    assert main([str(clean), "--strict"]) == 0
    assert main([str(dirty)]) == 0  # advisory mode never gates
    assert main([str(dirty), "--strict"]) == 1
    assert main(["--list-rules"]) == 0
    capsys.readouterr()
    assert main([str(dirty), "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["active"] == 1
    assert document["findings"][0]["rule"] == "RA004"


def test_json_reporter_round_trips():
    findings = analyze_paths(
        [Path(__file__).parent / "fixtures" / "ra002_unknown_counter.py"]
    )
    buffer = io.StringIO()
    render_json(findings, buffer)
    document = json.loads(buffer.getvalue())
    assert document["active"] == 1
    assert document["suppressed"] == 0
    assert document["findings"][0]["rule"] == "RA002"
