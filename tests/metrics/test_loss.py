"""Tests for information-loss metrics."""

import pytest

from repro.core.generalize import apply_generalization
from repro.datasets.patients import patients_problem
from repro.lattice.node import LatticeNode
from repro.metrics.loss import (
    average_class_size,
    discernibility,
    equivalence_class_sizes,
    generalization_height,
    loss_metric,
    precision,
)
from repro.relational.table import Table

QI = ("Birthdate", "Sex", "Zipcode")


def node(b, s, z):
    return LatticeNode(QI, (b, s, z))


class TestHeight:
    def test_matches_node_height(self):
        assert generalization_height(node(1, 1, 2)) == 4


class TestEquivalenceClassSizes:
    def test_patients_zero_generalization(self):
        problem = patients_problem()
        sizes = equivalence_class_sizes(problem.table, QI)
        assert sorted(sizes.tolist()) == [1] * 6

    def test_empty_table(self):
        table = Table.from_rows(["a"], [])
        assert equivalence_class_sizes(table, ["a"]).size == 0


class TestDiscernibility:
    def test_unique_rows_cost_n(self):
        problem = patients_problem()
        assert discernibility(problem.table, QI) == 6  # six classes of 1

    def test_single_class_cost_n_squared(self):
        problem = patients_problem()
        view = apply_generalization(problem, node(1, 1, 2))
        assert discernibility(view.table, QI) == 36

    def test_suppression_penalty(self):
        problem = patients_problem()
        view = apply_generalization(problem, node(0, 0, 2), k=2, max_suppression=2)
        # 4 remaining rows in classes of 2 → 2·4; 2 suppressed × 6 total
        assert discernibility(view.table, QI, total_rows=6) == 8 + 12

    def test_total_rows_below_actual_rejected(self):
        problem = patients_problem()
        with pytest.raises(ValueError):
            discernibility(problem.table, QI, total_rows=3)

    def test_monotone_in_generalization(self):
        """Coarser full-domain generalizations never decrease C_DM."""
        problem = patients_problem()
        lattice = problem.lattice()
        for lattice_node in lattice.nodes():
            for successor in lattice.successors(lattice_node):
                finer = apply_generalization(problem, lattice_node).table
                coarser = apply_generalization(problem, successor).table
                assert discernibility(coarser, QI) >= discernibility(finer, QI)


class TestAverageClassSize:
    def test_perfect_when_every_class_is_k(self):
        problem = patients_problem()
        view = apply_generalization(problem, node(1, 1, 0))
        assert average_class_size(view.table, QI, 2) == 1.0

    def test_single_class(self):
        problem = patients_problem()
        view = apply_generalization(problem, node(1, 1, 2))
        assert average_class_size(view.table, QI, 2) == 3.0

    def test_empty_table(self):
        table = Table.from_rows(["a"], [])
        assert average_class_size(table, ["a"], 2) == 0.0


class TestPrecision:
    def test_zero_at_bottom(self):
        problem = patients_problem()
        assert precision(problem, node(0, 0, 0)) == 0.0

    def test_one_at_top(self):
        problem = patients_problem()
        assert precision(problem, problem.top_node()) == 1.0

    def test_intermediate(self):
        problem = patients_problem()
        # B:1/1, S:0/1, Z:1/2 → mean(1, 0, 0.5) = 0.5
        assert precision(problem, node(1, 0, 1)) == pytest.approx(0.5)

    def test_monotone_in_levels(self):
        problem = patients_problem()
        assert precision(problem, node(1, 0, 1)) < precision(problem, node(1, 1, 1))


class TestLossMetric:
    def test_zero_at_bottom(self):
        problem = patients_problem()
        assert loss_metric(problem, node(0, 0, 0)) == 0.0

    def test_one_at_top(self):
        problem = patients_problem()
        assert loss_metric(problem, problem.top_node()) == pytest.approx(1.0)

    def test_partial_zipcode_generalization(self):
        problem = patients_problem()
        # Zipcode level 1: 5371* covers 2 of 4 base values, 5370* covers 2:
        # per-row m=2 → (2-1)/(4-1) = 1/3; other attributes at 0.
        assert loss_metric(problem, node(0, 0, 1)) == pytest.approx((1 / 3) / 3)

    def test_bounded_between_zero_and_one(self):
        problem = patients_problem()
        for lattice_node in problem.lattice().nodes():
            value = loss_metric(problem, lattice_node)
            assert 0.0 <= value <= 1.0
