"""Integration smoke tests: every example script runs end to end.

Each example is executed in-process (``runpy``) with miniature arguments
so the whole module stays fast; stdout is captured and spot-checked for
the example's headline output.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(
    capsys, monkeypatch, name: str, *argv: str
) -> str:
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "quickstart.py")
        assert "All 5 two-anonymous generalizations" in out
        assert "Independent 2-anonymity check: PASS" in out

    def test_joining_attack(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "joining_attack.py")
        assert "Andre" in out
        assert "no longer identifies anyone uniquely" in out

    def test_census_release(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "census_release.py", "1000", "3")
        assert "basic-incognito" in out
        assert "independent check: PASS" in out

    def test_retail_pos(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "retail_pos.py", "5000", "5")
        assert "suppression budget" in out
        assert "Sample of the released transactions" in out

    def test_model_zoo(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "model_zoo.py", "400", "3")
        assert "mondrian" in out
        assert "cell-generalization" in out
        assert out.count("generalization/") >= 7

    def test_future_work(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "future_work.py", "1500")
        assert "materialized (waypoints)" in out
        assert "same" in out  # chunked == in-memory solutions

    def test_utility_analysis(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "utility_analysis.py", "1500", "5")
        assert "height-minimal" in out
        assert "education-weighted" in out


class TestRunFiguresCli:
    def test_nodes_artifact_miniature(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ADULTS_ROWS", "400")
        from repro.bench.run_figures import main

        code = main(["nodes", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Bottom-Up" in out and "Incognito" in out
        assert (tmp_path / "nodes_searched.txt").exists()

    def test_unknown_artifact_rejected(self):
        from repro.bench.run_figures import main

        with pytest.raises(SystemExit):
            main(["nope"])
