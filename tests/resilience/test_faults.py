"""Unit tests for the fault-injection plan and supervision config."""

from __future__ import annotations

import time

import pytest

from repro.parallel import ExecutionConfig
from repro.resilience import FaultPlan, InjectedWorkerCrash
from repro.resilience.faults import apply_worker_fault, poison_payload


class TestFaultPlanDraw:
    def test_draw_is_pure(self):
        plan = FaultPlan(crash_rate=0.3, timeout_rate=0.3, seed=11)
        for task_id in range(20):
            for attempt in range(3):
                first = plan.draw(task_id, attempt)
                assert plan.draw(task_id, attempt) == first

    def test_retries_draw_fresh_decisions(self):
        plan = FaultPlan(crash_rate=0.5, seed=4)
        outcomes = {plan.draw(1, attempt) for attempt in range(32)}
        # With rate 0.5 both outcomes appear within a few dozen attempts.
        assert outcomes == {"crash", None}

    def test_rate_one_always_fires(self):
        plan = FaultPlan(crash_rate=1.0, seed=0)
        assert all(plan.draw(t, 0) == "crash" for t in range(10))

    def test_no_faults_never_fires(self):
        plan = FaultPlan(seed=3)
        assert not plan.any_faults
        assert all(plan.draw(t, a) is None for t in range(5) for a in range(3))

    def test_seed_changes_outcomes(self):
        draws_a = [FaultPlan(crash_rate=0.5, seed=1).draw(t, 0) for t in range(64)]
        draws_b = [FaultPlan(crash_rate=0.5, seed=2).draw(t, 0) for t in range(64)]
        assert draws_a != draws_b

    def test_jitter_is_deterministic_and_bounded(self):
        plan = FaultPlan(seed=9)
        for task_id in range(10):
            value = plan.jitter(task_id, 1)
            assert value == plan.jitter(task_id, 1)
            assert 0.5 <= value < 1.5


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(timeout_rate=1.5)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=0.6, timeout_rate=0.6)

    def test_positive_durations(self):
        with pytest.raises(ValueError):
            FaultPlan(hold_seconds=0)
        with pytest.raises(ValueError):
            FaultPlan(slow_seconds=-1)


class TestFaultPlanSpec:
    def test_acceptance_spec_parses(self):
        plan = FaultPlan.from_spec("crash=0.2,timeout=0.1,seed=7")
        assert plan == FaultPlan(crash_rate=0.2, timeout_rate=0.1, seed=7)

    def test_all_keys_and_aliases(self):
        plan = FaultPlan.from_spec(
            "crash=0.1, timeout=0.1, slow=0.1, poison=0.1, memory=0.1,"
            " seed=3, hold=0.5, delay=0.01"
        )
        assert plan.memory_pressure_rate == 0.1
        assert plan.hold_seconds == 0.5
        assert plan.slow_seconds == 0.01
        assert plan.seed == 3

    def test_empty_spec_is_noop_plan(self):
        assert not FaultPlan.from_spec("").any_faults

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec entry"):
            FaultPlan.from_spec("explode=0.5")

    def test_malformed_value_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec value"):
            FaultPlan.from_spec("crash=lots")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec entry"):
            FaultPlan.from_spec("crash")

    def test_out_of_range_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("crash=0.9,timeout=0.9")

    def test_describe_mentions_non_defaults(self):
        text = FaultPlan(crash_rate=0.2, seed=7).describe()
        assert "crash_rate=0.2" in text and "seed=7" in text
        assert FaultPlan().describe() == "FaultPlan(no-op)"


class TestWorkerFaultApplication:
    def test_none_directive_is_noop(self):
        apply_worker_fault(None, in_process=False)

    def test_thread_crash_raises(self):
        with pytest.raises(InjectedWorkerCrash):
            apply_worker_fault(("crash", 0.0), in_process=False)

    def test_slow_and_timeout_stall(self):
        started = time.perf_counter()
        apply_worker_fault(("slow", 0.01), in_process=False)
        apply_worker_fault(("timeout", 0.01), in_process=False)
        assert time.perf_counter() - started >= 0.02

    def test_poison_applies_after_execution_not_here(self):
        apply_worker_fault(("poison", 0.0), in_process=False)

    def test_unknown_directive_rejected(self):
        with pytest.raises(ValueError):
            apply_worker_fault(("gamma-ray", 0.0), in_process=False)

    def test_poison_payload_truncates_results(self):
        results, delta = poison_payload((["a", "b", "c"], "delta"))
        assert results == ["a", "b"] and delta == "delta"


class TestExecutionConfigSupervision:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.chunk_timeout is None
        assert config.max_retries == 3
        assert config.faults is None
        assert config.effective_timeout is None

    def test_explicit_timeout_wins(self):
        config = ExecutionConfig(
            chunk_timeout=5.0,
            faults=FaultPlan(timeout_rate=0.5, hold_seconds=1.0),
        )
        assert config.effective_timeout == 5.0

    def test_injected_timeouts_imply_a_timeout(self):
        config = ExecutionConfig(
            faults=FaultPlan(timeout_rate=0.5, hold_seconds=2.0)
        )
        assert config.effective_timeout == 0.5
        # The floor keeps tiny holds from producing a hair-trigger timeout.
        floor = ExecutionConfig(
            faults=FaultPlan(timeout_rate=0.5, hold_seconds=0.2)
        )
        assert floor.effective_timeout == 0.1

    def test_faults_without_timeouts_leave_waits_unbounded(self):
        config = ExecutionConfig(faults=FaultPlan(crash_rate=0.5))
        assert config.effective_timeout is None

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            ExecutionConfig(chunk_timeout=0)
        with pytest.raises(ValueError):
            ExecutionConfig(chunk_timeout=-1.0)
        with pytest.raises(ValueError):
            ExecutionConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ExecutionConfig(backoff_base=-0.5)
        with pytest.raises(ValueError):
            ExecutionConfig(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ValueError):
            ExecutionConfig(faults="crash=1.0")  # must be a FaultPlan
