"""Checkpoint/resume: atomic persistence, kill-resume equivalence.

The kill-resume tests use a ``CheckpointStore`` subclass that raises
after the Nth successful save — the same crash surface a SIGKILL at a
level boundary exposes, but deterministic.  Every resumed run must
reproduce the uninterrupted run's node set *and* counters exactly, and
must never re-scan a completed level (checked via ``frequency.*``
totals: a re-scan would push the resumed total past the baseline).
"""

from __future__ import annotations

import json

import pytest

from repro.core.binary_search import samarati_binary_search
from repro.core.bottomup import bottom_up_search
from repro.core.incognito import basic_incognito
from repro.resilience import (
    CheckpointStore,
    FaultPlan,
    frequency_set_from_json,
    frequency_set_to_json,
    node_from_json,
    node_to_json,
    problem_fingerprint,
    use_checkpoints,
)
from tests.conftest import make_random_problem, tiny_numeric_problem


class Killed(RuntimeError):
    """Stands in for the process dying right after a checkpoint save."""


class BombStore(CheckpointStore):
    """A store that dies immediately after its Nth successful save."""

    def __init__(self, path, bomb_after: int) -> None:
        super().__init__(path)
        self.bomb_after = bomb_after

    def save(self, state) -> None:
        super().save(state)
        if self.saves >= self.bomb_after:
            raise Killed(f"killed after save #{self.saves}")


def comparable_counters(stats) -> dict:
    """All counters except wall-clock timings (inherently run-specific)."""
    return {
        key: value
        for key, value in stats.counters.as_dict().items()
        if "seconds" not in key
    }


class TestStore:
    def test_missing_file_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "absent.json").load() is None

    def test_save_is_atomic_and_roundtrips(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"format": 1, "payload": [1, 2, 3]})
        assert store.saves == 1
        # No temp litter: the only artifact is the final file.
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]
        assert json.loads(store.path.read_text()) == store.load()

    def test_save_replaces_whole_snapshot(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"a": 1, "stale": True})
        store.save({"a": 2})
        assert store.load() == {"a": 2}

    def test_corrupt_file_is_quarantined_not_fatal(self, tmp_path):
        """Truncated/corrupt checkpoints must never crash a resume.

        The bad file is moved aside with a ``.quarantined`` suffix (kept
        as evidence, never silently deleted) and, with no previous
        snapshot to fall back to, the load reports "start fresh".
        """
        path = tmp_path / "state.json"
        path.write_text("{not json")
        store = CheckpointStore(path)
        assert store.load() is None
        assert not path.exists()
        assert [p.name for p in store.quarantined] == [
            "state.json.quarantined"
        ]
        # Non-object JSON is equally untrustworthy.
        path.write_text("[1, 2]")
        assert CheckpointStore(path).load() is None

    def test_corrupt_file_falls_back_to_previous_level(self, tmp_path):
        """Save rotates the old snapshot aside; load recovers into it."""
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"level": 1})
        store.save({"level": 2})
        assert store.previous_path.exists()
        # Truncate the current file the way power loss mid-replace on a
        # non-atomic filesystem would.
        store.path.write_text('{"level": 2')
        recovered = CheckpointStore(store.path)
        assert recovered.load() == {"level": 1}
        assert recovered.fell_back
        assert len(recovered.quarantined) == 1
        # Both current and previous corrupt: start fresh, both aside.
        both = CheckpointStore(tmp_path / "state.json")
        both.path.write_text("garbage")
        both.previous_path.write_text("also garbage")
        assert both.load() is None
        assert len(both.quarantined) == 2

    def test_clear_removes_rotated_previous_too(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"level": 1})
        store.save({"level": 2})
        store.clear()
        assert not store.path.exists()
        assert not store.previous_path.exists()

    def test_load_matching_rejects_header_drift(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"kind": "incognito", "k": 2, "progress": 1})
        assert store.load_matching({"kind": "incognito", "k": 2}) is not None
        assert store.load_matching({"kind": "incognito", "k": 3}) is None
        assert store.load_matching({"kind": "bottom-up", "k": 2}) is None

    def test_clear_removes_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"a": 1})
        store.clear()
        assert store.load() is None
        store.clear()  # idempotent


class TestCodecs:
    def test_fingerprint_is_content_based(self):
        # Two independent constructions of the same data agree...
        assert problem_fingerprint(tiny_numeric_problem()) == (
            problem_fingerprint(tiny_numeric_problem())
        )
        # ...and different data disagrees.
        assert problem_fingerprint(make_random_problem(1)) != (
            problem_fingerprint(make_random_problem(2))
        )

    def test_node_roundtrip(self):
        problem = tiny_numeric_problem()
        lattice = problem.lattice()
        for height in range(lattice.max_height + 1):
            for node in lattice.nodes_at_height(height):
                assert node_from_json(node_to_json(node)) == node

    def test_frequency_set_roundtrip(self):
        from repro.core.anonymity import compute_frequency_set

        problem = tiny_numeric_problem()
        original = compute_frequency_set(problem, problem.bottom_node())
        restored = frequency_set_from_json(
            json.loads(json.dumps(frequency_set_to_json(original))), problem
        )
        assert restored.node == original.node
        assert restored.key_codes.dtype == original.key_codes.dtype
        assert restored.as_dict() == original.as_dict()


class TestKillResume:
    """Killing after level N and resuming must equal the uninterrupted run."""

    def check(self, algorithm, problem, k, tmp_path, bomb_after, resumed_key):
        baseline = algorithm(problem, k)

        path = tmp_path / "run.ckpt.json"
        with pytest.raises(Killed):
            algorithm(problem, k, checkpoint=BombStore(path, bomb_after))
        at_kill = CheckpointStore(path).load()
        assert at_kill is not None and not at_kill.get("completed")
        scans_at_kill = at_kill["counters"].get("frequency.table_scans", 0)

        resumed = algorithm(
            problem, k, checkpoint=CheckpointStore(path), resume=True
        )
        assert resumed.anonymous_nodes == baseline.anonymous_nodes
        assert comparable_counters(resumed.stats) == (
            comparable_counters(baseline.stats)
        )
        assert resumed.details[resumed_key] > 0
        # Completed levels are replayed, not re-scanned: the fresh scans
        # after resume are exactly the baseline's remainder.
        assert (
            resumed.stats.table_scans - scans_at_kill
            == baseline.stats.table_scans - scans_at_kill
        )
        assert resumed.stats.table_scans == baseline.stats.table_scans
        return baseline, resumed

    def test_incognito(self, tmp_path):
        problem = make_random_problem(9, num_rows=60, num_attributes=3)
        self.check(
            basic_incognito, problem, 2, tmp_path, 1, "resumed_iterations"
        )

    def test_bottom_up(self, tmp_path):
        problem = make_random_problem(17, num_rows=40, num_attributes=3)
        self.check(
            bottom_up_search, problem, 2, tmp_path, 2, "resumed_heights"
        )

    def test_binary_search(self, tmp_path):
        problem = make_random_problem(23, num_rows=60, num_attributes=3)
        baseline, resumed = self.check(
            samarati_binary_search, problem, 2, tmp_path, 2, "resumed_probes"
        )
        assert resumed.details["probes"] == baseline.details["probes"]


class TestCompletedResume:
    def test_replays_without_any_table_work(self, tmp_path):
        problem = make_random_problem(9, num_rows=60, num_attributes=3)
        path = tmp_path / "run.ckpt.json"
        first = basic_incognito(problem, 2, checkpoint=CheckpointStore(path))

        replay = basic_incognito(
            problem, 2, checkpoint=CheckpointStore(path), resume=True
        )
        assert replay.anonymous_nodes == first.anonymous_nodes
        assert comparable_counters(replay.stats) == (
            comparable_counters(first.stats)
        )
        assert replay.details["resumed_iterations"] == len(
            problem.quasi_identifier
        )
        assert replay.details["checkpoint_saves"] == 0
        # The restored elapsed is the original run's (as of its final
        # save, taken just before the run returned), not this replay's.
        assert 0 < replay.stats.elapsed_seconds <= first.stats.elapsed_seconds

    def test_mismatched_k_starts_fresh(self, tmp_path):
        problem = make_random_problem(9, num_rows=60, num_attributes=3)
        path = tmp_path / "run.ckpt.json"
        basic_incognito(problem, 2, checkpoint=CheckpointStore(path))

        fresh = basic_incognito(
            problem, 3, checkpoint=CheckpointStore(path), resume=True
        )
        assert fresh.details["resumed_iterations"] == 0
        assert fresh.anonymous_nodes == basic_incognito(problem, 3).anonymous_nodes

    def test_resume_without_checkpoint_file_runs_normally(self, tmp_path):
        problem = tiny_numeric_problem()
        result = basic_incognito(
            problem,
            2,
            checkpoint=CheckpointStore(tmp_path / "never-written.json"),
            resume=True,
        )
        assert result.anonymous_nodes == basic_incognito(problem, 2).anonymous_nodes


class TestRegionDefault:
    def test_fixed_signature_callers_checkpoint_and_resume(self, tmp_path):
        problem = make_random_problem(5, num_rows=50, num_attributes=3)
        with use_checkpoints(tmp_path):
            first = basic_incognito(problem, 2)
        files = list(tmp_path.glob("*.ckpt.json"))
        assert len(files) == 1
        assert files[0].name.startswith("basic-incognito-k2-")

        with use_checkpoints(tmp_path, resume=True):
            replay = basic_incognito(problem, 2)
        assert replay.anonymous_nodes == first.anonymous_nodes
        assert replay.details["resumed_iterations"] == len(
            problem.quasi_identifier
        )

    def test_no_region_default_means_no_files(self, tmp_path):
        problem = tiny_numeric_problem()
        basic_incognito(problem, 2)
        assert list(tmp_path.iterdir()) == []

    def test_distinct_runs_do_not_collide(self, tmp_path):
        with use_checkpoints(tmp_path):
            basic_incognito(make_random_problem(5, num_rows=30), 2)
            basic_incognito(make_random_problem(5, num_rows=30), 3)
            bottom_up_search(make_random_problem(5, num_rows=30), 2)
        assert len(list(tmp_path.glob("*.ckpt.json"))) == 3


class TestCheckpointUnderFaults:
    def test_kill_resume_with_injected_faults(self, tmp_path):
        """The two tentpole halves compose: faults during a checkpointed
        run don't change what resume reconstructs."""
        from repro.parallel import ExecutionConfig

        problem = make_random_problem(9, num_rows=60, num_attributes=3)
        baseline = basic_incognito(problem, 2)
        execution = ExecutionConfig(
            mode="threads",
            workers=2,
            faults=FaultPlan(crash_rate=0.2, timeout_rate=0.1, seed=7),
            chunk_timeout=0.25,
            backoff_base=0.001,
            backoff_cap=0.01,
        )
        path = tmp_path / "run.ckpt.json"
        with pytest.raises(Killed):
            basic_incognito(
                problem,
                2,
                execution=execution,
                checkpoint=BombStore(path, 1),
            )
        resumed = basic_incognito(
            problem,
            2,
            execution=execution,
            checkpoint=CheckpointStore(path),
            resume=True,
        )
        assert resumed.anonymous_nodes == baseline.anonymous_nodes
        assert resumed.stats.table_scans == baseline.stats.table_scans
