"""Chaos suite: full algorithms under injected faults (CI's chaos job).

Hypothesis generates random problems and runs Incognito on a fault-ridden
thread pool; a dedicated seed-listed case runs the ISSUE acceptance plan —
``FaultPlan(crash_rate=0.2, timeout_rate=0.1, seed=7)`` — on a real
process pool.  In every case the anonymous node set and all
``frequency.*`` counters must be bit-identical to the serial no-fault
run: fault injection may cost retries and wall-clock, never answers.

Run with ``pytest -m chaos``; the CI job uses ``HYPOTHESIS_PROFILE=ci``
for derandomized, reproducible examples.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import basic_incognito, bottom_up_search
from repro.parallel import ExecutionConfig
from repro.resilience import FaultPlan
from tests.conftest import make_random_problem

pytestmark = pytest.mark.chaos

#: The ISSUE acceptance fault plan, verbatim.
ACCEPTANCE_PLAN = FaultPlan(crash_rate=0.2, timeout_rate=0.1, seed=7)


def frequency_counters(result) -> dict:
    return {
        key: value
        for key, value in result.stats.counters.as_dict().items()
        if key.startswith("frequency.")
    }


def chaotic_threads(seed: int) -> ExecutionConfig:
    """A two-worker thread pool with a mixed, seeded fault plan.

    Short stalls and near-zero backoff keep hypothesis examples fast while
    still driving every failure path (crash, timeout, poison).
    """
    return ExecutionConfig(
        mode="threads",
        workers=2,
        faults=FaultPlan(
            crash_rate=0.15,
            timeout_rate=0.1,
            poison_rate=0.1,
            seed=seed,
            hold_seconds=0.2,
        ),
        chunk_timeout=0.1,
        backoff_base=0.001,
        backoff_cap=0.01,
    )


@given(seed=st.integers(0, 2**20), k=st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_incognito_differential_under_faults(seed, k):
    problem = make_random_problem(seed)
    serial = basic_incognito(problem, k)
    chaotic = basic_incognito(problem, k, execution=chaotic_threads(seed))
    assert chaotic.anonymous_nodes == serial.anonymous_nodes
    assert frequency_counters(chaotic) == frequency_counters(serial)


@given(seed=st.integers(0, 2**20), k=st.integers(1, 6))
@settings(max_examples=10, deadline=None)
def test_bottom_up_differential_under_faults(seed, k):
    problem = make_random_problem(seed)
    serial = bottom_up_search(problem, k)
    chaotic = bottom_up_search(problem, k, execution=chaotic_threads(seed))
    assert chaotic.anonymous_nodes == serial.anonymous_nodes
    assert frequency_counters(chaotic) == frequency_counters(serial)


def test_acceptance_plan_on_process_pool():
    """The acceptance criterion's fixed-seed case on a real process pool.

    Seed-listed rather than hypothesis-driven because a process pool per
    generated example would dominate the suite's runtime (the same
    trade-off ``tests/differential`` makes).
    """
    execution = ExecutionConfig(
        mode="processes",
        workers=2,
        faults=ACCEPTANCE_PLAN,
        chunk_timeout=0.25,
        backoff_base=0.001,
        backoff_cap=0.01,
    )
    injected_total = 0
    for seed in (3, 11, 42):
        problem = make_random_problem(seed, num_rows=30)
        for k in (2, 3):
            serial = basic_incognito(problem, k)
            chaotic = basic_incognito(problem, k, execution=execution)
            assert chaotic.anonymous_nodes == serial.anonymous_nodes, seed
            assert frequency_counters(chaotic) == frequency_counters(serial)
            injected_total += sum(
                value
                for key, value in chaotic.stats.counters.as_dict().items()
                if key.startswith("fault.injected.")
            )
    # The plan must have actually fired somewhere across the matrix —
    # otherwise this test silently degrades into the no-fault differential.
    assert injected_total > 0
