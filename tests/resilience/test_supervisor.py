"""Supervised batch path: retry, degradation ladder, counter determinism.

Every test compares a fault-injected parallel run against a serial
no-fault baseline: the frequency sets and all ``frequency.*`` counters
must be bit-identical (the resilience contract), while the injections
themselves surface under ``fault.*`` / ``retry.*``.
"""

from __future__ import annotations

import pytest

from repro.core.anonymity import FrequencyEvaluator
from repro.core.fscache import FrequencySetCache
from repro.core.stats import SearchStats
from repro.parallel import BatchMaterializer, ExecutionConfig
from repro.resilience import FaultPlan
from tests.conftest import tiny_numeric_problem

#: Fast supervision policy for tests: short stalls, near-zero backoff.
FAST = dict(chunk_timeout=0.15, backoff_base=0.001, backoff_cap=0.01)


def all_requests(problem):
    lattice = problem.lattice()
    nodes = []
    for height in range(lattice.max_height + 1):
        nodes.extend(lattice.nodes_at_height(height))
    return [(node, None) for node in nodes]


def serial_baseline(problem, requests, rounds=1):
    evaluator = FrequencyEvaluator(problem, SearchStats())
    with BatchMaterializer(problem, ExecutionConfig()) as pool:
        for _ in range(rounds):
            sets = pool.materialize_batch(evaluator, requests)
    return sets, evaluator.stats.counters


def frequency_counters(counters) -> dict:
    return {
        key: value
        for key, value in counters.as_dict().items()
        if key.startswith("frequency.")
    }


def assert_matches_baseline(problem, requests, config, *, cache=None, rounds=1):
    """Run under ``config``; assert sets + frequency.* match serial no-fault.

    ``rounds`` re-materialises the same batch through one pool, advancing
    the task counter so a low-rate fault plan gets enough draws to fire
    (algorithm runs dispatch one batch per lattice level the same way).
    """
    expected_sets, expected_counters = serial_baseline(problem, requests, rounds)
    evaluator = FrequencyEvaluator(problem, SearchStats(), cache=cache)
    with BatchMaterializer(problem, config) as pool:
        for _ in range(rounds):
            actual_sets = pool.materialize_batch(evaluator, requests)
        final_mode = pool.mode
    for left, right in zip(expected_sets, actual_sets):
        assert left.node == right.node
        assert left.as_dict() == right.as_dict()
    if cache is None:
        assert frequency_counters(evaluator.stats.counters) == (
            frequency_counters(expected_counters)
        )
    return evaluator.stats.counters, final_mode


class TestFaultMatrixThreads:
    def test_crash_and_timeout_mix_is_transparent(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(
            crash_rate=0.2, timeout_rate=0.1, seed=7, hold_seconds=0.3
        )
        config = ExecutionConfig(
            mode="threads", workers=2, faults=plan, **FAST
        )
        counters, _ = assert_matches_baseline(
            problem, requests, config, rounds=5
        )
        injected = sum(
            value
            for key, value in counters.as_dict().items()
            if key.startswith("fault.injected.")
        )
        assert injected > 0
        assert counters.get("retry.attempts", 0) >= 1

    def test_poison_everything_falls_back_serially(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(poison_rate=1.0, seed=5)
        config = ExecutionConfig(
            mode="threads", workers=2, max_retries=1, faults=plan, **FAST
        )
        counters, _ = assert_matches_baseline(problem, requests, config)
        assert counters.get("fault.poisoned", 0) >= 1
        # Every attempt poisons, so every chunk exhausts its retry budget
        # and lands on the always-clean serial fallback.
        assert counters.get("retry.serial_fallbacks", 0) >= 1

    def test_constant_crashes_still_complete(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(crash_rate=1.0, seed=2)
        config = ExecutionConfig(
            mode="threads", workers=2, max_retries=2, faults=plan, **FAST
        )
        counters, _ = assert_matches_baseline(problem, requests, config)
        assert counters.get("fault.crashes", 0) >= 1
        assert counters.get("retry.serial_fallbacks", 0) >= 1

    def test_slow_workers_do_not_trip_retries(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(slow_rate=1.0, slow_seconds=0.005, seed=1)
        config = ExecutionConfig(mode="threads", workers=2, faults=plan)
        counters, _ = assert_matches_baseline(problem, requests, config)
        assert counters.get("fault.injected.slow", 0) >= 1
        assert counters.get("retry.attempts", 0) == 0


class TestMemoryPressure:
    def test_degrades_cache_to_scan_through(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        cache = FrequencySetCache()
        plan = FaultPlan(memory_pressure_rate=1.0, seed=3)
        config = ExecutionConfig(mode="threads", workers=2, faults=plan)
        counters, _ = assert_matches_baseline(
            problem, requests, config, cache=cache
        )
        assert cache.degraded
        assert counters.get("fault.memory_pressure", 0) >= 1
        # Results survive degradation; the cache just stops serving, so a
        # repeat batch re-scans instead of hitting.
        evaluator = FrequencyEvaluator(problem, SearchStats(), cache=cache)
        with BatchMaterializer(problem, config) as pool:
            pool.materialize_batch(evaluator, requests)
        assert evaluator.stats.cache_hits == 0
        assert evaluator.stats.table_scans == len(requests)


class TestProcessPoolLadder:
    def test_acceptance_plan_on_processes(self):
        """The ISSUE acceptance case: crash=0.2, timeout=0.1, seed=7."""
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(crash_rate=0.2, timeout_rate=0.1, seed=7)
        config = ExecutionConfig(
            mode="processes",
            workers=2,
            faults=plan,
            chunk_timeout=0.25,
            backoff_base=0.001,
            backoff_cap=0.01,
        )
        counters, _ = assert_matches_baseline(
            problem, requests, config, rounds=5
        )
        injected = sum(
            value
            for key, value in counters.as_dict().items()
            if key.startswith("fault.injected.")
        )
        assert injected > 0

    def test_constant_crashes_walk_the_ladder(self):
        """Process crashes break the pool: one rebuild, then demotion."""
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(crash_rate=1.0, seed=6)
        config = ExecutionConfig(
            mode="processes", workers=2, max_retries=2, faults=plan, **FAST
        )
        counters, final_mode = assert_matches_baseline(
            problem, requests, config
        )
        assert counters.get("fault.pool_rebuilds", 0) == 1
        assert counters.get("fault.demotions", 0) >= 1
        assert final_mode in ("threads", "serial")


class TestShardLadder:
    """Fault matrix for the ``shards`` rung (shards → threads → serial).

    PR 6 added shard-mode execution to the degradation ladder but only
    the processes rung had a dedicated fault-matrix test; these mirror
    it: every shard-mode run under injected faults must stay
    bit-identical to the serial no-fault baseline, and constant failure
    must demote down the ladder rather than wedge or error out.
    """

    #: Tiny shards so even the test fixture fans out over several ranges.
    SHARD = dict(shard_rows=4)

    def test_acceptance_plan_on_shards(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(crash_rate=0.2, timeout_rate=0.1, seed=7)
        config = ExecutionConfig(
            mode="shards",
            workers=2,
            faults=plan,
            chunk_timeout=0.25,
            backoff_base=0.001,
            backoff_cap=0.01,
            **self.SHARD,
        )
        counters, _ = assert_matches_baseline(
            problem, requests, config, rounds=5
        )
        injected = sum(
            value
            for key, value in counters.as_dict().items()
            if key.startswith("fault.injected.")
        )
        assert injected > 0

    def test_constant_crashes_walk_shards_down_the_ladder(self):
        """Every shard task crashes: demote to threads, then serial."""
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(crash_rate=1.0, seed=6)
        config = ExecutionConfig(
            mode="shards",
            workers=2,
            max_retries=2,
            faults=plan,
            **FAST,
            **self.SHARD,
        )
        counters, final_mode = assert_matches_baseline(
            problem, requests, config
        )
        assert counters.get("fault.demotions", 0) >= 1
        assert final_mode in ("threads", "serial")

    def test_poison_on_shards_reaches_serial_fallback(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(poison_rate=1.0, seed=5)
        config = ExecutionConfig(
            mode="shards",
            workers=2,
            max_retries=1,
            faults=plan,
            **FAST,
            **self.SHARD,
        )
        counters, _ = assert_matches_baseline(problem, requests, config)
        assert counters.get("fault.poisoned", 0) >= 1
        assert counters.get("retry.serial_fallbacks", 0) >= 1

    def test_shard_timeouts_retry_transparently(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        plan = FaultPlan(timeout_rate=0.4, seed=9, hold_seconds=0.3)
        config = ExecutionConfig(
            mode="shards", workers=2, faults=plan, **FAST, **self.SHARD
        )
        counters, _ = assert_matches_baseline(
            problem, requests, config, rounds=3
        )
        assert counters.get("fault.injected.timeout", 0) >= 1
        assert counters.get("retry.attempts", 0) >= 1


class TestShutdownSafety:
    class _BrokenExecutor:
        def shutdown(self, wait=True, cancel_futures=False):
            raise RuntimeError("pool already torn down")

    def test_close_records_instead_of_raising(self):
        problem = tiny_numeric_problem()
        pool = BatchMaterializer(
            problem, ExecutionConfig(mode="threads", workers=2)
        )
        pool._executor = self._BrokenExecutor()
        pool.close()  # must not raise
        assert isinstance(pool.shutdown_error, RuntimeError)
        assert pool._executor is None

    def test_context_exit_never_masks_the_algorithm_error(self):
        problem = tiny_numeric_problem()
        with pytest.raises(KeyError, match="algorithm bug"):
            with BatchMaterializer(
                problem, ExecutionConfig(mode="threads", workers=2)
            ) as pool:
                pool._executor = self._BrokenExecutor()
                raise KeyError("algorithm bug")
        assert isinstance(pool.shutdown_error, RuntimeError)
