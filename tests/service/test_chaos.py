"""Service chaos suite: crash the server and its runners, lose nothing.

Drives a *real* ``repro serve`` process (spawned with its own process
group so a SIGKILL takes the server and every job subprocess with it —
a machine-crash stand-in) through the full robustness contract:

* seeded job-level fault injection crashes and hangs runners mid-flight
  (``crash=0.4,timeout=0.2,seed=113`` — chosen so job seq 1 crashes on
  its first attempt and runs clean afterwards, guaranteeing a
  resumed-then-succeeded witness);
* the server itself is SIGKILLed mid-job and restarted on the same data
  directory, which must recover every non-terminal job from the WAL;
* every submitted job ends terminal — succeeded (possibly after resume)
  or failed with a recorded cause — and every succeeded job's result is
  bit-identical to a direct in-process batch run of the same spec;
* overload is an explicit 429, never unbounded queueing;
* once all jobs are terminal and the server has drained, no checkpoint,
  heartbeat, or shared-memory segment is left orphaned.

This is the suite the CI ``service-chaos`` job runs.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import runner
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.jobs import JobSpec
from tests.service.conftest import job_payload, write_dataset_csv

pytestmark = pytest.mark.chaos

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

FAULT_SPEC = "crash=0.4,timeout=0.2,seed=113"

SERVE_ARGS = [
    "--max-running", "2",
    "--max-queue", "16",
    "--tenant-budget", "2",
    "--max-attempts", "5",
    "--heartbeat-timeout", "3.0",
]


class LiveService:
    """One ``repro serve`` subprocess in its own process group."""

    def __init__(
        self,
        data_dir: Path,
        env: dict,
        label: str,
        fault_spec: str | None = FAULT_SPEC,
    ) -> None:
        command = [sys.executable, "-m", "repro.cli", "serve", str(data_dir)]
        command += SERVE_ARGS
        if fault_spec:
            command += ["--inject-job-faults", fault_spec]
        self.data_dir = data_dir
        self.log = open(data_dir.parent / f"server-{label}.log", "w")
        self.process = subprocess.Popen(
            command,
            env=env,
            stdout=self.log,
            stderr=subprocess.STDOUT,
            start_new_session=True,  # own pgid: killpg == machine crash
        )
        self.client = self._connect()

    def _connect(self, timeout: float = 60.0) -> ServiceClient:
        """Wait for *this* process's server.json, then for /healthz."""
        info_path = self.data_dir / "server.json"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            assert self.process.poll() is None, (
                f"server died during startup (exit {self.process.returncode})"
            )
            try:
                info = json.loads(info_path.read_text())
            except (OSError, json.JSONDecodeError):
                info = None
            if info and info.get("pid") == self.process.pid:
                client = ServiceClient(info["host"], int(info["port"]))
                client.wait_reachable(timeout)
                return client
            time.sleep(0.1)
        raise TimeoutError("server never published server.json")

    def sigkill_group(self) -> None:
        """The machine-crash: SIGKILL the server and all its runners."""
        os.killpg(self.process.pid, signal.SIGKILL)
        self.process.wait(timeout=30)
        self.log.close()

    def sigterm_and_wait(self, timeout: float = 60.0) -> int:
        self.process.send_signal(signal.SIGTERM)
        code = self.process.wait(timeout=timeout)
        self.log.close()
        return code

    def ensure_dead(self) -> None:
        if self.process.poll() is None:
            try:
                os.killpg(self.process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            self.process.wait(timeout=30)
        if not self.log.closed:
            self.log.close()


@pytest.fixture
def service_env(tmp_path, monkeypatch):
    manifest_dir = tmp_path / "shm-manifest"
    monkeypatch.setenv("REPRO_SHM_MANIFEST_DIR", str(manifest_dir))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_SHM_MANIFEST_DIR"] = str(manifest_dir)
    return env


def wait_for_resumed_run(client: ServiceClient, timeout: float = 120.0) -> None:
    """Block until an injected crash has already forced a resume *and*
    some job is mid-execution — so the SIGKILL that follows lands after
    the fault-injection story has started, not before.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            counters = client.metrics()["counters"]
            jobs = client.jobs()
        except ServiceUnavailable:
            time.sleep(0.1)
            continue
        resumed = counters.get("service.jobs_resumed", 0)
        running = any(job["state"] == "running" for job in jobs)
        if resumed >= 1 and running:
            return
        time.sleep(0.05)
    raise TimeoutError("no resumed attempt observed before the kill window")


def assert_no_orphan_artifacts(data_dir: Path) -> None:
    """After full terminality + drain: no resume machinery left behind."""
    from repro.shard.manifest import read_entries, sweep_orphans

    jobs_dir = data_dir / "jobs"
    leftovers = [
        path
        for job_dir in (sorted(jobs_dir.iterdir()) if jobs_dir.exists() else [])
        for path in job_dir.iterdir()
        if path.name
        in (
            runner.CHECKPOINT_FILE,
            runner.CHECKPOINT_FILE + ".prev",
            runner.HEARTBEAT_FILE,
        )
    ]
    assert leftovers == [], f"orphaned job artifacts: {leftovers}"
    sweep_orphans()  # reap anything the SIGKILLed group left behind
    assert read_entries() == [], "orphaned shared-memory segments remain"


def test_server_kill_restart_recovers_every_job(tmp_path, service_env):
    data_dir = tmp_path / "svc"
    data_dir.mkdir()
    dataset = write_dataset_csv(tmp_path)

    server = LiveService(data_dir, service_env, label="first")
    try:
        # Four jobs across tenants (budget is 2 per tenant): a crash-prone
        # basic run, a bottom-up run, a shard-mode run, and a job with an
        # impossible deadline (runner cold start alone exceeds it).
        submissions = [
            job_payload(dataset, tenant="t-a"),
            job_payload(dataset, algorithm="bottomup", tenant="t-b"),
            job_payload(
                dataset,
                mode="shards",
                workers=2,
                shard_rows=4,
                tenant="t-c",
            ),
            job_payload(dataset, deadline_seconds=0.5, tenant="t-d"),
        ]
        ids = {}
        for name, payload in zip("ABCD", submissions):
            status, body = server.client.submit(payload)
            assert status == 202, body
            ids[name] = body["id"]

        # Overload: the third same-tenant submission must be refused
        # explicitly while the first two are still active (they hold the
        # tenant's whole budget for seconds; the refusal is not racy).
        greedy = []
        for _ in range(2):
            status, body = server.client.submit(
                job_payload(dataset, tenant="greedy")
            )
            assert status == 202
            greedy.append(body["id"])
        status, body = server.client.submit(
            job_payload(dataset, tenant="greedy")
        )
        assert status == 429 and body["reason"] == "tenant_budget"

        # Machine crash while at least one runner is mid-job — and only
        # after the seeded crash injection has already forced a resume
        # (job A's ``resumed`` flag is persisted, so the witness survives
        # whatever the kill interrupts next).
        wait_for_resumed_run(server.client)
        server.sigkill_group()

        server = LiveService(data_dir, service_env, label="second")
        recovered = server.client.metrics()["counters"].get(
            "service.jobs_recovered", 0
        )
        assert recovered >= 1, "the kill interrupted nothing?"

        terminal = {
            job_id: server.client.wait_terminal(
                job_id, timeout=300, tolerate_downtime=True
            )
            for job_id in list(ids.values()) + greedy
        }

        # Every job is terminal; failures carry a recorded cause.
        for job_id, record in terminal.items():
            assert record["state"] in ("succeeded", "failed"), record
            if record["state"] == "failed":
                assert record["cause"], f"failed job {job_id} without a cause"

        # The impossible deadline is a terminal failure, never a retry loop.
        assert terminal[ids["D"]]["state"] == "failed"
        assert "deadline exceeded" in terminal[ids["D"]]["cause"]

        # Seq 1 drew an injected crash on attempt 0 (seed 113), so job A
        # is the guaranteed resumed-then-succeeded witness.
        assert terminal[ids["A"]]["state"] == "succeeded"
        assert terminal[ids["A"]]["resumed"]
        assert terminal[ids["A"]]["attempt"] >= 2

        # The other well-formed jobs also converge to success within the
        # attempt budget (their draw sequences each contain a clean run).
        for name in "BC":
            assert terminal[ids[name]]["state"] == "succeeded", terminal[
                ids[name]
            ]

        # Bit-identity: every succeeded job equals a direct batch run of
        # its (persisted, spill-rewritten) spec — crashes, hangs, kills,
        # and resumes along the way must not change a single byte.
        compared = 0
        for job_id, record in terminal.items():
            if record["state"] != "succeeded":
                continue
            status, result = server.client.result(job_id)
            assert status == 200
            oracle = runner.run_job_inline(JobSpec.from_json(record["spec"]))
            assert runner.comparable(result) == runner.comparable(oracle), (
                f"job {job_id} diverged from the direct batch run"
            )
            compared += 1
        assert compared >= 3

        # Graceful exit: SIGTERM drains and returns success.
        assert server.sigterm_and_wait() == 0
        assert_no_orphan_artifacts(data_dir)
    finally:
        server.ensure_dead()


def test_killed_runner_still_stitches_to_one_valid_trace(
    tmp_path, service_env
):
    """Chaos meets the stitcher: a job whose first attempt is crashed by
    fault injection must still produce a *single* valid Chrome trace —
    the resumed attempt continues the trace id minted at submission, the
    crashed attempt's never-closed spans are dropped (not orphaned), and
    timestamps stay monotonic per lane across server/runner/worker
    processes.
    """
    from repro.obs.context import TraceContext
    from repro.obs.stitch import stitch_directory, validate_chrome

    data_dir = tmp_path / "svc"
    data_dir.mkdir()
    dataset = write_dataset_csv(tmp_path)

    caller = TraceContext.root().child_of(0xC0FFEE)
    server = LiveService(data_dir, service_env, label="stitch")
    try:
        # Job seq 1 draws an injected crash on attempt 0 (seed 113) and
        # runs clean afterwards; shards mode adds worker processes to
        # the trace.
        status, body = server.client.submit(
            job_payload(dataset, mode="shards", workers=2, shard_rows=4),
            traceparent=caller.to_traceparent(),
        )
        assert status == 202, body
        job_id = body["id"]

        record = server.client.wait_terminal(job_id, timeout=300)
        assert record["state"] == "succeeded", record
        assert record["resumed"] and record["attempt"] >= 2
        assert server.sigterm_and_wait() == 0
    finally:
        server.ensure_dead()

    # The whole service tree stitches into one validated trace ...
    chrome, summary = stitch_directory(data_dir)
    validate_chrome(chrome)
    # ... on exactly the trace id the client propagated: submit span,
    # both attempts' surviving spans, and worker chunks all share it.
    assert summary["trace_ids"] == [caller.trace_id]
    assert len(summary["processes"]) >= 3, summary  # server, runner, workers
    assert summary["resolved_links"] >= 2, summary

    names = [
        event["name"]
        for event in chrome["traceEvents"]
        if event["ph"] == "B"
    ]
    assert "service.job.submit" in names
    assert "worker.chunk" in names
    # Attempt 0 was SIGKILLed mid-run: its service.job.run span never
    # closed and must be dropped, leaving exactly the resumed attempt's.
    assert names.count("service.job.run") == 1

    # The job directory alone also stitches and stays on the same trace.
    _, job_summary = stitch_directory(data_dir / "jobs" / job_id)
    assert job_summary["trace_ids"] == [caller.trace_id]


def test_sigterm_mid_job_drains_then_resumes_cleanly(tmp_path, service_env):
    data_dir = tmp_path / "svc"
    data_dir.mkdir()
    dataset = write_dataset_csv(tmp_path)

    server = LiveService(data_dir, service_env, label="drain", fault_spec=None)
    try:
        status, body = server.client.submit(job_payload(dataset))
        assert status == 202
        job_id = body["id"]
        # Drain while the runner is (at most) mid-flight.  Whether the
        # job finished, checkpointed, or had not started, the restarted
        # server must carry it to the same terminal result.
        assert server.sigterm_and_wait() == 0

        replay_state = json.loads(
            (data_dir / "jobs.snapshot.json").read_text()
        )["jobs"][0]["state"]
        assert replay_state in ("queued", "succeeded")

        server = LiveService(data_dir, service_env, label="drain2", fault_spec=None)
        record = server.client.wait_terminal(job_id, timeout=300)
        assert record["state"] == "succeeded"
        status, result = server.client.result(job_id)
        assert status == 200
        oracle = runner.run_job_inline(JobSpec.from_json(record["spec"]))
        assert runner.comparable(result) == runner.comparable(oracle)

        assert server.sigterm_and_wait() == 0
        assert_no_orphan_artifacts(data_dir)
    finally:
        server.ensure_dead()
