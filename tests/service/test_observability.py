"""Service-layer observability: trace propagation, telemetry routes, SLOs.

Covers the surfaces the obs layer exposes *through* the service stack:

* ``traceparent`` flows client → server → record and is persisted, so
  every attempt of a job (including retries after a restart) stays on
  the trace minted at submission.
* ``GET /metrics?format=prometheus`` serves a text exposition that the
  strict parser accepts; ``GET /metrics/history`` serves the sampler's
  delta time series.
* A breached SLO degrades ``/healthz`` to 503 naming the breach, and
  the server recovers once the window slides past it.
* ``runner.log`` is structured JSON whose lines correlate with the
  trace (trace_id / span_id / job_id on every event).
* ``repro status`` renders the one-screen view from live documents.
"""

from __future__ import annotations

import json
import signal
import sys

import pytest

from repro.obs.context import TraceContext
from repro.obs.telemetry import SloPolicy, parse_exposition
from repro.service import runner
from repro.service.jobs import JobRecord, JobSpec
from repro.service.manager import JobManager
from repro.service.status import render_status, resolve_server_info
from tests.service.conftest import job_payload, write_dataset_csv
from tests.service.test_server import LiveServer


@pytest.fixture
def quiet_manager(tmp_path):
    """A manager with no scheduler thread (nothing ever launches)."""
    manager = JobManager(
        tmp_path / "svc", max_queue=4, tenant_budget=4, max_running=1
    )
    yield manager
    manager.store.close()


class TestTraceparentPropagation:
    def test_submit_continues_callers_trace(self, quiet_manager, tmp_path):
        caller = TraceContext.root().child_of(0x1234)
        spec = JobSpec.from_json(job_payload(write_dataset_csv(tmp_path)))
        record = quiet_manager.submit(spec, caller.to_traceparent())
        persisted = TraceContext.from_traceparent(record.traceparent)
        assert persisted is not None
        # same trace as the caller, but the *submit span's* position —
        # the job's attempts parent under the server, not the client.
        assert persisted.trace_id == caller.trace_id
        assert persisted.span_id != caller.span_id

    def test_submit_without_context_roots_a_fresh_trace(
        self, quiet_manager, tmp_path
    ):
        spec = JobSpec.from_json(job_payload(write_dataset_csv(tmp_path)))
        record = quiet_manager.submit(spec)
        context = TraceContext.from_traceparent(record.traceparent)
        assert context is not None and context.span_id is not None

    def test_submit_span_lands_on_disk_promptly(self, quiet_manager, tmp_path):
        """The sink buffers; submit must flush so a live stitch sees it."""
        spec = JobSpec.from_json(job_payload(write_dataset_csv(tmp_path)))
        record = quiet_manager.submit(spec, None)
        lines = (
            (quiet_manager.data_dir / "trace.jsonl").read_text().splitlines()
        )
        names = {json.loads(line)["name"] for line in lines}
        assert "service.job.submit" in names
        expected = TraceContext.from_traceparent(record.traceparent)
        ids = {json.loads(line)["trace_id"] for line in lines}
        assert expected.trace_id in ids

    def test_traceparent_survives_record_round_trip(self, tmp_path):
        spec = JobSpec.from_json(job_payload(write_dataset_csv(tmp_path)))
        wire = TraceContext.root().child_of(99).to_traceparent()
        record = JobRecord(
            id="j1", seq=1, spec=spec, state="queued", traceparent=wire
        )
        assert JobRecord.from_json(record.to_json()).traceparent == wire

    def test_http_header_reaches_the_record(self, quiet_manager, tmp_path):
        caller = TraceContext.root().child_of(0xBEEF)
        payload = job_payload(write_dataset_csv(tmp_path))
        with LiveServer(quiet_manager) as live:
            status, accepted = live.client.submit(
                payload, traceparent=caller.to_traceparent()
            )
            assert status == 202
        record = quiet_manager.get(accepted["id"])
        persisted = TraceContext.from_traceparent(record.traceparent)
        assert persisted.trace_id == caller.trace_id


class TestTelemetryRoutes:
    def test_prometheus_exposition_passes_strict_parser(self, quiet_manager):
        with LiveServer(quiet_manager) as live:
            live.client.healthz()  # guarantee at least one request counted
            families = parse_exposition(live.client.metrics_prometheus())
        requests = families["repro_service_requests_total"]
        assert requests["type"] == "counter"
        assert requests["samples"][0][2] >= 1
        assert families["repro_queue_depth"]["type"] == "gauge"
        assert families["repro_max_running"]["samples"][0][2] == 1.0

    def test_prometheus_scrape_does_not_pollute_history(self, quiet_manager):
        with LiveServer(quiet_manager) as live:
            before = len(quiet_manager.history_document()["samples"])
            live.client.metrics_prometheus()
            after = len(quiet_manager.history_document()["samples"])
        assert after == before

    def test_history_serves_the_sampled_ring(self, quiet_manager):
        quiet_manager.sampler.sample_now()
        quiet_manager.counters.incr("service.jobs_submitted")
        quiet_manager.sampler.sample_now()
        with LiveServer(quiet_manager) as live:
            history = live.client.metrics_history()
        samples = history["samples"]
        assert len(samples) == 2
        latest = samples[-1]
        assert {"ts", "counters", "deltas", "gauges"} <= set(latest)
        assert latest["deltas"]["service.jobs_submitted"] == 1
        assert "queue_depth" in latest["gauges"]


class TestSloDegradesHealth:
    @pytest.fixture
    def slo_manager(self, tmp_path):
        manager = JobManager(
            tmp_path / "svc",
            max_queue=4,
            tenant_budget=4,
            max_running=1,
            slo_policy=SloPolicy(p99_latency_seconds=0.05, window_samples=2),
        )
        yield manager
        manager.store.close()

    def test_breach_flips_healthz_to_503_then_recovers(self, slo_manager):
        with LiveServer(slo_manager) as live:
            slo_manager.sampler.sample_now()
            assert live.client.healthz()["status"] == "ok"

            # one pathologically slow job enters the window
            slo_manager.metrics.observe("latency.job_total_seconds", 9.0)
            slo_manager.sampler.sample_now()
            status, health = live.client.request("GET", "/healthz")
            assert status == 503
            assert health["status"] == "degraded"
            breached = {entry["name"] for entry in health["slo"]["breached"]}
            assert breached == {"p99_latency"}
            detail = health["slo"]["breached"][0]["detail"]
            assert "exceeds" in detail
            assert slo_manager.counters.get("slo.breaches") == 1
            assert (
                slo_manager.counters.get("slo.breach.p99_latency") == 1
            )

            # two clean samples slide the window past the slow job
            slo_manager.sampler.sample_now()
            slo_manager.sampler.sample_now()
            status, health = live.client.request("GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            assert slo_manager.counters.get("slo.recoveries") == 1

    def test_transition_edges_fire_once(self, slo_manager):
        slo_manager.sampler.sample_now()
        slo_manager.metrics.observe("latency.job_total_seconds", 9.0)
        slo_manager.sampler.sample_now()
        slo_manager.metrics.observe("latency.job_total_seconds", 9.0)
        slo_manager.sampler.sample_now()  # still breached: no second count
        assert slo_manager.counters.get("slo.breaches") == 1


class TestStructuredRunnerLog:
    def _run_in_process(self, tmp_path, payload, traceparent):
        """Drive one attempt in-process; restore the globals the child
        target rightfully clobbers (streams, SIGTERM, trace env)."""
        import os

        from repro import obs

        job_dir = tmp_path / "job"
        job_dir.mkdir()
        saved_streams = sys.stdout, sys.stderr
        saved_handler = signal.getsignal(signal.SIGTERM)
        try:
            runner.run_job_child(
                payload, str(job_dir), False, None, traceparent
            )
        finally:
            sys.stdout, sys.stderr = saved_streams
            signal.signal(signal.SIGTERM, saved_handler)
            os.environ.pop(obs.TRACE_DIR_ENV, None)
            os.environ.pop(obs.TRACEPARENT_ENV, None)
        return job_dir

    def test_log_lines_correlate_with_the_trace(self, tmp_path):
        wire = TraceContext.root().child_of(0x51).to_traceparent()
        payload = job_payload(write_dataset_csv(tmp_path))
        job_dir = self._run_in_process(tmp_path, payload, wire)

        result = json.loads((job_dir / runner.RESULT_FILE).read_text())
        assert result["status"] == "succeeded"

        events = [
            json.loads(line)
            for line in (job_dir / runner.LOG_FILE).read_text().splitlines()
        ]
        assert [event["event"] for event in events] == [
            "attempt_start",
            "attempt_finished",
        ]
        trace_id = TraceContext.from_traceparent(wire).trace_id
        for event in events:
            assert event["trace_id"] == trace_id
            assert event["job_id"] == "job"
            assert event["pid"] > 0
            assert event["span_id"]  # bound once the run span opened

        spans = [
            json.loads(line)
            for line in (job_dir / runner.TRACE_FILE).read_text().splitlines()
        ]
        run = next(s for s in spans if s["name"] == "service.job.run")
        assert run["trace_id"] == trace_id
        assert run["span_id"] == events[0]["span_id"]


class TestStatusRendering:
    def test_renders_breach_tenants_and_latency(self):
        health = {
            "status": "degraded",
            "running": 1,
            "max_running": 2,
            "queue_depth": 3,
            "jobs": {"queued": 3, "running": 1, "succeeded": 7},
            "tenants": {"acme": 2},
            "tenant_budget": 4,
            "slo": {
                "ok": False,
                "samples": 5,
                "policy": {"p99_latency_seconds": 0.5, "window_samples": 12},
                "breached": [
                    {
                        "name": "p99_latency",
                        "value": 2.0,
                        "threshold": 0.5,
                        "detail": "windowed p99 job latency 2.0s exceeds 0.5s",
                    }
                ],
            },
        }
        jobs = [
            {
                "id": "j1",
                "state": "running",
                "tenant": "acme",
                "algorithm": "incognito",
                "k": 2,
                "attempt": 2,
                "resumed": True,
            },
            {"id": "j0", "state": "succeeded", "tenant": "acme"},
        ]
        metrics = {
            "metrics": {
                "latency.job_total_seconds": {
                    "count": 7,
                    "sum": 3.5,
                    "p50": 0.4,
                    "p99": 2.0,
                    "max": 2.0,
                },
                "frequency.build_seconds": {"count": 9, "sum": 99.0},
            }
        }
        text = render_status(health, metrics, jobs)
        assert "server: DEGRADED" in text
        assert "BREACH  p99_latency: 2 > 0.5" in text
        assert "acme: 2/4 active" in text
        assert "j1  running" in text and "[R]" in text
        assert "j0" not in text.split("active jobs")[1].split("top latency")[0]
        assert "latency.job_total_seconds: n=7" in text
        # non-latency instruments stay out of the latency panel
        assert "frequency.build_seconds" not in text

    def test_live_render_and_info_resolution(self, quiet_manager):
        with LiveServer(quiet_manager) as live:
            info = resolve_server_info(quiet_manager.data_dir)
            assert json.loads(info.read_text())["port"] == live.server.port
            text = render_status(
                live.client.healthz(),
                live.client.metrics(),
                live.client.jobs(),
            )
        assert text.startswith("server: OK")
        assert "none recorded yet" in text

    def test_missing_info_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="is the server running"):
            resolve_server_info(tmp_path)
