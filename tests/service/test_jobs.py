"""Job model: spec validation, JSON round trips, state machine basics."""

from __future__ import annotations

import pytest

from repro.service.jobs import (
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    AdmissionError,
    JobRecord,
    JobSpec,
    JobValidationError,
    job_id_for,
)


def valid_spec(**overrides) -> JobSpec:
    fields = dict(dataset="builtin:adults", k=2)
    fields.update(overrides)
    return JobSpec(**fields)


class TestSpecValidation:
    def test_valid_spec_passes(self):
        valid_spec(
            algorithm="bottomup",
            mode="shards",
            workers=2,
            shard_rows=512,
            deadline_seconds=1.5,
        ).validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dataset": ""},
            {"k": 0},
            {"k": "2"},
            {"algorithm": "datafly"},  # not checkpointable: excluded
            {"algorithm": "nope"},
            {"mode": "gpu"},
            {"workers": 0},
            {"shard_rows": 0},
            {"max_suppression": -1},
            {"deadline_seconds": 0},
            {"deadline_seconds": -2.0},
            {"tenant": ""},
        ],
    )
    def test_malformed_fields_are_rejected(self, overrides):
        with pytest.raises(JobValidationError):
            valid_spec(**overrides).validate()


class TestSpecJson:
    def test_roundtrip(self):
        spec = valid_spec(
            qi=("age", "sex"),
            hierarchies={"age": {"type": "rounding", "digits": 2}},
            mode="threads",
            workers=2,
            tenant="acme",
        )
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_qi_serialises_as_list(self):
        assert valid_spec(qi=("age",)).to_json()["qi"] == ["age"]

    def test_unknown_fields_rejected(self):
        with pytest.raises(JobValidationError, match="retries"):
            JobSpec.from_json({"dataset": "adults", "k": 2, "retries": 9})


class TestRecord:
    def test_roundtrip(self):
        record = JobRecord(
            id=job_id_for(7),
            seq=7,
            spec=valid_spec(),
            state=FAILED,
            attempt=3,
            cause="deadline exceeded (1s)",
            resumed=True,
            recovered=True,
        )
        restored = JobRecord.from_json(record.to_json())
        assert restored == record
        assert restored.terminal and not restored.active

    def test_unknown_state_rejected(self):
        data = JobRecord(id="j1", seq=1, spec=valid_spec()).to_json()
        data["state"] = "exploded"
        with pytest.raises(JobValidationError):
            JobRecord.from_json(data)

    def test_terminal_states(self):
        assert TERMINAL_STATES == {SUCCEEDED, FAILED, CANCELLED}
        assert QUEUED not in TERMINAL_STATES
        assert RUNNING not in TERMINAL_STATES

    def test_summary_carries_triage_fields(self):
        record = JobRecord(id="j1", seq=1, spec=valid_spec(tenant="acme"))
        summary = record.summary()
        assert summary["tenant"] == "acme"
        assert summary["state"] == QUEUED
        assert "spec" not in summary  # list endpoint stays light

    def test_job_ids_sort_with_sequence(self):
        assert job_id_for(1) == "j00000001"
        assert job_id_for(2) > job_id_for(1)
        assert job_id_for(100) > job_id_for(99)


class TestAdmissionError:
    def test_reason_and_detail(self):
        error = AdmissionError("queue_full", "queue depth 16 is at the limit")
        assert error.reason == "queue_full"
        assert "queue depth" in str(error)
        assert isinstance(error, Exception)
