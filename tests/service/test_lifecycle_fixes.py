"""Regression tests for the RA006/RA008 findings fixed in the service layer.

Each test pins the *behavioral* contract behind a static-analysis fix:

* RA006 — ``JobManager._tick`` must reap watchdog victims with the
  manager lock **released** (a ``join`` on a wedged child can stall for
  its full timeout, and every API call contends on that lock).
* RA008 — ``run_job_child`` must stop its heartbeat thread even when
  *setup* (before the work loop) raises, or a dead attempt keeps
  beating and the watchdog never learns.
"""

from __future__ import annotations

import signal
import sys
import threading
import time

import pytest

from repro.service import runner
from repro.service.jobs import FAILED, RUNNING, JobSpec
from repro.service.manager import JobManager, _Running
from tests.service.conftest import job_payload, write_dataset_csv


def make_spec(tmp_path, **overrides) -> JobSpec:
    return JobSpec.from_json(job_payload(write_dataset_csv(tmp_path), **overrides))


class _WedgedProcess:
    """Stands in for a runner stuck in uninterruptible IO: stays alive,
    and records whether the manager lock was held at ``join`` time."""

    def __init__(self, manager: JobManager) -> None:
        self._manager = manager
        self.kills = 0
        self.join_lock_owned: list[bool] = []
        self.exitcode = None

    def is_alive(self) -> bool:
        return True

    def kill(self) -> None:
        self.kills += 1

    def join(self, timeout: float | None = None) -> None:
        self.join_lock_owned.append(self._manager._lock._is_owned())


def test_watchdog_joins_victims_outside_the_lock(tmp_path):
    """The deadline watchdog kills under the lock but joins after
    releasing it; the record still lands terminally failed."""
    manager = JobManager(tmp_path / "svc")  # scheduler deliberately not started
    record = manager.submit(make_spec(tmp_path, deadline_seconds=5.0))
    wedged = _WedgedProcess(manager)
    with manager._lock:
        # Promote the queued job to a fake RUNNING state whose deadline
        # is already long blown.
        manager._queue.remove(record.id)
        record.state = RUNNING
        record.started_at = time.time() - 60.0
        manager._running[record.id] = _Running(
            wedged, manager.job_dir(record.id), time.monotonic()
        )
    manager._tick()
    assert wedged.kills == 1
    assert wedged.join_lock_owned == [False], (
        "victim was joined while the manager lock was still held (RA006)"
    )
    refreshed = manager.get(record.id)
    assert refreshed is not None
    assert refreshed.state == FAILED
    assert "deadline exceeded" in (refreshed.cause or "")


def _heartbeat_threads() -> list[threading.Thread]:
    return [
        thread
        for thread in threading.enumerate()
        if thread.name == "repro-heartbeat"
    ]


def test_setup_failure_stops_heartbeat_thread(tmp_path):
    """A spec that fails to parse raises *after* the heartbeat thread
    starts; the outer try/finally must still stop it."""
    assert not _heartbeat_threads()
    saved_streams = sys.stdout, sys.stderr
    saved_handler = signal.getsignal(signal.SIGTERM)
    try:
        # run_job_child redirects stdout/stderr into the job log and
        # installs a SIGTERM drain handler; restore both afterwards
        # since we run it in-process here.
        with pytest.raises(Exception):
            runner.run_job_child({"not": "a job spec"}, str(tmp_path), False, None)
    finally:
        sys.stdout, sys.stderr = saved_streams
        signal.signal(signal.SIGTERM, saved_handler)
    deadline = time.monotonic() + 5.0
    while _heartbeat_threads():
        assert time.monotonic() < deadline, (
            "heartbeat thread outlived the failed attempt (RA008)"
        )
        time.sleep(0.01)
