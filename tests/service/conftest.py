"""Shared fixtures for the service suite.

The service moves job specs through JSON, subprocesses, and CSV spills,
so the shared dataset here is deliberately *string-typed*: a CSV round
trip preserves strings exactly, which keeps the bit-identity contract
honest end to end (``RoundingHierarchy`` and ``SuppressionHierarchy``
both operate on strings natively).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.core import Project
from repro.analysis.rules.lock_order import analyze_lock_order
from repro.analysis.runtime import LockOrderRecorder, combined_cycle
from repro.relational.csvio import write_csv
from repro.relational.table import Table
from repro.service.connectors import (
    register_memory_dataset,
    unregister_memory_dataset,
)

#: Hierarchy specs (``repro.hierarchy.spec`` format) for the shared table.
HIERARCHY_SPECS = {
    "age": {"type": "rounding", "digits": 2},
    "sex": {"type": "suppression"},
}

#: QI order used throughout the suite.
QI = ["age", "sex"]


def small_table() -> Table:
    """Twelve rows, two QI columns, all strings (CSV-stable)."""
    return Table.from_columns(
        {
            "age": [
                "21", "22", "23", "24", "31", "32",
                "33", "34", "41", "42", "43", "44",
            ],
            "sex": ["M", "F"] * 6,
            "disease": [
                "flu", "flu", "cold", "cold", "flu", "ulcer",
                "flu", "cold", "ulcer", "flu", "cold", "flu",
            ],
        }
    )


def write_dataset_csv(directory: Path) -> str:
    """Write the shared table as CSV; return its ``csv:`` reference."""
    path = directory / "dataset.csv"
    write_csv(small_table(), path)
    return f"csv:{path}"


def job_payload(dataset: str, **overrides) -> dict:
    """A valid job document for the shared dataset."""
    payload = {
        "dataset": dataset,
        "k": 2,
        "algorithm": "basic",
        "qi": QI,
        "hierarchies": HIERARCHY_SPECS,
    }
    payload.update(overrides)
    return payload


@pytest.fixture
def memory_dataset():
    """Register the shared table under ``memory:svc-fixture``."""
    register_memory_dataset("svc-fixture", small_table())
    yield "memory:svc-fixture"
    unregister_memory_dataset("svc-fixture")


@pytest.fixture(scope="session")
def static_lock_analysis():
    """RA006's lock graph for ``src/``, computed once per session."""
    src = Path(__file__).resolve().parents[2] / "src"
    return analyze_lock_order(Project.load([src]))


@pytest.fixture(autouse=True)
def lock_order_recorder(static_lock_analysis):
    """Static ↔ runtime lock-order cross-check (DESIGN.md §13).

    Every service test runs with the ``threading.Lock``/``RLock``
    factories wrapped, so each in-process ``JobManager``'s actual
    acquisition orders are observed; afterwards the observed pairs are
    merged with RA006's static edges and the combined graph must be
    acyclic.  An order the static pass could not prove (dynamic
    dispatch, a callback) still lands here — and a cycle is a deadlock
    witness regardless of which half saw each edge.
    """
    recorder = LockOrderRecorder()
    recorder.install()
    try:
        yield recorder
    finally:
        recorder.uninstall()
    cycle = combined_cycle(recorder, static_lock_analysis)
    assert cycle is None, (
        "lock-order cycle in combined static+observed graph: "
        + " -> ".join(cycle)
    )
