"""Write-ahead job store: replay, torn tails, corruption, compaction."""

from __future__ import annotations

import json

from repro.service.jobs import JobRecord, JobSpec
from repro.service.wal import JobStore


def record_json(seq: int, state: str = "queued") -> dict:
    return JobRecord(
        id=f"j{seq:08d}",
        seq=seq,
        spec=JobSpec(dataset="builtin:adults", k=2),
        state=state,
    ).to_json()


class TestAppendReplay:
    def test_roundtrip_and_last_write_wins(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.append(record_json(1, "queued"))
            store.append(record_json(2, "queued"))
            store.append(record_json(1, "succeeded"))
        replay = JobStore(tmp_path).load()
        assert replay.max_seq == 2
        assert replay.records["j00000001"]["state"] == "succeeded"
        assert replay.records["j00000002"]["state"] == "queued"
        assert replay.wal_lines == 3
        assert replay.corrupt_lines == 0 and not replay.torn_tail

    def test_empty_directory_loads_empty(self, tmp_path):
        replay = JobStore(tmp_path / "fresh").load()
        assert replay.records == {} and replay.max_seq == 0

    def test_fsync_leaves_no_buffered_tail(self, tmp_path):
        # Every append is immediately visible to an independent reader —
        # the write-ahead property observed from outside the process.
        store = JobStore(tmp_path)
        store.append(record_json(1))
        assert JobStore(tmp_path).load().records  # no close, no flush call
        store.close()


class TestDamageTolerance:
    def test_torn_tail_is_dropped_silently(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.append(record_json(1))
            store.append(record_json(2))
        with open(tmp_path / "jobs.wal", "a", encoding="utf-8") as handle:
            handle.write('{"format":1,"job":{"id":"j000000')  # no newline
        replay = JobStore(tmp_path).load()
        assert replay.torn_tail
        assert replay.corrupt_lines == 0
        assert set(replay.records) == {"j00000001", "j00000002"}

    def test_corrupt_mid_file_line_is_counted(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.append(record_json(1))
        with open(tmp_path / "jobs.wal", "a", encoding="utf-8") as handle:
            handle.write("%%% not json %%%\n")
        with JobStore(tmp_path) as store:
            store.append(record_json(2))
        replay = JobStore(tmp_path).load()
        assert replay.corrupt_lines == 1
        assert not replay.torn_tail
        assert set(replay.records) == {"j00000001", "j00000002"}

    def test_non_entry_json_line_is_corrupt(self, tmp_path):
        with open_wal(tmp_path) as handle:
            handle.write('{"format":1}\n[1,2,3]\n')
        replay = JobStore(tmp_path).load()
        assert replay.corrupt_lines == 2

    def test_corrupt_snapshot_treated_as_absent(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.append(record_json(1))
            store.compact(store.load().records, 1)
            store.append(record_json(2))
        (tmp_path / "jobs.snapshot.json").write_text("{torn")
        replay = JobStore(tmp_path).load()
        # Snapshot gone, but the WAL still replays what came after it.
        assert set(replay.records) == {"j00000002"}


def open_wal(directory):
    directory.mkdir(parents=True, exist_ok=True)
    return open(directory / "jobs.wal", "a", encoding="utf-8")


class TestCompaction:
    def test_compact_folds_wal_into_snapshot(self, tmp_path):
        with JobStore(tmp_path) as store:
            for seq in range(1, 6):
                store.append(record_json(seq))
            replay = store.load()
            store.compact(replay.records, replay.max_seq)
        store = JobStore(tmp_path)
        assert store.wal_line_count() == 0
        replay = store.load()
        assert len(replay.records) == 5 and replay.max_seq == 5
        snapshot = json.loads((tmp_path / "jobs.snapshot.json").read_text())
        assert snapshot["max_seq"] == 5

    def test_append_after_compact_works(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.append(record_json(1))
            replay = store.load()
            store.compact(replay.records, replay.max_seq)
            store.append(record_json(2))
        replay = JobStore(tmp_path).load()
        assert set(replay.records) == {"j00000001", "j00000002"}

    def test_crash_between_snapshot_and_truncate_is_harmless(self, tmp_path):
        """Snapshot lands first; replaying the stale WAL over it is a
        no-op because records are full and last-write-wins."""
        with JobStore(tmp_path) as store:
            store.append(record_json(1, "queued"))
            store.append(record_json(1, "succeeded"))
            replay = store.load()
            stale_wal = (tmp_path / "jobs.wal").read_bytes()
            store.compact(replay.records, replay.max_seq)
        # Simulate dying after the snapshot write but before truncation.
        (tmp_path / "jobs.wal").write_bytes(stale_wal)
        replay = JobStore(tmp_path).load()
        assert replay.records["j00000001"]["state"] == "succeeded"
        assert len(replay.records) == 1
