"""Dataset connectors: reference parsing and problem resolution."""

from __future__ import annotations

import sqlite3

import pytest

from repro.service.connectors import (
    ConnectorError,
    describe_connectors,
    load_problem,
    load_table,
    parse_ref,
    register_memory_dataset,
    spill_memory_dataset,
    unregister_memory_dataset,
)
from repro.service.jobs import JobSpec
from tests.service.conftest import (
    HIERARCHY_SPECS,
    QI,
    small_table,
    write_dataset_csv,
)


class TestParseRef:
    def test_full_reference_with_params(self):
        assert parse_ref("builtin:adults?rows=2000&qi=4") == (
            "builtin",
            "adults",
            {"rows": "2000", "qi": "4"},
        )

    def test_bare_name_is_builtin_shorthand(self):
        assert parse_ref("adults") == ("builtin", "adults", {})

    def test_sqlite_fragment_stays_in_target(self):
        kind, target, params = parse_ref("sqlite:/tmp/db.sqlite#people")
        assert (kind, target, params) == ("sqlite", "/tmp/db.sqlite#people", {})

    def test_case_and_whitespace_normalised(self):
        assert parse_ref("  CSV:/data/x.csv ")[0] == "csv"

    @pytest.mark.parametrize(
        "bad", ["", "   ", "ftp:/x", "csv:", "memory:", None, 7]
    )
    def test_rejects_malformed_references(self, bad):
        with pytest.raises(ConnectorError):
            parse_ref(bad)


class TestMemoryConnector:
    def test_register_load_unregister(self):
        register_memory_dataset("conn-t1", small_table())
        try:
            assert "conn-t1" in describe_connectors()["memory_datasets"]
            table = load_table("memory:conn-t1")
            assert table.num_rows == small_table().num_rows
        finally:
            unregister_memory_dataset("conn-t1")
        with pytest.raises(ConnectorError, match="no memory dataset"):
            load_table("memory:conn-t1")

    def test_empty_name_rejected(self):
        with pytest.raises(ConnectorError):
            register_memory_dataset("", small_table())

    def test_spill_rewrites_to_csv(self, tmp_path):
        register_memory_dataset("conn-spill", small_table())
        try:
            spec = JobSpec(
                dataset="memory:conn-spill",
                k=2,
                qi=tuple(QI),
                hierarchies=HIERARCHY_SPECS,
            )
            spilled = spill_memory_dataset(spec, tmp_path / "job")
        finally:
            unregister_memory_dataset("conn-spill")
        assert spilled.dataset == f"csv:{tmp_path / 'job' / 'dataset.csv'}"
        # The spilled problem is the registered table, byte for byte —
        # and resolvable after the registry entry (or process) is gone.
        problem = load_problem(spilled)
        assert problem.table.num_rows == small_table().num_rows
        assert list(problem.quasi_identifier) == QI

    def test_spill_passes_non_memory_through(self, tmp_path):
        spec = JobSpec(dataset="builtin:adults", k=2)
        assert spill_memory_dataset(spec, tmp_path) is spec

    def test_spill_unregistered_is_an_error(self, tmp_path):
        spec = JobSpec(dataset="memory:never-registered", k=2)
        with pytest.raises(ConnectorError):
            spill_memory_dataset(spec, tmp_path)


class TestCsvConnector:
    def test_load_problem_with_hierarchy_spec(self, tmp_path):
        ref = write_dataset_csv(tmp_path)
        spec = JobSpec(
            dataset=ref, k=2, qi=tuple(QI), hierarchies=HIERARCHY_SPECS
        )
        problem = load_problem(spec)
        assert list(problem.quasi_identifier) == QI
        assert problem.table.num_rows == 12

    def test_qi_defaults_to_hierarchy_keys(self, tmp_path):
        ref = write_dataset_csv(tmp_path)
        spec = JobSpec(dataset=ref, k=2, hierarchies=HIERARCHY_SPECS)
        assert list(load_problem(spec).quasi_identifier) == list(
            HIERARCHY_SPECS
        )

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(ConnectorError, match="does not exist"):
            load_table(f"csv:{tmp_path / 'absent.csv'}")

    def test_missing_hierarchies_is_an_error(self, tmp_path):
        ref = write_dataset_csv(tmp_path)
        with pytest.raises(ConnectorError, match="hierarchies"):
            load_problem(JobSpec(dataset=ref, k=2))

    def test_unknown_qi_column_is_an_error(self, tmp_path):
        ref = write_dataset_csv(tmp_path)
        spec = JobSpec(
            dataset=ref,
            k=2,
            qi=("age", "nope"),
            hierarchies=HIERARCHY_SPECS,
        )
        with pytest.raises(ConnectorError, match="nope"):
            load_problem(spec)


class TestSqliteConnector:
    @pytest.fixture
    def database(self, tmp_path):
        path = tmp_path / "data.sqlite"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE people (age TEXT, sex TEXT)")
        connection.executemany(
            "INSERT INTO people VALUES (?, ?)",
            [(age, sex) for age, sex in zip(
                ["21", "22", "31", "32"], ["M", "F", "M", "F"]
            )],
        )
        connection.commit()
        connection.close()
        return path

    def test_load_table(self, database):
        table = load_table(f"sqlite:{database}#people")
        assert table.num_rows == 4
        assert list(table.schema.names) == ["age", "sex"]

    def test_load_problem(self, database):
        spec = JobSpec(
            dataset=f"sqlite:{database}#people",
            k=2,
            hierarchies=HIERARCHY_SPECS,
        )
        assert load_problem(spec).table.num_rows == 4

    def test_missing_table_name_is_an_error(self, database):
        with pytest.raises(ConnectorError, match="must name a table"):
            load_table(f"sqlite:{database}")

    def test_unknown_table_is_an_error(self, database):
        with pytest.raises(ConnectorError, match="not found"):
            load_table(f"sqlite:{database}#ghosts")

    def test_missing_database_is_an_error(self, tmp_path):
        with pytest.raises(ConnectorError, match="does not exist"):
            load_table(f"sqlite:{tmp_path / 'absent.sqlite'}#people")


class TestBuiltinParams:
    def test_unknown_builtin_is_an_error(self):
        with pytest.raises(ConnectorError, match="unknown builtin"):
            load_problem(JobSpec(dataset="builtin:census", k=2))

    @pytest.mark.parametrize("ref", [
        "builtin:adults?rows=abc",
        "builtin:adults?rows=0",
        "builtin:adults?qi=-1",
    ])
    def test_bad_parameters_are_errors(self, ref):
        with pytest.raises(ConnectorError):
            load_problem(JobSpec(dataset=ref, k=2))

    def test_load_table_refuses_builtin(self):
        with pytest.raises(ConnectorError):
            load_table("builtin:adults")
