"""JobManager: admission, execution, retry/resume, watchdogs, recovery.

Tests that need the scheduler run real spawned job subprocesses against
the shared CSV-stable dataset and compare results against the inline
differential oracle (:func:`repro.service.runner.run_job_inline`).
Admission-control tests deliberately *don't* start the scheduler, which
makes queue/budget arithmetic exact instead of racy.

Fault seeds are chosen so the deterministic draw table is known: with
``FaultPlan(crash_rate=0.5, seed=4)`` (and likewise ``timeout_rate``),
job seq 1 draws a fault on attempt 0 and runs clean on attempt 1.
"""

from __future__ import annotations

import pytest

from repro.resilience.faults import FaultPlan
from repro.service import runner
from repro.service.jobs import AdmissionError, JobSpec, JobValidationError
from repro.service.manager import JobManager
from tests.service.conftest import job_payload, write_dataset_csv

#: Generous ceiling for one spawned job (cold numpy import dominates).
JOB_TIMEOUT = 120.0

#: Fast supervision policy for tests.
FAST = dict(retry_backoff_base=0.01, retry_backoff_cap=0.05)


def make_spec(tmp_path, **overrides) -> JobSpec:
    return JobSpec.from_json(job_payload(write_dataset_csv(tmp_path), **overrides))


def finished(manager: JobManager, record_id: str):
    assert manager.wait_idle(JOB_TIMEOUT), "manager never went idle"
    return manager.get(record_id)


def assert_bit_identical(manager: JobManager, record) -> None:
    result = manager.result(record.id)
    assert result is not None
    assert runner.comparable(result) == runner.comparable(
        runner.run_job_inline(record.spec)
    )


class TestExecution:
    def test_submit_runs_and_matches_inline_oracle(self, tmp_path):
        manager = JobManager(tmp_path / "svc", **FAST)
        manager.start()
        try:
            record = manager.submit(make_spec(tmp_path))
            record = finished(manager, record.id)
            assert record.state == "succeeded"
            assert record.attempt == 1 and not record.resumed
            assert_bit_identical(manager, record)
            # Terminal jobs keep their result but no resume machinery.
            job_dir = manager.job_dir(record.id)
            assert (job_dir / runner.RESULT_FILE).exists()
            assert not (job_dir / runner.CHECKPOINT_FILE).exists()
            counters = manager.counters.as_dict()
            assert counters["service.jobs_submitted"] == 1
            assert counters["service.jobs_succeeded"] == 1
            metrics = manager.metrics.as_dict()
            assert "latency.job_total_seconds" in metrics
        finally:
            manager.drain()

    def test_crash_injection_resumes_then_succeeds(self, tmp_path):
        plan = FaultPlan(crash_rate=0.5, seed=4)
        assert plan.draw(1, 0) == "crash" and plan.draw(1, 1) is None
        manager = JobManager(tmp_path / "svc", fault_plan=plan, **FAST)
        manager.start()
        try:
            record = manager.submit(make_spec(tmp_path))
            record = finished(manager, record.id)
            assert record.state == "succeeded"
            assert record.resumed and record.attempt == 2
            assert_bit_identical(manager, record)
            counters = manager.counters.as_dict()
            assert counters["service.injected.crash"] == 1
            assert counters["service.retries"] == 1
            assert counters["service.jobs_resumed_succeeded"] == 1
        finally:
            manager.drain()

    def test_hang_injection_is_killed_by_watchdog_then_resumes(self, tmp_path):
        plan = FaultPlan(timeout_rate=0.5, seed=4)
        assert plan.draw(1, 0) == "timeout" and plan.draw(1, 1) is None
        manager = JobManager(
            tmp_path / "svc",
            fault_plan=plan,
            heartbeat_timeout=1.0,
            **FAST,
        )
        manager.start()
        try:
            record = manager.submit(make_spec(tmp_path))
            record = finished(manager, record.id)
            assert record.state == "succeeded"
            assert record.resumed and record.attempt == 2
            assert_bit_identical(manager, record)
            counters = manager.counters.as_dict()
            assert counters["service.injected.hang"] == 1
            assert counters["service.watchdog_kills"] == 1
        finally:
            manager.drain()

    def test_constant_crashes_fail_with_recorded_cause(self, tmp_path):
        plan = FaultPlan(crash_rate=1.0, seed=1)
        manager = JobManager(
            tmp_path / "svc", fault_plan=plan, max_attempts=2, **FAST
        )
        manager.start()
        try:
            record = manager.submit(make_spec(tmp_path))
            record = finished(manager, record.id)
            assert record.state == "failed"
            assert "crashed" in record.cause and "2 attempt" in record.cause
            assert manager.counters.as_dict()["service.jobs_failed"] == 1
        finally:
            manager.drain()

    def test_deadline_exceeded_is_terminal(self, tmp_path):
        manager = JobManager(tmp_path / "svc", **FAST)
        manager.start()
        try:
            record = manager.submit(
                make_spec(tmp_path, deadline_seconds=0.2)
            )
            record = finished(manager, record.id)
            assert record.state == "failed"
            assert "deadline exceeded" in record.cause
            assert manager.counters.as_dict()["service.deadline_kills"] == 1
        finally:
            manager.drain()

    def test_deterministic_algorithm_error_does_not_retry(self, tmp_path):
        # A range hierarchy over string values raises inside the child:
        # deterministic, so retrying would fail identically.
        manager = JobManager(tmp_path / "svc", **FAST)
        manager.start()
        try:
            record = manager.submit(
                make_spec(
                    tmp_path,
                    hierarchies={
                        "age": {"type": "range", "widths": [5]},
                        "sex": {"type": "suppression"},
                    },
                )
            )
            record = finished(manager, record.id)
            assert record.state == "failed"
            assert record.attempt == 1
            assert record.cause  # the child's exception, recorded
            assert manager.counters.as_dict().get("service.retries", 0) == 0
        finally:
            manager.drain()


class TestAdmissionControl:
    """No scheduler: the queue never drains, so arithmetic is exact."""

    def test_queue_bound_rejects_with_reason(self, tmp_path):
        manager = JobManager(tmp_path / "svc", max_queue=2, tenant_budget=10)
        spec = make_spec(tmp_path)
        manager.submit(spec)
        manager.submit(spec)
        with pytest.raises(AdmissionError) as caught:
            manager.submit(spec)
        assert caught.value.reason == "queue_full"
        counters = manager.counters.as_dict()
        assert counters["service.rejected.queue_full"] == 1
        assert counters["service.jobs_submitted"] == 2
        manager.store.close()

    def test_tenant_budget_is_per_tenant(self, tmp_path):
        manager = JobManager(tmp_path / "svc", max_queue=10, tenant_budget=1)
        manager.submit(make_spec(tmp_path, tenant="alpha"))
        with pytest.raises(AdmissionError) as caught:
            manager.submit(make_spec(tmp_path, tenant="alpha"))
        assert caught.value.reason == "tenant_budget"
        # Another tenant is unaffected by alpha's exhausted budget.
        manager.submit(make_spec(tmp_path, tenant="beta"))
        assert manager.counters.as_dict()["service.rejected.tenant_budget"] == 1
        manager.store.close()

    def test_draining_rejects_everything(self, tmp_path):
        manager = JobManager(tmp_path / "svc")
        manager.drain()
        with pytest.raises(AdmissionError) as caught:
            manager.submit(make_spec(tmp_path))
        assert caught.value.reason == "draining"

    def test_malformed_spec_rejected_before_persistence(self, tmp_path):
        manager = JobManager(tmp_path / "svc")
        with pytest.raises(JobValidationError):
            manager.submit(JobSpec(dataset="builtin:adults", k=0))
        assert manager.store.load().records == {}
        manager.store.close()

    def test_cancel_queued_job(self, tmp_path):
        manager = JobManager(tmp_path / "svc")
        record = manager.submit(make_spec(tmp_path))
        cancelled = manager.cancel(record.id)
        assert cancelled.state == "cancelled" and cancelled.terminal
        assert manager.idle()
        assert manager.counters.as_dict()["service.jobs_cancelled"] == 1
        # Cancelling a terminal job is a no-op returning the record.
        assert manager.cancel(record.id).state == "cancelled"
        manager.store.close()


class TestRecovery:
    def test_interrupted_jobs_recover_and_complete(self, tmp_path):
        # Session one persists a job but dies before running it (no
        # scheduler, no drain — the WAL is all that survives).
        first = JobManager(tmp_path / "svc")
        submitted = first.submit(make_spec(tmp_path))
        first.store.close()

        second = JobManager(tmp_path / "svc", **FAST)
        second.start()
        try:
            record = finished(second, submitted.id)
            assert record.state == "succeeded"
            assert record.recovered
            assert_bit_identical(second, record)
            assert second.counters.as_dict()["service.jobs_recovered"] == 1
            assert second.startup_sweep is not None
        finally:
            second.drain()

    def test_recovery_skips_terminal_jobs(self, tmp_path):
        first = JobManager(tmp_path / "svc")
        record = first.submit(make_spec(tmp_path))
        first.cancel(record.id)
        first.store.close()

        second = JobManager(tmp_path / "svc")
        second.recover()
        assert second.get(record.id).state == "cancelled"
        assert second.idle()
        assert "service.jobs_recovered" not in second.counters.as_dict()
        second.store.close()

    def test_corrupt_wal_lines_surface_in_counters(self, tmp_path):
        first = JobManager(tmp_path / "svc")
        record = first.submit(make_spec(tmp_path))
        first.cancel(record.id)
        first.store.close()
        wal = tmp_path / "svc" / "jobs.wal"
        lines = wal.read_text().splitlines()
        lines.insert(1, "%%% damaged %%%")
        wal.write_text("\n".join(lines) + "\n")

        second = JobManager(tmp_path / "svc")
        second.recover()
        assert second.counters.as_dict()["service.wal_corrupt_lines"] == 1
        assert second.get(record.id).state == "cancelled"
        second.store.close()

    def test_drain_requeues_unfinished_work_for_next_start(self, tmp_path):
        manager = JobManager(tmp_path / "svc")
        record = manager.submit(make_spec(tmp_path))
        manager.drain()  # never started: job still queued, now persisted
        replay = manager.store.load()
        assert replay.records[record.id]["state"] == "queued"
        # And the WAL was compacted into the snapshot on the way out.
        assert manager.store.wal_line_count() == 0
