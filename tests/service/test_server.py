"""HTTP layer: routing, status codes, and one live end-to-end job.

The server runs in-process on a background event-loop thread; the
manager underneath usually has *no* scheduler so admission arithmetic
stays exact (see test_manager.py).  One end-to-end test starts the real
scheduler and drives a job to success through the client.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.service import runner
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.manager import JobManager
from repro.service.server import SERVER_INFO_FILE, ServiceServer
from tests.service.conftest import job_payload, write_dataset_csv


class LiveServer:
    """A ServiceServer running on its own event-loop thread."""

    def __init__(self, manager: JobManager) -> None:
        self.server = ServiceServer(manager)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    def __enter__(self) -> "LiveServer":
        self._thread.start()
        assert self._started.wait(10), "server never bound"
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    @property
    def client(self) -> ServiceClient:
        return ServiceClient(self.server.host, self.server.port, timeout=10)


@pytest.fixture
def quiet_manager(tmp_path):
    """A manager with no scheduler thread (nothing ever launches)."""
    manager = JobManager(
        tmp_path / "svc", max_queue=2, tenant_budget=1, max_running=1
    )
    yield manager
    manager.store.close()


class TestRoutes:
    def test_healthz_and_metrics(self, quiet_manager):
        with LiveServer(quiet_manager) as live:
            health = live.client.healthz()
            assert health["status"] == "ok"
            assert health["max_running"] == 1
            metrics = live.client.metrics()
            assert metrics["counters"]["service.requests"] >= 1

    def test_server_info_file_records_bound_port(self, quiet_manager):
        with LiveServer(quiet_manager) as live:
            assert (quiet_manager.data_dir / SERVER_INFO_FILE).exists()
            client = ServiceClient.from_server_info(quiet_manager.data_dir)
            assert client.port == live.server.port
            assert client.healthz()["status"] == "ok"

    def test_submit_inspect_cancel_lifecycle(self, quiet_manager, tmp_path):
        payload = job_payload(write_dataset_csv(tmp_path))
        with LiveServer(quiet_manager) as live:
            status, accepted = live.client.submit(payload)
            assert status == 202 and accepted["state"] == "queued"
            job_id = accepted["id"]

            assert [job["id"] for job in live.client.jobs()] == [job_id]
            status, record = live.client.job(job_id)
            assert status == 200 and record["spec"]["k"] == 2

            status, body = live.client.result(job_id)
            assert status == 409  # not terminal yet

            status, cancelled = live.client.cancel(job_id)
            assert status == 200 and cancelled["state"] == "cancelled"
            status, _ = live.client.cancel(job_id)
            assert status == 409  # already terminal
            status, body = live.client.result(job_id)
            assert status == 200 and body["status"] == "cancelled"

    @pytest.mark.parametrize(
        "method, path, expect",
        [
            ("GET", "/jobs/j99999999", 404),
            ("GET", "/jobs/j99999999/result", 404),
            ("GET", "/nope", 404),
            ("PUT", "/jobs", 405),
            ("PATCH", "/healthz", 404),
        ],
    )
    def test_unknown_routes_and_methods(self, quiet_manager, method, path, expect):
        with LiveServer(quiet_manager) as live:
            status, body = live.client.request(method, path)
            assert status == expect and "error" in body


class TestSubmissionErrors:
    def test_malformed_documents_get_400(self, quiet_manager):
        with LiveServer(quiet_manager) as live:
            for document in (
                {"dataset": "builtin:adults", "k": 0},
                {"dataset": "builtin:adults", "k": 2, "bogus": True},
                {"k": 2},
            ):
                status, body = live.client.submit(document)
                assert status == 400 and "error" in body

    def test_non_json_body_gets_400(self, quiet_manager):
        with LiveServer(quiet_manager) as live:
            import http.client

            connection = http.client.HTTPConnection(
                live.server.host, live.server.port, timeout=10
            )
            connection.request("POST", "/jobs", body=b"}{ not json")
            response = connection.getresponse()
            assert response.status == 400
            connection.close()

    def test_overload_maps_to_429_with_reason(self, quiet_manager, tmp_path):
        dataset = write_dataset_csv(tmp_path)
        with LiveServer(quiet_manager) as live:
            status, _ = live.client.submit(
                job_payload(dataset, tenant="alpha")
            )
            assert status == 202
            # Tenant budget (1) exhausted while the job sits queued.
            status, body = live.client.submit(
                job_payload(dataset, tenant="alpha")
            )
            assert status == 429 and body["reason"] == "tenant_budget"
            # Queue bound (2) next, regardless of tenant.
            status, _ = live.client.submit(job_payload(dataset, tenant="beta"))
            assert status == 202
            status, body = live.client.submit(
                job_payload(dataset, tenant="gamma")
            )
            assert status == 429 and body["reason"] == "queue_full"
            counters = live.client.metrics()["counters"]
            assert counters["service.rejected.tenant_budget"] == 1
            assert counters["service.rejected.queue_full"] == 1

    def test_draining_maps_to_503(self, quiet_manager, tmp_path):
        quiet_manager.drain()
        with LiveServer(quiet_manager) as live:
            status, body = live.client.submit(
                job_payload(write_dataset_csv(tmp_path))
            )
            assert status == 503 and body["reason"] == "draining"


class TestClientTransport:
    def test_unreachable_port_raises_service_unavailable(self):
        # Bind-then-close guarantees a port nothing is listening on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient("127.0.0.1", port, timeout=2)
        with pytest.raises(ServiceUnavailable):
            client.healthz()
        with pytest.raises(ServiceUnavailable):
            client.wait_reachable(0.5, poll=0.1)


class TestEndToEnd:
    def test_job_round_trip_matches_inline_oracle(self, tmp_path):
        manager = JobManager(
            tmp_path / "svc", retry_backoff_base=0.01, retry_backoff_cap=0.05
        )
        manager.start()
        try:
            with LiveServer(manager) as live:
                payload = job_payload(write_dataset_csv(tmp_path))
                status, accepted = live.client.submit(payload)
                assert status == 202
                record = live.client.wait_terminal(accepted["id"], timeout=120)
                assert record["state"] == "succeeded"
                status, result = live.client.result(accepted["id"])
                assert status == 200
                from repro.service.jobs import JobSpec

                oracle = runner.run_job_inline(
                    JobSpec.from_json(record["spec"])
                )
                assert runner.comparable(result) == runner.comparable(oracle)
        finally:
            manager.drain()
