"""Tests for repro.relational.schema."""

import pytest

from repro.relational.schema import ColumnSpec, ColumnType, Schema, SchemaError


class TestColumnType:
    def test_parse_int(self):
        assert ColumnType.INT.parse("42") == 42

    def test_parse_float(self):
        assert ColumnType.FLOAT.parse("2.5") == 2.5

    def test_parse_string_identity(self):
        assert ColumnType.STRING.parse("abc") == "abc"

    def test_parse_int_rejects_garbage(self):
        with pytest.raises(ValueError):
            ColumnType.INT.parse("abc")


class TestColumnSpec:
    def test_default_type_is_string(self):
        assert ColumnSpec("name").type is ColumnType.STRING

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ColumnSpec("")

    def test_specs_are_value_objects(self):
        assert ColumnSpec("a") == ColumnSpec("a")
        assert ColumnSpec("a") != ColumnSpec("b")


class TestSchema:
    def test_of_builds_from_names(self):
        schema = Schema.of("a", "b")
        assert schema.names == ("a", "b")

    def test_of_mixes_names_and_specs(self):
        schema = Schema.of("a", ColumnSpec("n", ColumnType.INT))
        assert schema.spec("n").type is ColumnType.INT

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_len_and_iter(self):
        schema = Schema.of("a", "b", "c")
        assert len(schema) == 3
        assert [spec.name for spec in schema] == ["a", "b", "c"]

    def test_contains(self):
        schema = Schema.of("a", "b")
        assert "a" in schema
        assert "z" not in schema

    def test_position(self):
        schema = Schema.of("a", "b", "c")
        assert schema.position("b") == 1

    def test_position_missing_raises_with_context(self):
        schema = Schema.of("a")
        with pytest.raises(SchemaError, match="no column 'zz'"):
            schema.position("zz")

    def test_project_preserves_order_given(self):
        schema = Schema.of("a", "b", "c")
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_project_missing_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").project(["b"])

    def test_rename_partial(self):
        schema = Schema.of("a", "b").rename({"a": "x"})
        assert schema.names == ("x", "b")

    def test_rename_keeps_types(self):
        schema = Schema.of(ColumnSpec("a", ColumnType.INT)).rename({"a": "x"})
        assert schema.spec("x").type is ColumnType.INT

    def test_concat(self):
        schema = Schema.of("a").concat(Schema.of("b"))
        assert schema.names == ("a", "b")

    def test_concat_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a").concat(Schema.of("a"))
