"""Tests for general grouped aggregation."""

import pytest

from repro.relational.aggregate import aggregate
from repro.relational.table import Table


def sales() -> Table:
    return Table.from_rows(
        ["region", "product", "amount"],
        [
            ("east", "a", 10),
            ("east", "a", 20),
            ("east", "b", 5),
            ("west", "a", 7),
            ("west", "b", 3),
            ("west", "b", 9),
        ],
    )


class TestAggregate:
    def test_sum(self):
        result = aggregate(sales(), ["region"], {"amount": "sum"})
        assert dict(result.iter_rows()) == {"east": 35, "west": 19}

    def test_count(self):
        result = aggregate(sales(), ["region"], {"amount": "count"})
        assert dict(result.iter_rows()) == {"east": 3, "west": 3}

    def test_min_max(self):
        result = aggregate(
            sales(), ["region"], {"amount": "min"}
        )
        assert dict(result.iter_rows()) == {"east": 5, "west": 3}
        result = aggregate(sales(), ["region"], {"amount": "max"})
        assert dict(result.iter_rows()) == {"east": 20, "west": 9}

    def test_mean(self):
        result = aggregate(sales(), ["product"], {"amount": "mean"})
        values = dict(result.iter_rows())
        assert values["a"] == pytest.approx(37 / 3)
        assert values["b"] == pytest.approx(17 / 3)

    def test_multi_key_grouping(self):
        result = aggregate(sales(), ["region", "product"], {"amount": "sum"})
        assert result.num_rows == 4
        as_map = {(r, p): s for r, p, s in result.iter_rows()}
        assert as_map[("east", "a")] == 30
        assert as_map[("west", "b")] == 12

    def test_output_column_names(self):
        result = aggregate(sales(), ["region"], {"amount": "sum"})
        assert result.schema.names == ("region", "sum_amount")

    def test_multiple_aggregates(self):
        result = aggregate(
            sales(), ["region"], {"amount": "sum", "product": "count"}
        )
        assert set(result.schema.names) == {"region", "sum_amount", "count_product"}

    def test_empty_table(self):
        empty = Table.from_rows(["a", "b"], [])
        result = aggregate(empty, ["a"], {"b": "sum"})
        assert result.num_rows == 0
        assert result.schema.names == ("a", "sum_b")

    def test_count_on_non_numeric(self):
        result = aggregate(sales(), ["region"], {"product": "count"})
        assert dict(result.iter_rows()) == {"east": 3, "west": 3}

    def test_numeric_aggregate_on_strings_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            aggregate(sales(), ["region"], {"product": "sum"})

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            aggregate(sales(), ["region"], {"amount": "median"})

    def test_missing_column_rejected(self):
        with pytest.raises(KeyError):
            aggregate(sales(), ["region"], {"nope": "sum"})

    def test_empty_group_by_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            aggregate(sales(), [], {"amount": "sum"})

    def test_counts_match_frequency_set_semantics(self):
        """COUNT here must agree with the frequency-set group-by engine."""
        from repro.relational.groupby import group_by_count

        table = sales()
        counts = aggregate(table, ["region", "product"], {"amount": "count"})
        frequency = group_by_count(table, ["region", "product"]).as_dict()
        for region, product, count in counts.iter_rows():
            assert frequency[(region, product)] == count
