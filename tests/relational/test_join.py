"""Tests for repro.relational.join."""

import pytest

from repro.relational.join import hash_join, semi_join
from repro.relational.table import Table


def left() -> Table:
    return Table.from_rows(
        ["k", "a"], [(1, "x"), (2, "y"), (2, "z"), (3, "w")]
    )


def right() -> Table:
    return Table.from_rows(["k", "b"], [(2, "p"), (2, "q"), (4, "r")])


class TestHashJoin:
    def test_inner_join_matches(self):
        joined = hash_join(left(), right(), on=["k"])
        assert joined.schema.names == ("k", "a", "b")
        assert sorted(joined.to_rows()) == [
            (2, "y", "p"),
            (2, "y", "q"),
            (2, "z", "p"),
            (2, "z", "q"),
        ]

    def test_no_matches_gives_empty(self):
        other = Table.from_rows(["k", "b"], [(99, "p")])
        assert hash_join(left(), other, on=["k"]).num_rows == 0

    def test_multi_key_join(self):
        a = Table.from_rows(["x", "y", "v"], [(1, 1, "a"), (1, 2, "b")])
        b = Table.from_rows(["x", "y", "w"], [(1, 2, "c")])
        joined = hash_join(a, b, on=["x", "y"])
        assert joined.to_rows() == [(1, 2, "b", "c")]

    def test_collision_suffix(self):
        a = Table.from_rows(["k", "v"], [(1, "a")])
        b = Table.from_rows(["k", "v"], [(1, "b")])
        joined = hash_join(a, b, on=["k"])
        assert joined.schema.names == ("k", "v", "v_right")

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            hash_join(left(), right(), on=["nope"])

    def test_figure1_attack_join(self):
        """The paper's Figure 1: voters ⋈ patients identifies Andre."""
        voters = Table.from_rows(
            ["Name", "Birthdate", "Sex", "Zipcode"],
            [
                ("Andre", "1/21/76", "Male", "53715"),
                ("Beth", "1/10/81", "Female", "55410"),
            ],
        )
        patients = Table.from_rows(
            ["Birthdate", "Sex", "Zipcode", "Disease"],
            [
                ("1/21/76", "Male", "53715", "Flu"),
                ("4/13/86", "Female", "53715", "Hepatitis"),
            ],
        )
        joined = hash_join(voters, patients, on=["Birthdate", "Sex", "Zipcode"])
        assert joined.to_rows() == [("Andre", "1/21/76", "Male", "53715", "Flu")]

    def test_duplicates_cross_product(self):
        a = Table.from_rows(["k"], [(1,), (1,)])
        b = Table.from_rows(["k", "v"], [(1, "x"), (1, "y")])
        assert hash_join(a, b, on=["k"]).num_rows == 4


class TestSemiJoin:
    def test_keeps_matching_rows_once(self):
        result = semi_join(left(), right(), on=["k"])
        assert sorted(result.to_rows()) == [(2, "y"), (2, "z")]

    def test_empty_right(self):
        empty = Table.from_rows(["k", "b"], [])
        assert semi_join(left(), empty, on=["k"]).num_rows == 0
