"""Tests for repro.relational.csvio."""

import pytest

from repro.relational.csvio import read_csv, rows_to_csv_text, write_csv
from repro.relational.schema import ColumnSpec, ColumnType, Schema
from repro.relational.table import Table


def test_write_read_round_trip(tmp_path):
    table = Table.from_rows(["a", "b"], [("x", "1"), ("y", "2")])
    path = tmp_path / "t.csv"
    write_csv(table, path)
    assert read_csv(path) == table


def test_read_with_typed_schema(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("n,s\n1,x\n2,y\n")
    schema = Schema.of(ColumnSpec("n", ColumnType.INT), "s")
    table = read_csv(path, schema)
    assert table.column("n").to_list() == [1, 2]


def test_read_header_mismatch(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(ValueError, match="header"):
        read_csv(path, Schema.of("x", "y"))


def test_read_wrong_field_count(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("a,b\n1\n")
    with pytest.raises(ValueError, match="expected 2 fields"):
        read_csv(path)


def test_read_empty_file(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_csv(path)


def test_read_header_only(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("a,b\n")
    table = read_csv(path)
    assert table.num_rows == 0
    assert table.schema.names == ("a", "b")


def test_custom_delimiter(tmp_path):
    path = tmp_path / "t.tsv"
    path.write_text("a\tb\nx\ty\n")
    table = read_csv(path, delimiter="\t")
    assert table.row(0) == ("x", "y")


def test_rows_to_csv_text():
    text = rows_to_csv_text(["a", "b"], [(1, 2)])
    assert text.splitlines() == ["a,b", "1,2"]
