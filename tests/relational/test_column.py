"""Tests for repro.relational.column."""

import numpy as np
import pytest

from repro.relational.column import CODE_DTYPE, Column


class TestConstruction:
    def test_from_values_round_trip(self):
        column = Column.from_values(["a", "b", "a", "c"])
        assert column.to_list() == ["a", "b", "a", "c"]

    def test_from_values_first_seen_order(self):
        column = Column.from_values(["z", "a", "z", "m"])
        assert column.values == ["z", "a", "m"]

    def test_cardinality(self):
        assert Column.from_values([1, 1, 2, 3]).cardinality == 3

    def test_constant(self):
        column = Column.constant("*", 4)
        assert column.to_list() == ["*"] * 4
        assert column.cardinality == 1

    def test_explicit_codes(self):
        column = Column(np.array([0, 1, 0]), ["x", "y"])
        assert column.to_list() == ["x", "y", "x"]

    def test_duplicate_dictionary_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Column(np.array([0]), ["x", "x"])

    def test_code_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Column(np.array([0, 5]), ["x", "y"])

    def test_two_dimensional_codes_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Column(np.zeros((2, 2)), ["x"])

    def test_empty_column(self):
        column = Column.from_values([])
        assert len(column) == 0
        assert column.to_list() == []


class TestAccess:
    def test_getitem(self):
        column = Column.from_values(["a", "b"])
        assert column[1] == "b"

    def test_iter(self):
        assert list(Column.from_values([3, 1, 3])) == [3, 1, 3]

    def test_codes_are_read_only(self):
        column = Column.from_values(["a", "b"])
        with pytest.raises(ValueError):
            column.codes[0] = 1

    def test_codes_dtype(self):
        assert Column.from_values(["a"]).codes.dtype == CODE_DTYPE

    def test_code_of(self):
        column = Column.from_values(["a", "b", "c"])
        assert column.code_of("b") == 1

    def test_code_of_missing_raises(self):
        with pytest.raises(KeyError):
            Column.from_values(["a"]).code_of("zz")

    def test_equality_by_values(self):
        left = Column.from_values(["a", "b"])
        right = Column(np.array([1, 0]), ["b", "a"])
        assert left == right

    def test_inequality_different_lengths(self):
        assert Column.from_values(["a"]) != Column.from_values(["a", "a"])


class TestOperations:
    def test_take_positions(self):
        column = Column.from_values(["a", "b", "c"]).take(np.array([2, 0]))
        assert column.to_list() == ["c", "a"]

    def test_take_boolean_mask(self):
        column = Column.from_values(["a", "b", "c"])
        taken = column.take(np.array([True, False, True]))
        assert taken.to_list() == ["a", "c"]

    def test_map_codes_generalizes(self):
        column = Column.from_values(["53715", "53710", "53703"])
        lookup = np.array([0, 0, 1])  # first two merge
        mapped = column.map_codes(lookup, ["5371*", "5370*"])
        assert mapped.to_list() == ["5371*", "5371*", "5370*"]

    def test_map_codes_requires_full_coverage(self):
        column = Column.from_values(["a", "b", "c"])
        with pytest.raises(ValueError, match="cover"):
            column.map_codes(np.array([0]), ["x"])

    def test_compact_drops_unreferenced(self):
        column = Column.from_values(["a", "b", "c"]).take(np.array([0, 2]))
        compacted = column.compact()
        assert compacted.cardinality == 2
        assert compacted.to_list() == ["a", "c"]

    def test_concat_merges_dictionaries(self):
        left = Column.from_values(["a", "b"])
        right = Column.from_values(["b", "c"])
        merged = left.concat(right)
        assert merged.to_list() == ["a", "b", "b", "c"]
        assert merged.cardinality == 3

    def test_concat_empty(self):
        left = Column.from_values(["a"])
        merged = left.concat(Column.from_values([]))
        assert merged.to_list() == ["a"]

    def test_repr_mentions_size(self):
        assert "n=2" in repr(Column.from_values(["a", "b"]))
