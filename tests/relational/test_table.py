"""Tests for repro.relational.table."""

import numpy as np
import pytest

from repro.relational.column import Column
from repro.relational.schema import ColumnSpec, ColumnType, Schema
from repro.relational.table import Table, infer_spec


def small() -> Table:
    return Table.from_rows(
        ["name", "city"],
        [("ann", "nyc"), ("bob", "sfo"), ("cat", "nyc")],
    )


class TestConstruction:
    def test_from_rows_round_trip(self):
        table = small()
        assert table.to_rows() == [("ann", "nyc"), ("bob", "sfo"), ("cat", "nyc")]

    def test_from_rows_with_schema(self):
        schema = Schema.of(ColumnSpec("n", ColumnType.INT))
        table = Table.from_rows(schema, [(1,), (2,)])
        assert table.column("n").to_list() == [1, 2]

    def test_from_rows_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="fields"):
            Table.from_rows(["a", "b"], [(1,)])

    def test_from_columns(self):
        table = Table.from_columns({"a": [1, 2], "b": ["x", "y"]})
        assert table.schema.names == ("a", "b")
        assert table.row(1) == (2, "y")

    def test_empty(self):
        table = Table.empty(Schema.of("a"))
        assert table.num_rows == 0

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Table(
                Schema.of("a", "b"),
                [Column.from_values([1]), Column.from_values([1, 2])],
            )

    def test_schema_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Table(Schema.of("a", "b"), [Column.from_values([1])])


class TestAccess:
    def test_row_negative_index(self):
        assert small().row(-1) == ("cat", "nyc")

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            small().row(3)

    def test_len(self):
        assert len(small()) == 3

    def test_column_missing(self):
        with pytest.raises(KeyError):
            small().column("nope")

    def test_multiset_equality_ignores_row_order(self):
        left = small()
        right = Table.from_rows(
            ["name", "city"],
            [("cat", "nyc"), ("ann", "nyc"), ("bob", "sfo")],
        )
        assert left == right

    def test_multiset_equality_respects_duplicates(self):
        left = Table.from_rows(["a"], [(1,), (1,)])
        right = Table.from_rows(["a"], [(1,), (2,)])
        assert left != right

    def test_pretty_contains_header_and_rows(self):
        text = small().pretty()
        assert "name" in text and "ann" in text

    def test_pretty_truncates(self):
        table = Table.from_rows(["a"], [(i,) for i in range(30)])
        assert "30 rows total" in table.pretty(limit=5)


class TestOperations:
    def test_project(self):
        projected = small().project(["city"])
        assert projected.to_rows() == [("nyc",), ("sfo",), ("nyc",)]

    def test_project_keeps_duplicates(self):
        assert small().project(["city"]).num_rows == 3

    def test_select(self):
        selected = small().select(lambda row: row[1] == "nyc")
        assert selected.num_rows == 2

    def test_take(self):
        taken = small().take(np.array([2, 0]))
        assert taken.to_rows() == [("cat", "nyc"), ("ann", "nyc")]

    def test_with_column(self):
        table = small().with_column("age", Column.from_values([1, 2, 3]))
        assert table.schema.names == ("name", "city", "age")

    def test_with_column_length_mismatch(self):
        with pytest.raises(ValueError):
            small().with_column("age", Column.from_values([1]))

    def test_replace_column(self):
        table = small().replace_column("city", Column.constant("*", 3))
        assert table.column("city").to_list() == ["*", "*", "*"]

    def test_replace_column_length_mismatch(self):
        with pytest.raises(ValueError):
            small().replace_column("city", Column.from_values(["x"]))

    def test_rename(self):
        assert small().rename({"name": "who"}).schema.names == ("who", "city")

    def test_concat(self):
        doubled = small().concat(small())
        assert doubled.num_rows == 6

    def test_concat_schema_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            small().concat(Table.from_rows(["x", "y"], [(1, 2)]))

    def test_distinct(self):
        table = Table.from_rows(["a"], [(1,), (1,), (2,)])
        assert table.distinct().to_rows() == [(1,), (2,)]

    def test_sort_by(self):
        table = small().sort_by(["name"])
        assert [row[0] for row in table.to_rows()] == ["ann", "bob", "cat"]

    def test_sort_by_is_stable(self):
        table = Table.from_rows(["k", "v"], [(1, "b"), (0, "x"), (1, "a")])
        sorted_table = table.sort_by(["k"])
        assert sorted_table.to_rows() == [(0, "x"), (1, "b"), (1, "a")]


class TestInferSpec:
    def test_int(self):
        assert infer_spec("a", [1, 2]).type is ColumnType.INT

    def test_float_wins(self):
        assert infer_spec("a", [1, 2.5]).type is ColumnType.FLOAT

    def test_string_wins(self):
        assert infer_spec("a", [1, "x"]).type is ColumnType.STRING

    def test_bool_treated_as_string(self):
        assert infer_spec("a", [True]).type is ColumnType.STRING
