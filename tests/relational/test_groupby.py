"""Tests for repro.relational.groupby — the frequency-set primitive."""

import numpy as np
import pytest

from repro.relational.groupby import group_by_codes, group_by_count
from repro.relational.table import Table


def patients_like() -> Table:
    return Table.from_rows(
        ["sex", "zip"],
        [
            ("M", "53715"),
            ("F", "53715"),
            ("M", "53703"),
            ("M", "53703"),
            ("F", "53706"),
            ("F", "53706"),
        ],
    )


class TestGroupByCount:
    def test_single_key(self):
        result = group_by_count(patients_like(), ["sex"])
        assert result.as_dict() == {("M",): 3, ("F",): 3}

    def test_two_keys(self):
        result = group_by_count(patients_like(), ["sex", "zip"])
        assert result.as_dict() == {
            ("M", "53715"): 1,
            ("F", "53715"): 1,
            ("M", "53703"): 2,
            ("F", "53706"): 2,
        }

    def test_paper_example_not_2_anonymous(self):
        """Section 1.1: Patients is not 2-anonymous wrt ⟨Sex, Zipcode⟩."""
        result = group_by_count(patients_like(), ["sex", "zip"])
        assert result.min_count() < 2

    def test_total_preserved(self):
        result = group_by_count(patients_like(), ["sex", "zip"])
        assert result.total() == 6

    def test_min_count_empty(self):
        table = Table.from_rows(["a"], [])
        assert group_by_count(table, ["a"]).min_count() == 0

    def test_num_groups(self):
        assert group_by_count(patients_like(), ["zip"]).num_groups == 3

    def test_group_values_decodes(self):
        result = group_by_count(patients_like(), ["sex"])
        values = {result.group_values(g) for g in range(result.num_groups)}
        assert values == {("M",), ("F",)}

    def test_to_table_round_trip(self):
        result = group_by_count(patients_like(), ["sex", "zip"])
        table = result.to_table()
        assert table.schema.names == ("sex", "zip", "count")
        assert sum(row[-1] for row in table.iter_rows()) == 6

    def test_key_order_matters_for_names_not_counts(self):
        forward = group_by_count(patients_like(), ["sex", "zip"]).as_dict()
        backward = group_by_count(patients_like(), ["zip", "sex"]).as_dict()
        assert {(s, z): c for (z, s), c in backward.items()} == forward


class TestGroupByCodes:
    def test_counts_match_python(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=500).astype(np.int32)
        b = rng.integers(0, 7, size=500).astype(np.int32)
        keys, counts = group_by_codes([a, b], [4, 7])
        expected: dict[tuple[int, int], int] = {}
        for x, y in zip(a.tolist(), b.tolist()):
            expected[(x, y)] = expected.get((x, y), 0) + 1
        actual = {
            (int(keys[g, 0]), int(keys[g, 1])): int(counts[g])
            for g in range(keys.shape[0])
        }
        assert actual == expected

    def test_empty_input(self):
        keys, counts = group_by_codes([np.empty(0, dtype=np.int32)], [3])
        assert keys.shape == (0, 1)
        assert counts.size == 0

    def test_no_keys_rejected(self):
        with pytest.raises(ValueError):
            group_by_codes([], [])

    def test_huge_radix_fallback_matches_dense(self):
        """The >int64 key-space fallback must agree with the dense path."""
        rng = np.random.default_rng(1)
        arrays = [rng.integers(0, 5, size=200).astype(np.int32) for _ in range(3)]
        dense_keys, dense_counts = group_by_codes(arrays, [5, 5, 5])
        # Force the fallback by claiming astronomically large radices.
        big = 2 ** 31
        sparse_keys, sparse_counts = group_by_codes(arrays, [big, big, big])
        dense = {
            tuple(dense_keys[g]): int(dense_counts[g])
            for g in range(dense_keys.shape[0])
        }
        sparse = {
            tuple(sparse_keys[g]): int(sparse_counts[g])
            for g in range(sparse_keys.shape[0])
        }
        assert dense == sparse

    def test_counts_sum_to_rows(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 3, size=1000).astype(np.int32)
        _, counts = group_by_codes([a], [3])
        assert counts.sum() == 1000

    def test_numpy_radix_product_overflow_forces_fallback(self):
        """Regression: np.int64 radices whose product wraps at int64.

        2**32 * 2**32 == 2**64 wraps to exactly 0 under numpy int64
        arithmetic — small enough to pass the ``_DENSE_KEY_LIMIT`` guard
        and silently corrupt the dense mixed-radix keys.  The cardinality
        product must accumulate in Python ints so the guard sees 2**64
        and takes the sparse path.
        """
        from repro.relational.groupby import _combine_codes

        radices = [np.int64(2**32), np.int64(2**32)]
        rng = np.random.default_rng(3)
        arrays = [rng.integers(0, 4, size=100).astype(np.int32) for _ in range(2)]
        _, dense = _combine_codes(arrays, radices)
        assert dense is False

        sparse_keys, sparse_counts = group_by_codes(arrays, radices)
        dense_keys, dense_counts = group_by_codes(arrays, [4, 4])
        as_dict = lambda keys, counts: {
            tuple(keys[g]): int(counts[g]) for g in range(keys.shape[0])
        }
        assert as_dict(sparse_keys, sparse_counts) == as_dict(
            dense_keys, dense_counts
        )

    def test_numpy_radix_negative_wrap_forces_fallback(self):
        """Two ~2**31.5 radices wrap to a *negative* int64 product.

        A negative wrapped product also passes a naive ``> limit`` check;
        the Python-int accumulation sees the true ~2**63 product instead.
        """
        from repro.relational.groupby import _combine_codes

        radix = np.int64(3_037_000_500)  # just above isqrt(2**63): square wraps < 0
        radices = [radix, radix]
        rng = np.random.default_rng(4)
        arrays = [rng.integers(0, 3, size=60).astype(np.int32) for _ in range(2)]
        _, dense = _combine_codes(arrays, radices)
        assert dense is False
        _, counts = group_by_codes(arrays, radices)
        assert counts.sum() == 60
