"""Tests for the star schema (paper Figure 4)."""

import pytest

from repro.datasets.patients import patients_problem
from repro.hierarchy import RoundingHierarchy, SuppressionHierarchy
from repro.hierarchy.dimension import dimension_table
from repro.relational.star import StarSchema, level_column_name
from repro.relational.table import Table


def zip_star() -> StarSchema:
    fact = Table.from_rows(
        ["Zipcode", "Disease"],
        [("53715", "Flu"), ("53703", "Cold"), ("53706", "Flu")],
    )
    dimension = dimension_table(
        "Zipcode", RoundingHierarchy(5, height=2), ["53715", "53703", "53706"]
    )
    return StarSchema(fact, {"Zipcode": dimension})


class TestLevelColumnName:
    def test_format(self):
        assert level_column_name("Zipcode", 2) == "Zipcode_2"


class TestStarSchema:
    def test_dimension_lookup(self):
        star = zip_star()
        assert star.dimension("Zipcode").num_rows == 3

    def test_missing_dimension(self):
        with pytest.raises(KeyError):
            zip_star().dimension("Sex")

    def test_height(self):
        assert zip_star().height("Zipcode") == 2

    def test_unknown_fact_attribute_rejected(self):
        fact = Table.from_rows(["A"], [("x",)])
        dim = dimension_table("B", SuppressionHierarchy(), ["x"])
        with pytest.raises(Exception):
            StarSchema(fact, {"B": dim})

    def test_generalized_view_level0_is_identity(self):
        star = zip_star()
        assert star.generalized_view({"Zipcode": 0}) == star.fact

    def test_generalized_view_level1(self):
        view = zip_star().generalized_view({"Zipcode": 1})
        assert view.column("Zipcode").to_list() == ["5371*", "5370*", "5370*"]

    def test_generalized_view_preserves_other_columns(self):
        view = zip_star().generalized_view({"Zipcode": 2})
        assert view.column("Disease").to_list() == ["Flu", "Cold", "Flu"]

    def test_generalized_view_level_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            zip_star().generalized_view({"Zipcode": 9})

    def test_project_quasi_identifier(self):
        projected = zip_star().project_quasi_identifier(
            ["Zipcode"], {"Zipcode": 2}
        )
        assert projected.column("Zipcode").to_list() == ["537**"] * 3

    def test_matches_fast_path_on_patients(self):
        """The SQL star-schema path must agree with the compiled-lookup path."""
        from repro.core.generalize import apply_with_star_schema, generalize_table
        from repro.lattice.node import LatticeNode

        problem = patients_problem()
        node = LatticeNode(("Birthdate", "Sex", "Zipcode"), (1, 0, 2))
        assert apply_with_star_schema(problem, node) == generalize_table(
            problem, node
        )
