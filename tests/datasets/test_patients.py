"""Tests pinning the Figure 1/2 running example data."""

from repro.datasets.patients import (
    PATIENTS_QI,
    patients_hierarchies,
    patients_problem,
    patients_table,
    voter_table,
)


class TestPatientsTable:
    def test_six_rows(self):
        assert patients_table().num_rows == 6

    def test_schema(self):
        assert patients_table().schema.names == (
            "Birthdate", "Sex", "Zipcode", "Disease",
        )

    def test_first_row_is_andres(self):
        assert patients_table().row(0) == ("1/21/76", "Male", "53715", "Flu")

    def test_zipcodes_match_figure2_domain(self):
        zips = set(patients_table().column("Zipcode").to_list())
        assert zips == {"53715", "53703", "53706"}


class TestVoterTable:
    def test_five_rows(self):
        assert voter_table().num_rows == 5

    def test_contains_andre(self):
        names = voter_table().column("Name").to_list()
        assert "Andre" in names


class TestHierarchies:
    def test_heights_match_figure2(self):
        hierarchies = patients_hierarchies()
        assert hierarchies["Birthdate"].height == 1
        assert hierarchies["Sex"].height == 1
        assert hierarchies["Zipcode"].height == 2

    def test_sex_generalizes_to_person(self):
        assert patients_hierarchies()["Sex"].generalize("Male", 1) == "Person"

    def test_zipcode_chain(self):
        hierarchy = patients_hierarchies()["Zipcode"]
        assert hierarchy.chain("53715") == ["53715", "5371*", "537**"]


class TestProblem:
    def test_qi_order(self):
        assert patients_problem().quasi_identifier == PATIENTS_QI

    def test_lattice_size(self):
        assert patients_problem().lattice().size == 12
