"""Tests for the synthetic Lands End generator (Figure 9, right)."""

import numpy as np
import pytest

from repro.datasets.landsend import (
    LANDSEND_QI,
    iter_landsend_blocks,
    landsend_hierarchies,
    landsend_problem,
    landsend_problem_shm,
    landsend_table,
)


@pytest.fixture(scope="module")
def table():
    return landsend_table(num_rows=20_000, seed=11)


class TestSchema:
    def test_eight_attributes_in_paper_order(self, table):
        assert table.schema.names == LANDSEND_QI
        assert len(LANDSEND_QI) == 8

    def test_row_count(self, table):
        assert table.num_rows == 20_000

    def test_paper_full_scale_constant(self):
        from repro.datasets.landsend import FULL_ROWS

        assert FULL_ROWS == 4_591_581


class TestDomains:
    def test_zipcodes_are_five_digits(self, table):
        for value in table.column("zipcode").values[:50]:
            assert len(value) == 5 and value.isdigit()

    def test_quantity_single_value(self, table):
        assert table.column("quantity").cardinality == 1

    def test_gender_two_values(self, table):
        assert table.column("gender").cardinality == 2

    def test_cardinalities_bounded_by_figure9_pools(self, table):
        bounds = {
            "zipcode": 31_953,
            "order_date": 320,
            "style": 1_509,
            "price": 346,
            "cost": 1_412,
            "shipment": 2,
        }
        for name, bound in bounds.items():
            assert 1 < table.column(name).cardinality <= bound

    def test_order_dates_iso(self, table):
        import datetime

        for value in table.column("order_date").values[:20]:
            datetime.date.fromisoformat(value)

    def test_skew_produces_popular_head(self, table):
        """Zipf sampling: the most popular style must dwarf the median."""
        import collections

        counts = collections.Counter(table.column("style").to_list())
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] > 10 * frequencies[len(frequencies) // 2]


class TestHierarchies:
    """Figure 9's hierarchy heights: 5,3,1,1,4,1,4,1."""

    @pytest.mark.parametrize(
        "attribute,height",
        [
            ("zipcode", 5),
            ("order_date", 3),
            ("gender", 1),
            ("style", 1),
            ("price", 4),
            ("quantity", 1),
            ("cost", 4),
            ("shipment", 1),
        ],
    )
    def test_heights(self, attribute, height):
        assert landsend_hierarchies()[attribute].height == height

    def test_every_generated_value_compiles(self, table):
        hierarchies = landsend_hierarchies()
        for name in LANDSEND_QI:
            hierarchy = hierarchies[name]
            compiled = hierarchy.compile(table.column(name).values)
            assert compiled.cardinality(hierarchy.height) == 1


class TestDeterminism:
    def test_same_seed_same_table(self):
        assert landsend_table(1_000, seed=2) == landsend_table(1_000, seed=2)

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            landsend_table(-5)

    def test_problem_qi_prefix(self):
        problem = landsend_problem(1_000, qi_size=3)
        assert problem.quasi_identifier == LANDSEND_QI[:3]

    def test_problem_qi_bounds(self):
        with pytest.raises(ValueError):
            landsend_problem(100, qi_size=9)


class TestStreamingBlocks:
    def test_blocks_cover_rows_exactly(self):
        blocks = list(
            iter_landsend_blocks(10_000, qi_size=3, block_rows=3_000)
        )
        assert [(b[0], b[1]) for b in blocks] == [
            (0, 3_000), (3_000, 6_000), (6_000, 9_000), (9_000, 10_000)
        ]
        for start, stop, codes in blocks:
            assert set(codes) == set(LANDSEND_QI[:3])
            for column in codes.values():
                assert len(column) == stop - start

    def test_streams_are_deterministic(self):
        first = list(iter_landsend_blocks(5_000, qi_size=2, block_rows=1_024))
        second = list(iter_landsend_blocks(5_000, qi_size=2, block_rows=1_024))
        for (_, _, left), (_, _, right) in zip(first, second):
            for name in left:
                np.testing.assert_array_equal(left[name], right[name])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            list(iter_landsend_blocks(0))
        with pytest.raises(ValueError):
            list(iter_landsend_blocks(100, block_rows=0))
        with pytest.raises(ValueError):
            list(iter_landsend_blocks(100, qi_size=9))


class TestShmProblem:
    def test_builds_a_working_problem(self):
        problem = landsend_problem_shm(4_000, qi_size=3)
        try:
            assert problem.table.num_rows == 4_000
            assert problem.quasi_identifier == LANDSEND_QI[:3]
            assert problem._shm_store is not None
            for name in problem.quasi_identifier:
                column = problem.table.column(name)
                # Compaction renumbered codes densely over used values.
                assert column.codes.min() >= 0
                assert column.codes.max() == column.cardinality - 1
        finally:
            problem._shm_store.close()

    def test_same_seed_same_streamed_table(self):
        first = landsend_problem_shm(3_000, qi_size=2)
        second = landsend_problem_shm(3_000, qi_size=2)
        try:
            for name in first.quasi_identifier:
                np.testing.assert_array_equal(
                    first.table.column(name).codes,
                    second.table.column(name).codes,
                )
                assert list(first.table.column(name).values) == (
                    list(second.table.column(name).values)
                )
        finally:
            first._shm_store.close()
            second._shm_store.close()

    def test_failed_build_releases_segments(self, monkeypatch):
        """A generator blowing up mid-stream must not leak segments."""
        import repro.datasets.landsend as landsend_module
        from repro.shard import shm as shm_module

        stores = []
        original_cls = shm_module.SharedTableStore

        class RecordingStore(original_cls):
            def __init__(self):
                super().__init__()
                stores.append(self)

        monkeypatch.setattr(shm_module, "SharedTableStore", RecordingStore)

        def boom(*args, **kwargs):
            raise RuntimeError("stream died")

        monkeypatch.setattr(landsend_module, "iter_landsend_blocks", boom)
        with pytest.raises(RuntimeError, match="stream died"):
            landsend_problem_shm(2_000, qi_size=2)
        assert stores and all(store.closed for store in stores)

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            landsend_problem_shm(0)
