"""Tests for the synthetic Lands End generator (Figure 9, right)."""

import pytest

from repro.datasets.landsend import (
    LANDSEND_QI,
    landsend_hierarchies,
    landsend_problem,
    landsend_table,
)


@pytest.fixture(scope="module")
def table():
    return landsend_table(num_rows=20_000, seed=11)


class TestSchema:
    def test_eight_attributes_in_paper_order(self, table):
        assert table.schema.names == LANDSEND_QI
        assert len(LANDSEND_QI) == 8

    def test_row_count(self, table):
        assert table.num_rows == 20_000

    def test_paper_full_scale_constant(self):
        from repro.datasets.landsend import FULL_ROWS

        assert FULL_ROWS == 4_591_581


class TestDomains:
    def test_zipcodes_are_five_digits(self, table):
        for value in table.column("zipcode").values[:50]:
            assert len(value) == 5 and value.isdigit()

    def test_quantity_single_value(self, table):
        assert table.column("quantity").cardinality == 1

    def test_gender_two_values(self, table):
        assert table.column("gender").cardinality == 2

    def test_cardinalities_bounded_by_figure9_pools(self, table):
        bounds = {
            "zipcode": 31_953,
            "order_date": 320,
            "style": 1_509,
            "price": 346,
            "cost": 1_412,
            "shipment": 2,
        }
        for name, bound in bounds.items():
            assert 1 < table.column(name).cardinality <= bound

    def test_order_dates_iso(self, table):
        import datetime

        for value in table.column("order_date").values[:20]:
            datetime.date.fromisoformat(value)

    def test_skew_produces_popular_head(self, table):
        """Zipf sampling: the most popular style must dwarf the median."""
        import collections

        counts = collections.Counter(table.column("style").to_list())
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] > 10 * frequencies[len(frequencies) // 2]


class TestHierarchies:
    """Figure 9's hierarchy heights: 5,3,1,1,4,1,4,1."""

    @pytest.mark.parametrize(
        "attribute,height",
        [
            ("zipcode", 5),
            ("order_date", 3),
            ("gender", 1),
            ("style", 1),
            ("price", 4),
            ("quantity", 1),
            ("cost", 4),
            ("shipment", 1),
        ],
    )
    def test_heights(self, attribute, height):
        assert landsend_hierarchies()[attribute].height == height

    def test_every_generated_value_compiles(self, table):
        hierarchies = landsend_hierarchies()
        for name in LANDSEND_QI:
            hierarchy = hierarchies[name]
            compiled = hierarchy.compile(table.column(name).values)
            assert compiled.cardinality(hierarchy.height) == 1


class TestDeterminism:
    def test_same_seed_same_table(self):
        assert landsend_table(1_000, seed=2) == landsend_table(1_000, seed=2)

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            landsend_table(-5)

    def test_problem_qi_prefix(self):
        problem = landsend_problem(1_000, qi_size=3)
        assert problem.quasi_identifier == LANDSEND_QI[:3]

    def test_problem_qi_bounds(self):
        with pytest.raises(ValueError):
            landsend_problem(100, qi_size=9)
