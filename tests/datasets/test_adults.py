"""Tests for the synthetic Adults generator (Figure 9, left)."""

import pytest

from repro.datasets.adults import (
    ADULTS_QI,
    adults_hierarchies,
    adults_problem,
    adults_table,
)


@pytest.fixture(scope="module")
def table():
    return adults_table(num_rows=5_000, seed=7)


class TestSchema:
    def test_nine_attributes_in_paper_order(self, table):
        assert table.schema.names == ADULTS_QI
        assert len(ADULTS_QI) == 9

    def test_row_count(self, table):
        assert table.num_rows == 5_000

    def test_default_row_count_is_papers(self):
        # don't generate it here (slow); just check the constant
        from repro.datasets.adults import DEFAULT_ROWS

        assert DEFAULT_ROWS == 45_222


class TestCardinalities:
    """Figure 9's distinct-value counts must be reachable (and capped)."""

    @pytest.mark.parametrize(
        "attribute,expected",
        [
            ("age", 74),
            ("gender", 2),
            ("race", 5),
            ("marital_status", 7),
            ("education", 16),
            ("native_country", 41),
            ("work_class", 7),
            ("occupation", 14),
            ("salary_class", 2),
        ],
    )
    def test_cardinality_matches_figure9(self, table, attribute, expected):
        assert table.column(attribute).cardinality == expected

    def test_age_range(self, table):
        ages = table.column("age").to_list()
        assert min(ages) == 17
        assert max(ages) == 90


class TestHierarchies:
    """Figure 9's hierarchy heights: 4,1,1,2,3,2,2,2,1."""

    @pytest.mark.parametrize(
        "attribute,height",
        [
            ("age", 4),
            ("gender", 1),
            ("race", 1),
            ("marital_status", 2),
            ("education", 3),
            ("native_country", 2),
            ("work_class", 2),
            ("occupation", 2),
            ("salary_class", 1),
        ],
    )
    def test_heights(self, attribute, height):
        assert adults_hierarchies()[attribute].height == height

    def test_age_ranges(self):
        hierarchy = adults_hierarchies()["age"]
        assert hierarchy.generalize(37, 1) == "[35-40)"
        assert hierarchy.generalize(37, 2) == "[30-40)"
        assert hierarchy.generalize(37, 3) == "[20-40)"
        assert hierarchy.generalize(37, 4) == "*"

    def test_education_taxonomy(self):
        hierarchy = adults_hierarchies()["education"]
        assert hierarchy.generalize("Masters", 1) == "Postgraduate"
        assert hierarchy.generalize("Masters", 3) == "*"

    def test_every_generated_value_is_in_its_hierarchy(self, table):
        hierarchies = adults_hierarchies()
        for name in ADULTS_QI:
            hierarchy = hierarchies[name]
            compiled = hierarchy.compile(table.column(name).values)
            assert compiled.cardinality(hierarchy.height) == 1


class TestDeterminism:
    def test_same_seed_same_table(self):
        assert adults_table(500, seed=3) == adults_table(500, seed=3)

    def test_different_seed_differs(self):
        assert adults_table(500, seed=3) != adults_table(500, seed=4)

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            adults_table(0)


class TestProblem:
    def test_qi_prefix(self):
        problem = adults_problem(1_000, qi_size=4)
        assert problem.quasi_identifier == ADULTS_QI[:4]

    def test_qi_size_bounds(self):
        with pytest.raises(ValueError):
            adults_problem(100, qi_size=0)
        with pytest.raises(ValueError):
            adults_problem(100, qi_size=10)
