"""Tests for frequency sets and k-anonymity checks."""

import numpy as np
import pytest

from repro.core.anonymity import (
    FrequencyEvaluator,
    check_k_anonymity,
    compute_frequency_set,
)
from repro.core.problem import PreparedTable
from repro.datasets.patients import patients_problem
from repro.lattice.node import LatticeNode
from repro.relational.table import Table

QI = ("Birthdate", "Sex", "Zipcode")


def node(b: int, s: int, z: int) -> LatticeNode:
    return LatticeNode(QI, (b, s, z))


class TestComputeFrequencySet:
    def test_zero_generalization_counts(self):
        problem = patients_problem()
        fs = compute_frequency_set(problem, node(0, 0, 0))
        assert fs.total() == 6
        assert fs.num_groups == 6  # every Patients row is unique on the QI
        assert fs.min_count() == 1

    def test_generalized_counts(self):
        problem = patients_problem()
        fs = compute_frequency_set(problem, node(1, 1, 0))
        assert fs.as_dict() == {
            ("*", "Person", "53715"): 2,
            ("*", "Person", "53703"): 2,
            ("*", "Person", "53706"): 2,
        }

    def test_subset_node(self):
        problem = patients_problem()
        fs = compute_frequency_set(problem, LatticeNode(("Sex",), (0,)))
        assert fs.as_dict() == {("Male",): 3, ("Female",): 3}

    def test_to_table(self):
        problem = patients_problem()
        fs = compute_frequency_set(problem, LatticeNode(("Sex",), (1,)))
        table = fs.to_table()
        assert table.schema.names == ("Sex", "count")
        assert table.to_rows() == [("Person", 6)]


class TestIsKAnonymous:
    def test_paper_section_1_1_example(self):
        """Patients is not 2-anonymous wrt ⟨Sex, Zipcode⟩."""
        problem = patients_problem()
        fs = compute_frequency_set(
            problem, LatticeNode(("Sex", "Zipcode"), (0, 0))
        )
        assert not fs.is_k_anonymous(2)

    def test_paper_example_31_s1z0(self):
        """Patients is 2-anonymous wrt ⟨S1, Z0⟩ (Example 3.1)."""
        problem = patients_problem()
        fs = compute_frequency_set(
            problem, LatticeNode(("Sex", "Zipcode"), (1, 0))
        )
        assert fs.is_k_anonymous(2)

    def test_paper_example_31_s0z2(self):
        """Patients is 2-anonymous wrt ⟨S0, Z2⟩ (Example 3.1)."""
        problem = patients_problem()
        fs = compute_frequency_set(
            problem, LatticeNode(("Sex", "Zipcode"), (0, 2))
        )
        assert fs.is_k_anonymous(2)

    def test_invalid_k(self):
        problem = patients_problem()
        fs = compute_frequency_set(problem, node(0, 0, 0))
        with pytest.raises(ValueError):
            fs.is_k_anonymous(0)

    def test_suppression_threshold(self):
        problem = patients_problem()
        fs = compute_frequency_set(problem, node(0, 0, 0))
        # all six groups have count 1 < 2: suppressing them all needs 6 rows
        assert fs.rows_below(2) == 6
        assert not fs.is_k_anonymous(2, max_suppression=5)
        assert fs.is_k_anonymous(2, max_suppression=6)

    def test_rows_below_zero_when_anonymous(self):
        problem = patients_problem()
        fs = compute_frequency_set(problem, node(1, 1, 0))
        assert fs.rows_below(2) == 0


def empty_patients_problem() -> PreparedTable:
    from repro.datasets.patients import patients_hierarchies
    from repro.relational.schema import Schema

    schema = Schema.of("Birthdate", "Sex", "Zipcode", "Disease")
    return PreparedTable(
        Table.from_rows(schema, []), patients_hierarchies(), QI
    )


class TestEmptyRelationSemantics:
    """An empty relation is k-anonymous for every k (vacuous truth).

    Regression: ``min_count()`` returns 0 for "no groups", so the plain
    ``min_count() >= k`` test wrongly failed every k on empty input.
    """

    def test_empty_frequency_set_is_k_anonymous_for_all_k(self):
        fs = compute_frequency_set(empty_patients_problem(), node(0, 0, 0))
        assert fs.num_groups == 0
        assert fs.min_count() == 0  # the "no groups" sentinel, not a count
        for k in (1, 2, 10, 10**6):
            assert fs.is_k_anonymous(k)

    def test_empty_with_suppression_budget(self):
        fs = compute_frequency_set(empty_patients_problem(), node(0, 0, 0))
        assert fs.is_k_anonymous(2, max_suppression=3)
        assert fs.rows_below(2) == 0

    def test_suppression_leaving_empty_remainder(self):
        # Every group is undersized; suppressing them all leaves an empty
        # remainder, which must still count as k-anonymous when the budget
        # covers every dropped row.
        problem = patients_problem()
        fs = compute_frequency_set(problem, node(0, 0, 0))
        assert fs.rows_below(10) == fs.total()  # all rows are outliers
        assert fs.is_k_anonymous(10, max_suppression=fs.total())
        assert not fs.is_k_anonymous(10, max_suppression=fs.total() - 1)

    def test_empty_still_rejects_invalid_k(self):
        fs = compute_frequency_set(empty_patients_problem(), node(0, 0, 0))
        with pytest.raises(ValueError):
            fs.is_k_anonymous(0)


class TestRollup:
    def test_rollup_property_single_step(self):
        """Rolling up must equal recomputing from scratch (Rollup Property)."""
        problem = patients_problem()
        base = compute_frequency_set(problem, node(0, 0, 0))
        rolled = base.rollup(node(0, 0, 1))
        direct = compute_frequency_set(problem, node(0, 0, 1))
        assert rolled.as_dict() == direct.as_dict()

    def test_rollup_multi_step_multi_attribute(self):
        problem = patients_problem()
        base = compute_frequency_set(problem, node(0, 0, 0))
        rolled = base.rollup(node(1, 1, 2))
        direct = compute_frequency_set(problem, node(1, 1, 2))
        assert rolled.as_dict() == direct.as_dict()

    def test_rollup_preserves_total(self):
        problem = patients_problem()
        base = compute_frequency_set(problem, node(0, 0, 0))
        assert base.rollup(node(1, 0, 1)).total() == base.total()

    def test_rollup_downward_rejected(self):
        problem = patients_problem()
        fs = compute_frequency_set(problem, node(1, 1, 1))
        with pytest.raises(ValueError):
            fs.rollup(node(0, 0, 0))

    def test_paper_rollup_example(self):
        """Section 3: F2 = rollup of F1 from ⟨B,S,Z⟩ to ⟨B,S,Z1⟩."""
        problem = patients_problem()
        f1 = compute_frequency_set(problem, node(0, 0, 0))
        f2 = f1.rollup(node(0, 0, 1))
        assert f2.as_dict() == {
            ("1/21/76", "Male", "5371*"): 1,
            ("4/13/86", "Female", "5371*"): 1,
            ("2/28/76", "Male", "5370*"): 1,
            ("1/21/76", "Male", "5370*"): 1,
            ("4/13/86", "Female", "5370*"): 1,
            ("2/28/76", "Female", "5370*"): 1,
        }


class TestProject:
    def test_project_matches_direct(self):
        """The subset/data-cube direction must match a fresh group-by."""
        problem = patients_problem()
        full = compute_frequency_set(problem, node(0, 0, 0))
        projected = full.project(("Sex", "Zipcode"))
        direct = compute_frequency_set(
            problem, LatticeNode(("Sex", "Zipcode"), (0, 0))
        )
        assert projected.as_dict() == direct.as_dict()

    def test_project_reorders(self):
        problem = patients_problem()
        full = compute_frequency_set(problem, node(0, 0, 0))
        projected = full.project(("Zipcode", "Birthdate"))
        assert projected.node.attributes == ("Zipcode", "Birthdate")
        assert projected.total() == 6

    def test_project_to_nothing_rejected(self):
        problem = patients_problem()
        full = compute_frequency_set(problem, node(0, 0, 0))
        with pytest.raises(ValueError):
            full.project(())


class TestCheckKAnonymity:
    def test_plain_table_check(self):
        table = Table.from_rows(["a"], [(1,), (1,), (2,)])
        assert check_k_anonymity(table, ["a"], 1)
        assert not check_k_anonymity(table, ["a"], 2)

    def test_empty_table_trivially_anonymous(self):
        table = Table.from_rows(["a"], [])
        assert check_k_anonymity(table, ["a"], 5)

    def test_with_suppression_budget(self):
        table = Table.from_rows(["a"], [(1,), (1,), (2,)])
        assert check_k_anonymity(table, ["a"], 2, max_suppression=1)
        assert not check_k_anonymity(table, ["a"], 2, max_suppression=0)


class TestFrequencyEvaluator:
    def test_counters(self):
        problem = patients_problem()
        evaluator = FrequencyEvaluator(problem)
        fs = evaluator.scan(node(0, 0, 0))
        evaluator.rollup(fs, node(1, 0, 0))
        evaluator.project(fs, ("Sex",))
        evaluator.decide(node(0, 0, 0), fs, 2, 0)
        stats = evaluator.stats
        assert stats.table_scans == 1
        assert stats.rollups == 1
        assert stats.projections == 1
        assert stats.nodes_checked == 1
        assert stats.frequency_evaluations == 3
        assert stats.checks_by_subset_size == {3: 1}
