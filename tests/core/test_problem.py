"""Tests for PreparedTable."""

import pytest

from repro.core.problem import PreparedTable
from repro.datasets.patients import patients_hierarchies, patients_table
from repro.hierarchy import SuppressionHierarchy
from repro.relational.table import Table


class TestConstruction:
    def test_default_qi_from_hierarchies(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        assert problem.quasi_identifier == ("Birthdate", "Sex", "Zipcode")

    def test_explicit_qi_subset(self):
        problem = PreparedTable(
            patients_table(), patients_hierarchies(), ["Sex", "Zipcode"]
        )
        assert problem.quasi_identifier == ("Sex", "Zipcode")

    def test_missing_hierarchy_rejected(self):
        with pytest.raises(ValueError, match="no hierarchy"):
            PreparedTable(patients_table(), {}, ["Sex"])

    def test_missing_column_rejected(self):
        with pytest.raises(KeyError):
            PreparedTable(
                patients_table(), {"Nope": SuppressionHierarchy()}, ["Nope"]
            )

    def test_precompiled_size_mismatch_rejected(self):
        compiled = SuppressionHierarchy().compile(["a", "b", "c"])
        table = Table.from_rows(["Sex"], [("Male",), ("Female",)])
        with pytest.raises(ValueError, match="covers"):
            PreparedTable(table, {"Sex": compiled})


class TestAccessors:
    def test_heights(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        assert problem.heights == {"Birthdate": 1, "Sex": 1, "Zipcode": 2}

    def test_lattice_default_qi(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        lattice = problem.lattice()
        assert lattice.size == 2 * 2 * 3

    def test_lattice_subset(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        assert problem.lattice(["Sex", "Zipcode"]).size == 6

    def test_bottom_top(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        assert problem.bottom_node().levels == (0, 0, 0)
        assert problem.top_node().levels == (1, 1, 2)

    def test_hierarchy_unknown_attribute(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        with pytest.raises(KeyError):
            problem.hierarchy("Disease")

    def test_with_quasi_identifier_shares_compiled(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        narrowed = problem.with_quasi_identifier(["Sex"])
        assert narrowed.quasi_identifier == ("Sex",)
        assert narrowed.hierarchy("Sex") is problem.hierarchy("Sex")

    def test_with_quasi_identifier_unknown(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        with pytest.raises(ValueError):
            problem.with_quasi_identifier(["Disease"])

    def test_star_schema_has_all_dimensions(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        star = problem.star_schema()
        assert set(star.dimension_attributes) == set(problem.quasi_identifier)

    def test_repr(self):
        problem = PreparedTable(patients_table(), patients_hierarchies())
        assert "rows=6" in repr(problem)
