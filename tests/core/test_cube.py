"""Tests for Cube Incognito (Section 3.3.2)."""

import pytest

from repro.core.anonymity import FrequencyEvaluator, compute_frequency_set
from repro.core.cube import build_zero_generalization_cube, cube_incognito
from repro.core.incognito import basic_incognito
from repro.datasets.patients import patients_problem
from tests.conftest import make_random_problem


class TestCubeBuild:
    def test_covers_every_nonempty_subset(self):
        problem = patients_problem()
        evaluator = FrequencyEvaluator(problem)
        cube = build_zero_generalization_cube(problem, evaluator)
        assert len(cube) == 2 ** 3 - 1

    def test_single_scan_only(self):
        problem = patients_problem()
        evaluator = FrequencyEvaluator(problem)
        build_zero_generalization_cube(problem, evaluator)
        assert evaluator.stats.table_scans == 1
        assert evaluator.stats.cube_build_scans == 1
        assert evaluator.stats.projections == 2 ** 3 - 2

    def test_subset_sets_match_direct_computation(self):
        problem = patients_problem()
        evaluator = FrequencyEvaluator(problem)
        cube = build_zero_generalization_cube(problem, evaluator)
        for attributes, frequency_set in cube.items():
            direct = compute_frequency_set(
                problem, problem.bottom_node(attributes)
            )
            assert frequency_set.as_dict() == direct.as_dict(), attributes

    def test_build_time_recorded(self):
        problem = patients_problem()
        evaluator = FrequencyEvaluator(problem)
        build_zero_generalization_cube(problem, evaluator)
        assert evaluator.stats.cube_build_seconds > 0


class TestCubeIncognito:
    def test_same_answers_as_basic(self):
        problem = patients_problem()
        assert (
            cube_incognito(problem, 2).anonymous_nodes
            == basic_incognito(problem, 2).anonymous_nodes
        )

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 4])
    def test_random_agreement_with_basic(self, seed, k):
        problem = make_random_problem(seed + 400)
        assert (
            cube_incognito(problem, k).anonymous_nodes
            == basic_incognito(problem, k).anonymous_nodes
        )

    def test_search_phase_never_scans(self):
        """After the build's single scan, every root comes from the cube."""
        result = cube_incognito(patients_problem(), 2)
        assert result.stats.table_scans == 1

    def test_build_cost_split_out(self):
        result = cube_incognito(patients_problem(), 2)
        stats = result.stats
        assert stats.cube_build_scans == 1
        assert 0 < stats.cube_build_seconds <= stats.elapsed_seconds

    def test_algorithm_label(self):
        assert cube_incognito(patients_problem(), 2).algorithm == "cube-incognito"
