"""Tests for AnonymizationResult and SearchStats."""

from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.datasets.patients import patients_problem
from repro.lattice.node import LatticeNode

ATTRS = ("Birthdate", "Sex", "Zipcode")


def node(b, s, z):
    return LatticeNode(ATTRS, (b, s, z))


class TestResult:
    def test_nodes_sorted_on_construction(self):
        result = make_result(
            "x", 2, [node(1, 1, 2), node(1, 1, 0)], SearchStats()
        )
        assert result.anonymous_nodes[0] == node(1, 1, 0)

    def test_found(self):
        assert make_result("x", 2, [node(0, 0, 0)], SearchStats()).found
        assert not make_result("x", 2, [], SearchStats()).found

    def test_best_node_raises_when_empty(self):
        import pytest

        result = make_result("x", 2, [], SearchStats())
        with pytest.raises(ValueError, match="no 2-anonymous"):
            result.best_node()

    def test_describe_mentions_algorithm_and_minimal(self):
        result = make_result("algo-name", 2, [node(1, 1, 0)], SearchStats())
        text = result.describe()
        assert "algo-name" in text
        assert "minimal height 2" in text

    def test_describe_marks_single_answer(self):
        result = make_result(
            "bs", 2, [node(1, 1, 0)], SearchStats(), complete=False
        )
        assert "single-answer" in result.describe()

    def test_details_passed_through(self):
        result = make_result("x", 2, [], SearchStats(), probes=[(1, True)])
        assert result.details == {"probes": [(1, True)]}

    def test_apply_uses_best_node_by_default(self):
        problem = patients_problem()
        result = make_result("x", 2, [node(1, 1, 0), node(1, 1, 2)], SearchStats())
        view = result.apply(problem)
        assert view.node == node(1, 1, 0)


class TestSearchStats:
    def test_merge_accumulates(self):
        first = SearchStats(table_scans=1, rollups=2, nodes_checked=3)
        first.checks_by_subset_size = {1: 3}
        second = SearchStats(table_scans=10, nodes_marked=4)
        second.checks_by_subset_size = {1: 1, 2: 5}
        first.merge(second)
        assert first.table_scans == 11
        assert first.rollups == 2
        assert first.nodes_marked == 4
        assert first.checks_by_subset_size == {1: 4, 2: 5}

    def test_record_check(self):
        stats = SearchStats()
        stats.record_check(2)
        stats.record_check(2)
        stats.record_check(3)
        assert stats.nodes_checked == 3
        assert stats.checks_by_subset_size == {2: 2, 3: 1}

    def test_frequency_evaluations(self):
        stats = SearchStats(table_scans=2, rollups=3, projections=4)
        assert stats.frequency_evaluations == 9

    def test_summary_is_one_line(self):
        assert "\n" not in SearchStats().summary()
