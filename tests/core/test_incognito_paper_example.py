"""Golden tests: Incognito on the paper's running example (Examples 3.1/3.2).

The paper walks the Patients table (Figure 1) with quasi-identifier
⟨Birthdate, Sex, Zipcode⟩ and k=2 through the whole algorithm; these tests
pin our implementation to every stated intermediate and final fact.
"""

import pytest

from repro.core.anonymity import check_k_anonymity, compute_frequency_set
from repro.core.incognito import basic_incognito
from repro.datasets.patients import patients_problem
from repro.lattice.node import LatticeNode

QI = ("Birthdate", "Sex", "Zipcode")


def node(b: int, s: int, z: int) -> LatticeNode:
    return LatticeNode(QI, (b, s, z))


@pytest.fixture(scope="module")
def result():
    return basic_incognito(patients_problem(), 2)


class TestExample31FirstIteration:
    """Iteration 1 finds T 2-anonymous wrt ⟨B0⟩, ⟨S0⟩, and ⟨Z0⟩."""

    @pytest.mark.parametrize("attribute", ["Birthdate", "Sex", "Zipcode"])
    def test_single_attributes_anonymous_at_level0(self, attribute):
        problem = patients_problem()
        fs = compute_frequency_set(problem, LatticeNode((attribute,), (0,)))
        assert fs.is_k_anonymous(2)


class TestExample31SexZipcodeSearch:
    """Figure 5(a): the ⟨Sex, Zipcode⟩ breadth-first search."""

    def sz(self, s, z):
        return LatticeNode(("Sex", "Zipcode"), (s, z))

    def test_s0z0_fails(self):
        problem = patients_problem()
        assert not compute_frequency_set(problem, self.sz(0, 0)).is_k_anonymous(2)

    def test_s1z0_passes(self):
        problem = patients_problem()
        assert compute_frequency_set(problem, self.sz(1, 0)).is_k_anonymous(2)

    def test_s0z1_fails(self):
        problem = patients_problem()
        assert not compute_frequency_set(problem, self.sz(0, 1)).is_k_anonymous(2)

    def test_s0z2_passes(self):
        problem = patients_problem()
        assert compute_frequency_set(problem, self.sz(0, 2)).is_k_anonymous(2)


class TestFinalResult:
    """The complete 2-anonymous set equals Figure 7(a)'s candidate nodes.

    (All five Figure 7(a) candidates turn out 2-anonymous for Patients.)
    """

    def test_anonymous_node_set(self, result):
        expected = {
            node(1, 1, 0),
            node(1, 1, 1),
            node(1, 1, 2),
            node(1, 0, 2),
            node(0, 1, 2),
        }
        assert set(result.anonymous_nodes) == expected

    def test_minimal_height_is_b1s1z0(self, result):
        assert result.minimal_height() == [node(1, 1, 0)]
        assert result.best_node().height == 2

    def test_pareto_minimal(self, result):
        # ⟨B1,S1,Z0⟩, ⟨B1,S0,Z2⟩ and ⟨B0,S1,Z2⟩ are mutually incomparable
        assert set(result.pareto_minimal()) == {
            node(1, 1, 0), node(1, 0, 2), node(0, 1, 2),
        }

    def test_weighted_minimality_prefers_intact_sex(self, result):
        """Section 2.1: 'more important that Sex be released intact'."""
        chosen = result.weighted_minimal({"Sex": 10.0})
        assert chosen.level_of("Sex") == 0
        assert chosen == node(1, 0, 2)

    def test_applied_view_is_2_anonymous(self, result):
        problem = patients_problem()
        for anonymous_node in result.anonymous_nodes:
            view = result.apply(problem, anonymous_node)
            assert check_k_anonymity(view.table, QI, 2), str(anonymous_node)

    def test_applying_foreign_node_rejected(self, result):
        problem = patients_problem()
        with pytest.raises(ValueError, match="not in this result"):
            result.apply(problem, node(0, 0, 0))

    def test_result_is_complete_flagged(self, result):
        assert result.complete
        assert result.found
        assert result.k == 2
