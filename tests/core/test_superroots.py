"""Tests for Super-roots Incognito (Section 3.3.1)."""

import pytest

from repro.core.superroots import family_meet, superroots_incognito
from repro.core.incognito import basic_incognito
from repro.datasets.patients import patients_problem
from repro.lattice.node import LatticeNode
from tests.conftest import make_random_problem


class TestFamilyMeet:
    def test_paper_example(self):
        """Section 3.3.1: roots ⟨B1,S1,Z0⟩, ⟨B1,S0,Z2⟩, ⟨B0,S1,Z2⟩ →
        super-root ⟨B0,S0,Z0⟩."""
        attrs = ("Birthdate", "Sex", "Zipcode")
        roots = [
            LatticeNode(attrs, (1, 1, 0)),
            LatticeNode(attrs, (1, 0, 2)),
            LatticeNode(attrs, (0, 1, 2)),
        ]
        assert family_meet(roots) == LatticeNode(attrs, (0, 0, 0))

    def test_single_root_is_its_own_meet(self):
        node = LatticeNode(("a",), (3,))
        assert family_meet([node]) == node

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            family_meet([])

    def test_mixed_families_rejected(self):
        with pytest.raises(ValueError, match="mixed"):
            family_meet(
                [LatticeNode(("a",), (0,)), LatticeNode(("b",), (0,))]
            )


class TestSuperrootsIncognito:
    def test_same_answers_as_basic(self):
        problem = patients_problem()
        assert (
            superroots_incognito(problem, 2).anonymous_nodes
            == basic_incognito(problem, 2).anonymous_nodes
        )

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 4])
    def test_random_agreement_with_basic(self, seed, k):
        problem = make_random_problem(seed + 300)
        assert (
            superroots_incognito(problem, k).anonymous_nodes
            == basic_incognito(problem, k).anonymous_nodes
        )

    def test_fewer_table_scans_than_basic_when_graphs_fragment(self):
        """With a >2-attribute QI and pruning, families develop multiple
        roots and the super-root saves scans."""
        problem = make_random_problem(3, num_attributes=4, num_rows=25)
        basic = basic_incognito(problem, 3)
        better = superroots_incognito(problem, 3)
        assert better.stats.table_scans <= basic.stats.table_scans

    def test_same_nodes_checked(self):
        """The optimization changes how roots are fed, not what is checked."""
        problem = patients_problem()
        assert (
            superroots_incognito(problem, 2).stats.nodes_checked
            == basic_incognito(problem, 2).stats.nodes_checked
        )

    def test_algorithm_label(self):
        result = superroots_incognito(patients_problem(), 2)
        assert result.algorithm == "superroots-incognito"
