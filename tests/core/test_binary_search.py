"""Tests for Samarati's binary search (Section 2.2)."""

import pytest

from repro.core.binary_search import samarati_binary_search
from repro.core.incognito import basic_incognito
from repro.datasets.patients import patients_problem
from tests.conftest import make_random_problem


class TestPatientsExample:
    def test_finds_height2_solution(self):
        result = samarati_binary_search(patients_problem(), 2)
        assert result.found
        assert result.anonymous_nodes[0].height == 2

    def test_single_answer_flagged_incomplete(self):
        result = samarati_binary_search(patients_problem(), 2)
        assert not result.complete
        assert len(result.anonymous_nodes) == 1

    def test_probe_trace_recorded(self):
        result = samarati_binary_search(patients_problem(), 2)
        probes = result.details["probes"]
        assert probes, "binary search must record its height probes"
        heights = [height for height, _ in probes]
        assert all(0 <= h <= 4 for h in heights)


class TestAgainstIncognito:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [2, 3])
    def test_height_matches_incognito_minimum(self, seed, k):
        problem = make_random_problem(seed + 600)
        complete = basic_incognito(problem, k)
        single = samarati_binary_search(problem, k)
        if not complete.found:
            assert not single.found
        else:
            expected_height = complete.best_node().height
            assert single.anonymous_nodes[0].height == expected_height
            assert single.anonymous_nodes[0] in complete.anonymous_nodes


class TestEdgeCases:
    def test_k1_returns_bottom(self):
        problem = patients_problem()
        result = samarati_binary_search(problem, 1)
        assert result.anonymous_nodes[0] == problem.bottom_node()

    def test_impossible_k(self):
        result = samarati_binary_search(patients_problem(), 100)
        assert not result.found

    def test_k_equal_rows_finds_full_merge(self):
        result = samarati_binary_search(patients_problem(), 6)
        assert result.found

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            samarati_binary_search(patients_problem(), -1)

    def test_every_check_is_a_scan(self):
        """Binary search has no rollup pathway (Section 2.2)."""
        result = samarati_binary_search(patients_problem(), 2)
        assert result.stats.rollups == 0
        assert result.stats.table_scans == result.stats.nodes_checked

    def test_suppression_threshold_respected(self):
        problem = patients_problem()
        relaxed = samarati_binary_search(problem, 2, max_suppression=2)
        strict = samarati_binary_search(problem, 2)
        assert relaxed.anonymous_nodes[0].height <= strict.anonymous_nodes[0].height
