"""Soundness and completeness (paper Section 3.2), cross-checked exhaustively.

On small random instances, every sound-and-complete algorithm must return
exactly the set of k-anonymous lattice nodes found by brute-force
enumeration; the single-answer algorithms must return members of that set
with the properties they claim.
"""

import pytest

from repro.core.anonymity import compute_frequency_set
from repro.core.binary_search import samarati_binary_search
from repro.core.bottomup import bottom_up_search
from repro.core.cube import cube_incognito
from repro.core.datafly import datafly
from repro.core.incognito import basic_incognito
from repro.core.materialized import materialized_incognito
from repro.core.outofcore import chunked_incognito
from repro.core.superroots import superroots_incognito
from tests.conftest import make_random_problem

COMPLETE_ALGORITHMS = [
    ("basic-incognito", basic_incognito),
    ("superroots-incognito", superroots_incognito),
    ("cube-incognito", cube_incognito),
    ("materialized-incognito", materialized_incognito),
    (
        "chunked-incognito",
        lambda p, k, **kw: chunked_incognito(p, k, chunk_rows=7, **kw),
    ),
    ("bottom-up-rollup", lambda p, k, **kw: bottom_up_search(p, k, rollup=True, **kw)),
    ("bottom-up-scan", lambda p, k, **kw: bottom_up_search(p, k, rollup=False, **kw)),
]


def brute_force(problem, k, max_suppression=0):
    return sorted(
        (
            node
            for node in problem.lattice().nodes()
            if compute_frequency_set(problem, node).is_k_anonymous(
                k, max_suppression
            )
        ),
        key=lambda node: node.sort_key(),
    )


class TestSoundnessAndCompleteness:
    @pytest.mark.parametrize("name,algorithm", COMPLETE_ALGORITHMS)
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_brute_force(self, name, algorithm, seed, k):
        problem = make_random_problem(seed)
        expected = brute_force(problem, k)
        result = algorithm(problem, k)
        assert result.anonymous_nodes == expected, (
            f"{name} seed={seed} k={k}: "
            f"{[str(n) for n in result.anonymous_nodes]} != "
            f"{[str(n) for n in expected]}"
        )

    @pytest.mark.parametrize("name,algorithm", COMPLETE_ALGORITHMS)
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_with_suppression(self, name, algorithm, seed):
        problem = make_random_problem(seed + 100)
        budget = max(1, problem.num_rows // 10)
        expected = brute_force(problem, 2, max_suppression=budget)
        result = algorithm(problem, 2, max_suppression=budget)
        assert result.anonymous_nodes == expected, f"{name} seed={seed}"


class TestBinarySearchAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("k", [2, 3])
    def test_returns_minimal_height_member(self, seed, k):
        problem = make_random_problem(seed)
        expected = brute_force(problem, k)
        result = samarati_binary_search(problem, k)
        if not expected:
            assert not result.found
            return
        assert result.found
        chosen = result.anonymous_nodes[0]
        assert chosen in expected
        assert chosen.height == min(node.height for node in expected)


class TestDataflyAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_returns_anonymous_node_within_threshold(self, seed):
        problem = make_random_problem(seed)
        k = 2
        result = datafly(problem, k)
        assert result.found
        chosen = result.anonymous_nodes[0]
        fs = compute_frequency_set(problem, chosen)
        assert fs.is_k_anonymous(k, result.max_suppression or 0)


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_complete_algorithms_agree(self, seed):
        problem = make_random_problem(seed + 50)
        results = [algo(problem, 2) for _, algo in COMPLETE_ALGORITHMS]
        first = results[0].anonymous_nodes
        for result in results[1:]:
            assert result.anonymous_nodes == first

    @pytest.mark.parametrize("seed", range(8))
    def test_node_counts_incognito_never_exceeds_bottom_up_by_much(self, seed):
        """A-priori pruning: Incognito checks fewer or comparable nodes on
        the *full-QI lattice*; its subset iterations add smaller checks."""
        problem = make_random_problem(seed, num_attributes=3, num_rows=30)
        incognito = basic_incognito(problem, 2)
        bottom_up = bottom_up_search(problem, 2)
        # the final-iteration checks can never exceed bottom-up's checks
        final_size = len(problem.quasi_identifier)
        final_checks = incognito.stats.checks_by_subset_size.get(final_size, 0)
        assert final_checks <= bottom_up.stats.nodes_checked
