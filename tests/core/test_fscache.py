"""Semantics of the cross-algorithm FrequencySetCache."""

from __future__ import annotations

import pytest

from repro.core.anonymity import FrequencyEvaluator, compute_frequency_set
from repro.core.binary_search import samarati_binary_search
from repro.core.bottomup import bottom_up_search
from repro.core.fscache import (
    ENTRY_OVERHEAD_BYTES,
    FrequencySetCache,
    current_cache,
    use_cache,
)
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode
from tests.conftest import make_random_problem, tiny_numeric_problem


def _node(problem, levels) -> LatticeNode:
    return LatticeNode(tuple(problem.quasi_identifier), tuple(levels))


def _fill(cache, problem, *level_vectors):
    sets = []
    for levels in level_vectors:
        fs = compute_frequency_set(problem, _node(problem, levels))
        cache.put(fs)
        sets.append(fs)
    return sets


class TestLookup:
    def test_exact_hit_and_miss(self):
        problem = tiny_numeric_problem()
        cache = FrequencySetCache()
        cache.bind(problem)
        (fs,) = _fill(cache, problem, (1, 0))
        assert cache.get(_node(problem, (1, 0))) is fs
        assert cache.get(_node(problem, (2, 0))) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_ancestor_rollup_vs_exact_hit(self):
        problem = tiny_numeric_problem()
        cache = FrequencySetCache()
        cache.bind(problem)
        zero, mid = _fill(cache, problem, (0, 0), (1, 0))
        # Exact node present -> get() wins, ancestor search not needed.
        assert cache.get(_node(problem, (1, 0))) is mid
        # (1, 1) is cached nowhere; nearest ancestor is the *highest*
        # comparable specialization — (1, 0), not (0, 0).
        assert cache.nearest_ancestor(_node(problem, (1, 1))) is mid
        # A node below everything cached has no ancestor.
        assert cache.nearest_ancestor(_node(problem, (0, 0))) is None
        assert zero.node == _node(problem, (0, 0))

    def test_ancestor_requires_same_attributes(self):
        problem = tiny_numeric_problem()
        cache = FrequencySetCache()
        cache.bind(problem)
        _fill(cache, problem, (0, 0))
        age_only = LatticeNode(("age",), (1,))
        assert cache.nearest_ancestor(age_only) is None


class TestEviction:
    def test_lru_eviction_order(self):
        problem = tiny_numeric_problem()
        sets = [
            compute_frequency_set(problem, _node(problem, levels))
            for levels in ((0, 0), (1, 0), (2, 0), (3, 0))
        ]
        budget = sum(FrequencySetCache.entry_bytes(fs) for fs in sets[:3])
        cache = FrequencySetCache(budget)
        cache.bind(problem)
        for fs in sets[:3]:
            assert cache.put(fs) == 0
        # Refresh the oldest entry, then overflow: the eviction victim must
        # be the least-recently-used entry (sets[1]), not insertion order.
        assert cache.get(sets[0].node) is sets[0]
        evicted = cache.put(sets[3])
        assert evicted >= 1
        assert sets[1].node not in cache
        assert sets[0].node in cache and sets[3].node in cache

    def test_oversized_entry_not_admitted(self):
        problem = tiny_numeric_problem()
        fs = compute_frequency_set(problem, _node(problem, (0, 0)))
        cache = FrequencySetCache(ENTRY_OVERHEAD_BYTES)  # smaller than any set
        cache.bind(problem)
        assert cache.put(fs) == 0
        assert len(cache) == 0 and cache.size_bytes == 0


class TestBinding:
    def test_rebinding_different_problem_clears(self):
        first = make_random_problem(1)
        second = make_random_problem(2)
        cache = FrequencySetCache()
        cache.bind(first)
        cache.put(compute_frequency_set(first, first.bottom_node()))
        assert len(cache) == 1
        cache.bind(second)
        assert len(cache) == 0

    def test_qi_subset_views_share_the_cache(self):
        problem = make_random_problem(3)
        cache = FrequencySetCache()
        cache.bind(problem)
        cache.put(compute_frequency_set(problem, problem.bottom_node()))
        view = problem.with_quasi_identifier(problem.quasi_identifier[:1])
        cache.bind(view)  # same fingerprint: entries survive
        assert len(cache) == 1


class TestEvaluatorAccounting:
    def test_cache_hit_does_not_count_a_table_scan(self):
        problem = tiny_numeric_problem()
        cache = FrequencySetCache()
        stats = SearchStats()
        evaluator = FrequencyEvaluator(problem, stats, cache=cache)
        node = _node(problem, (1, 0))
        evaluator.materialize(node)
        assert stats.table_scans == 1 and stats.cache_misses == 1
        evaluator.materialize(node)
        assert stats.table_scans == 1  # unchanged: served from cache
        assert stats.cache_hits == 1
        assert stats.frequency_evaluations == 1

    def test_ancestor_substitution_counts_rollup_save(self):
        problem = tiny_numeric_problem()
        cache = FrequencySetCache()
        stats = SearchStats()
        evaluator = FrequencyEvaluator(problem, stats, cache=cache)
        evaluator.materialize(_node(problem, (1, 0)))
        evaluator.materialize(_node(problem, (2, 1)))
        # Second call: no exact entry, but (1, 0) is a cached ancestor, so
        # the would-be scan becomes a rollup.
        assert stats.table_scans == 1
        assert stats.rollups == 1
        assert stats.cache_hits == 1 and stats.cache_rollup_saves == 1

    def test_eviction_counted_in_stats(self):
        problem = tiny_numeric_problem()
        sets = [
            compute_frequency_set(problem, _node(problem, levels))
            for levels in ((0, 0), (1, 0))
        ]
        cache = FrequencySetCache(FrequencySetCache.entry_bytes(sets[0]))
        stats = SearchStats()
        evaluator = FrequencyEvaluator(problem, stats, cache=cache)
        evaluator.cache_put(sets[0])
        evaluator.cache_put(sets[1])
        assert stats.cache_evictions == 1


class TestCrossAlgorithmReuse:
    def test_bottom_up_seeds_binary_search(self):
        problem = make_random_problem(9, num_rows=30)
        k = 2
        cold = samarati_binary_search(problem, k)

        cache = FrequencySetCache()
        bottom_up_search(problem, k, cache=cache)
        warm = samarati_binary_search(problem, k, cache=cache)

        assert warm.anonymous_nodes == cold.anonymous_nodes
        assert warm.stats.cache_hits > 0
        assert warm.stats.table_scans < cold.stats.table_scans


class TestRegionDefault:
    def test_use_cache_installs_and_restores(self):
        assert current_cache() is None
        cache = FrequencySetCache()
        with use_cache(cache):
            assert current_cache() is cache
        assert current_cache() is None
