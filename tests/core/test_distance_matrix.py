"""Tests for Samarati's distance-vector matrix (paper §4.1 footnote 2)."""

import pytest

from repro.core.anonymity import compute_frequency_set
from repro.core.binary_search import samarati_binary_search
from repro.core.distance_matrix import DistanceVectorMatrix, matrix_binary_search
from repro.datasets.patients import patients_problem
from repro.lattice.node import LatticeNode
from tests.conftest import make_random_problem

QI = ("Birthdate", "Sex", "Zipcode")


class TestMatrix:
    def test_distinct_tuple_count(self):
        matrix = DistanceVectorMatrix(patients_problem())
        assert matrix.num_tuples == 6

    def test_diagonal_is_zero(self):
        matrix = DistanceVectorMatrix(patients_problem())
        for i in range(matrix.num_tuples):
            assert not matrix.matrix[i, i].any()

    def test_matrix_is_symmetric(self):
        matrix = DistanceVectorMatrix(patients_problem())
        import numpy as np

        assert np.array_equal(
            matrix.matrix, matrix.matrix.transpose(1, 0, 2)
        )

    def test_oracle_matches_groupby_on_every_node(self):
        """The matrix must answer k-anonymity identically to COUNT group-by."""
        problem = patients_problem()
        matrix = DistanceVectorMatrix(problem)
        for node in problem.lattice().nodes():
            for k in (1, 2, 3, 6, 7):
                via_matrix = matrix.is_k_anonymous(node, k)
                via_groupby = compute_frequency_set(problem, node).is_k_anonymous(k)
                assert via_matrix == via_groupby, (str(node), k)

    @pytest.mark.parametrize("seed", range(6))
    def test_oracle_matches_on_random_instances(self, seed):
        problem = make_random_problem(seed + 1_200)
        matrix = DistanceVectorMatrix(problem)
        for node in problem.lattice().nodes():
            assert matrix.is_k_anonymous(node, 2) == compute_frequency_set(
                problem, node
            ).is_k_anonymous(2)

    def test_class_sizes_sum_to_rows_per_tuple(self):
        problem = patients_problem()
        matrix = DistanceVectorMatrix(problem)
        sizes = matrix.class_sizes_at(problem.top_node())
        assert set(sizes.tolist()) == {6}

    def test_empty_table(self):
        problem = patients_problem()
        from repro.core.problem import PreparedTable

        empty = PreparedTable(
            problem.table.take([]),
            {name: problem.hierarchy(name) for name in QI},
            QI,
        )
        matrix = DistanceVectorMatrix(empty)
        assert matrix.num_tuples == 0
        assert matrix.is_k_anonymous(empty.bottom_node(), 5)


class TestMatrixBinarySearch:
    def test_patients(self):
        result = matrix_binary_search(patients_problem(), 2)
        assert result.found
        assert result.anonymous_nodes[0].height == 2
        assert result.details["distinct_tuples"] == 6

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [2, 3])
    def test_agrees_with_groupby_binary_search(self, seed, k):
        problem = make_random_problem(seed + 1_300)
        via_matrix = matrix_binary_search(problem, k)
        via_groupby = samarati_binary_search(problem, k)
        assert via_matrix.found == via_groupby.found
        if via_matrix.found:
            assert (
                via_matrix.anonymous_nodes[0].height
                == via_groupby.anonymous_nodes[0].height
            )

    def test_construction_time_reported(self):
        result = matrix_binary_search(patients_problem(), 2)
        assert result.stats.cube_build_seconds > 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            matrix_binary_search(patients_problem(), 0)
