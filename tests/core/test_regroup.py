"""Tests for the weighted regroup kernel behind rollup/projection."""

import numpy as np

from repro.core.anonymity import _regroup_weighted


def _as_map(keys: np.ndarray, sums: np.ndarray) -> dict:
    return {
        tuple(int(v) for v in keys[g]): int(sums[g])
        for g in range(keys.shape[0])
    }


class TestRegroupWeighted:
    def test_sums_match_python(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 300).astype(np.int32)
        b = rng.integers(0, 3, 300).astype(np.int32)
        weights = rng.integers(1, 9, 300).astype(np.int64)
        keys, sums = _regroup_weighted([a, b], [5, 3], weights)
        expected: dict = {}
        for x, y, w in zip(a.tolist(), b.tolist(), weights.tolist()):
            expected[(x, y)] = expected.get((x, y), 0) + w
        assert _as_map(keys, sums) == expected

    def test_dense_and_sparse_paths_agree(self):
        rng = np.random.default_rng(1)
        arrays = [rng.integers(0, 4, 120).astype(np.int32) for _ in range(3)]
        weights = rng.integers(1, 5, 120).astype(np.int64)
        dense_keys, dense_sums = _regroup_weighted(arrays, [4, 4, 4], weights)
        # Oversized radices force the np.unique(axis=0) fallback.
        big = 2 ** 31
        sparse_keys, sparse_sums = _regroup_weighted(
            arrays, [big, big, big], weights
        )
        assert _as_map(dense_keys, dense_sums) == _as_map(
            sparse_keys, sparse_sums
        )

    def test_empty_input(self):
        keys, sums = _regroup_weighted(
            [np.empty(0, dtype=np.int32)], [3], np.empty(0, dtype=np.int64)
        )
        assert keys.shape == (0, 1)
        assert sums.size == 0

    def test_no_keys_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            _regroup_weighted([], [], np.empty(0))

    def test_total_weight_preserved(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 7, 500).astype(np.int32)
        weights = rng.integers(1, 100, 500).astype(np.int64)
        _, sums = _regroup_weighted([a], [7], weights)
        assert sums.sum() == weights.sum()

    def test_large_counts_exact(self):
        """Counts route through float64 bincount; verify exactness at
        realistic magnitudes (paper: 4.6M rows)."""
        a = np.zeros(10, dtype=np.int32)
        weights = np.full(10, 1_000_000_007, dtype=np.int64)
        _, sums = _regroup_weighted([a], [1], weights)
        assert int(sums[0]) == 10 * 1_000_000_007
