"""Tests for strategic materialization (future work §7)."""

import pytest

from repro.core.anonymity import FrequencyEvaluator
from repro.core.incognito import basic_incognito
from repro.core.materialized import (
    MaterializedCubeProvider,
    materialized_incognito,
    waypoint_inventory,
)
from repro.datasets.patients import patients_problem
from tests.conftest import make_random_problem


class TestProvider:
    def test_zero_set_always_materialized(self):
        problem = patients_problem()
        provider = MaterializedCubeProvider(problem, FrequencyEvaluator(problem))
        for attributes, sets in provider._materialized.items():
            assert sets[-1].node.height == 0  # zero-gen is the fallback

    def test_budget_fraction_validated(self):
        problem = patients_problem()
        with pytest.raises(ValueError):
            MaterializedCubeProvider(
                problem, FrequencyEvaluator(problem), budget_fraction=0
            )
        with pytest.raises(ValueError):
            MaterializedCubeProvider(
                problem, FrequencyEvaluator(problem), budget_fraction=1.5
            )

    def test_waypoints_are_comparable_and_smaller(self):
        problem = patients_problem()
        provider = MaterializedCubeProvider(
            problem, FrequencyEvaluator(problem), budget_fraction=0.9
        )
        for sets in provider._materialized.values():
            zero = sets[-1]
            for waypoint in sets[:-1]:
                assert waypoint.node.generalizes(zero.node)
                assert waypoint.num_groups <= zero.num_groups

    def test_served_sets_match_direct_scans(self):
        from repro.core.anonymity import compute_frequency_set

        problem = patients_problem()
        evaluator = FrequencyEvaluator(problem)
        provider = MaterializedCubeProvider(problem, evaluator)
        for node in problem.lattice().nodes():
            served = provider.frequency_set(evaluator, node)
            direct = compute_frequency_set(problem, node)
            assert served.as_dict() == direct.as_dict(), str(node)

    def test_materialized_counts(self):
        problem = patients_problem()
        provider = MaterializedCubeProvider(problem, FrequencyEvaluator(problem))
        counts = provider.materialized_counts()
        assert len(counts) == 7  # every non-empty QI subset
        assert all(count >= 1 for count in counts.values())


class TestMaterializedIncognito:
    def test_same_answers_as_basic(self):
        problem = patients_problem()
        assert (
            materialized_incognito(problem, 2).anonymous_nodes
            == basic_incognito(problem, 2).anonymous_nodes
        )

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("fraction", [0.1, 0.5, 1.0])
    def test_random_agreement(self, seed, fraction):
        problem = make_random_problem(seed + 1_000)
        assert (
            materialized_incognito(
                problem, 2, budget_fraction=fraction
            ).anonymous_nodes
            == basic_incognito(problem, 2).anonymous_nodes
        )

    def test_single_scan(self):
        result = materialized_incognito(patients_problem(), 2)
        assert result.stats.table_scans == 1

    def test_suppression_threshold(self):
        problem = patients_problem()
        assert (
            materialized_incognito(problem, 2, max_suppression=2).anonymous_nodes
            == basic_incognito(problem, 2, max_suppression=2).anonymous_nodes
        )

    def test_algorithm_label(self):
        result = materialized_incognito(patients_problem(), 2)
        assert result.algorithm == "materialized-incognito"


class TestWaypointInventory:
    def test_reports_all_subsets(self):
        inventory = waypoint_inventory(patients_problem())
        assert len(inventory) == 7
        for waypoints in inventory.values():
            assert waypoints  # at least the zero set
