"""Tests for Basic Incognito beyond the paper's worked example."""

import pytest

from repro.core.incognito import basic_incognito, run_incognito
from repro.datasets.patients import patients_problem
from repro.lattice.node import LatticeNode
from tests.conftest import make_random_problem, tiny_numeric_problem


class TestEdgeCases:
    def test_k1_everything_is_anonymous(self):
        problem = patients_problem()
        result = basic_incognito(problem, 1)
        assert len(result.anonymous_nodes) == problem.lattice().size

    def test_k_above_table_size_no_solutions(self):
        problem = patients_problem()
        result = basic_incognito(problem, 7)
        assert result.anonymous_nodes == []
        assert not result.found

    def test_k_equal_table_size_only_top_region(self):
        problem = patients_problem()
        result = basic_incognito(problem, 6)
        assert problem.top_node() in result.anonymous_nodes
        for node in result.anonymous_nodes:
            # every solution merges all six rows into one class
            assert node.level_of("Birthdate") == 1 or node.level_of("Sex") == 1 \
                or node.level_of("Zipcode") >= 1

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            basic_incognito(patients_problem(), 0)

    def test_single_attribute_qi(self):
        problem = patients_problem().with_quasi_identifier(["Zipcode"])
        result = basic_incognito(problem, 2)
        expected = {
            LatticeNode(("Zipcode",), (0,)),
            LatticeNode(("Zipcode",), (1,)),
            LatticeNode(("Zipcode",), (2,)),
        }
        assert set(result.anonymous_nodes) == expected

    def test_two_attribute_qi(self):
        problem = patients_problem().with_quasi_identifier(["Sex", "Zipcode"])
        result = basic_incognito(problem, 2)
        assert set(result.anonymous_nodes) == {
            LatticeNode(("Sex", "Zipcode"), levels)
            for levels in [(1, 0), (1, 1), (1, 2), (0, 2)]
        }


class TestSuppressionThreshold:
    def test_budget_expands_solution_set(self):
        problem = patients_problem()
        strict = basic_incognito(problem, 2)
        relaxed = basic_incognito(problem, 2, max_suppression=2)
        assert set(strict.anonymous_nodes) <= set(relaxed.anonymous_nodes)
        assert len(relaxed.anonymous_nodes) > len(strict.anonymous_nodes)

    def test_result_records_threshold(self):
        result = basic_incognito(patients_problem(), 2, max_suppression=2)
        assert result.max_suppression == 2


class TestStatsAccounting:
    def test_rollup_plus_scans_equals_evaluations(self):
        result = basic_incognito(patients_problem(), 2)
        stats = result.stats
        assert stats.frequency_evaluations == stats.table_scans + stats.rollups

    def test_checked_at_most_generated(self):
        result = basic_incognito(patients_problem(), 2)
        assert result.stats.nodes_checked <= result.stats.nodes_generated

    def test_elapsed_recorded(self):
        result = basic_incognito(patients_problem(), 2)
        assert result.stats.elapsed_seconds > 0

    def test_checks_by_subset_size_covers_all_sizes(self):
        result = basic_incognito(patients_problem(), 2)
        assert set(result.stats.checks_by_subset_size) == {1, 2, 3}

    def test_marking_reduces_checks(self):
        """The generalization property must spare provably-anonymous nodes."""
        problem = tiny_numeric_problem()
        result = basic_incognito(problem, 2)
        assert result.stats.nodes_checked < result.stats.nodes_generated


class TestDeterminism:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_input_same_output(self, seed):
        problem = make_random_problem(seed)
        first = basic_incognito(problem, 2)
        second = basic_incognito(problem, 2)
        assert first.anonymous_nodes == second.anonymous_nodes
        assert first.stats.nodes_checked == second.stats.nodes_checked

    def test_algorithm_label(self):
        assert basic_incognito(patients_problem(), 2).algorithm == "basic-incognito"

    def test_run_incognito_custom_label(self):
        result = run_incognito(patients_problem(), 2, algorithm="custom")
        assert result.algorithm == "custom"
