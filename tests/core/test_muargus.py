"""Tests for the µ-Argus limited-combination heuristic (paper §6)."""

import pytest

from repro.core.anonymity import check_k_anonymity
from repro.core.muargus import mu_argus
from repro.core.problem import PreparedTable
from repro.datasets.patients import patients_problem
from repro.hierarchy import SuppressionHierarchy
from repro.relational.table import Table
from tests.conftest import make_random_problem


class TestMuArgus:
    def test_checked_combinations_become_safe(self):
        """Every combination up to the limit is k-anonymous afterwards
        (ignoring locally suppressed cells, which only merge groups)."""
        problem = patients_problem()
        result = mu_argus(problem, 2, max_combination_size=2)
        import itertools

        for size in (1, 2):
            for attributes in itertools.combinations(
                problem.quasi_identifier, size
            ):
                assert check_k_anonymity(result.table, attributes, 2), attributes

    def test_full_combination_size_is_sound(self):
        """With the limit raised to the full QI size, the flaw disappears."""
        problem = patients_problem()
        result = mu_argus(problem, 2, max_combination_size=3)
        assert check_k_anonymity(result.table, problem.quasi_identifier, 2)

    def test_unsoundness_is_real(self):
        """The paper's §6 criticism on a concrete instance: pairwise-safe
        but not 2-anonymous over the full 3-attribute quasi-identifier."""
        # Two rows agree pairwise with others but are unique on the triple.
        rows = [
            ("a1", "b1", "c1"),
            ("a1", "b1", "c2"),
            ("a1", "b2", "c1"),
            ("a2", "b1", "c1"),
            ("a2", "b2", "c2"),
            ("a2", "b2", "c1"),
            ("a1", "b2", "c2"),
            ("a2", "b1", "c2"),
        ]
        # duplicate the multiset so every PAIR of attributes is 2-anonymous
        table = Table.from_rows(["A", "B", "C"], rows)
        problem = PreparedTable(
            table,
            {name: SuppressionHierarchy() for name in ("A", "B", "C")},
        )
        result = mu_argus(problem, 2, max_combination_size=2)
        # pairwise checks pass, so µ-Argus changed nothing ...
        assert result.node == problem.bottom_node()
        assert result.suppressed_cells == 0
        # ... yet the full quasi-identifier is NOT 2-anonymous
        assert not check_k_anonymity(result.table, ("A", "B", "C"), 2)

    def test_local_suppression_kicks_in_when_generalization_exhausted(self):
        table = Table.from_rows(
            ["A", "B"],
            [("x", "1"), ("x", "1"), ("y", "2")],
        )
        # Height-1 hierarchies: after full generalization everything merges,
        # so generalization alone suffices here; shrink to a case where one
        # attribute has no hierarchy headroom at all by checking singles only.
        problem = PreparedTable(
            table, {"A": SuppressionHierarchy(), "B": SuppressionHierarchy()}
        )
        result = mu_argus(problem, 2, max_combination_size=2)
        assert check_k_anonymity(result.table, ("A", "B"), 2)

    @pytest.mark.parametrize("seed", range(6))
    def test_checked_sizes_safe_on_random_instances(self, seed):
        problem = make_random_problem(seed + 1_400)
        result = mu_argus(problem, 2, max_combination_size=1)
        for name in problem.quasi_identifier:
            assert check_k_anonymity(result.table, (name,), 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            mu_argus(patients_problem(), 0)
        with pytest.raises(ValueError):
            mu_argus(patients_problem(), 2, max_combination_size=0)

    def test_stats_recorded(self):
        result = mu_argus(patients_problem(), 2)
        assert result.stats.nodes_checked > 0
        assert result.stats.elapsed_seconds > 0
