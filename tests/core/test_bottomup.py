"""Tests for bottom-up breadth-first search (Section 2.2)."""

import pytest

from repro.core.bottomup import bottom_up_search
from repro.datasets.patients import patients_problem
from tests.conftest import make_random_problem


class TestVariantsAgree:
    @pytest.mark.parametrize("seed", range(5))
    def test_rollup_and_scan_variants_identical_answers(self, seed):
        problem = make_random_problem(seed + 500)
        with_rollup = bottom_up_search(problem, 2, rollup=True)
        without = bottom_up_search(problem, 2, rollup=False)
        assert with_rollup.anonymous_nodes == without.anonymous_nodes

    def test_variants_check_same_nodes(self):
        problem = patients_problem()
        with_rollup = bottom_up_search(problem, 2, rollup=True)
        without = bottom_up_search(problem, 2, rollup=False)
        assert with_rollup.stats.nodes_checked == without.stats.nodes_checked


class TestCostProfile:
    def test_rollup_variant_scans_once(self):
        result = bottom_up_search(patients_problem(), 2, rollup=True)
        assert result.stats.table_scans == 1
        assert result.stats.rollups == result.stats.nodes_checked - 1

    def test_scan_variant_scans_per_check(self):
        result = bottom_up_search(patients_problem(), 2, rollup=False)
        assert result.stats.table_scans == result.stats.nodes_checked
        assert result.stats.rollups == 0

    def test_nodes_generated_is_lattice_size(self):
        problem = patients_problem()
        result = bottom_up_search(problem, 2)
        assert result.stats.nodes_generated == problem.lattice().size

    def test_marking_spares_generalizations(self):
        problem = patients_problem()
        result = bottom_up_search(problem, 2)
        assert result.stats.nodes_checked + result.stats.nodes_marked <= (
            problem.lattice().size
        )
        assert result.stats.nodes_marked > 0


class TestBehaviour:
    def test_algorithm_labels(self):
        assert bottom_up_search(patients_problem(), 2).algorithm == "bottom-up-rollup"
        assert (
            bottom_up_search(patients_problem(), 2, rollup=False).algorithm
            == "bottom-up"
        )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            bottom_up_search(patients_problem(), 0)

    def test_suppression_threshold(self):
        problem = patients_problem()
        strict = bottom_up_search(problem, 2)
        relaxed = bottom_up_search(problem, 2, max_suppression=2)
        assert set(strict.anonymous_nodes) < set(relaxed.anonymous_nodes)

    def test_complete_flag(self):
        assert bottom_up_search(patients_problem(), 2).complete
