"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets.patients import patients_table, voter_table
from repro.relational.csvio import read_csv, write_csv


@pytest.fixture
def patients_csv(tmp_path):
    path = tmp_path / "patients.csv"
    write_csv(patients_table(), path)
    return path


@pytest.fixture
def voters_csv(tmp_path):
    path = tmp_path / "voters.csv"
    write_csv(voter_table(), path)
    return path


@pytest.fixture
def spec_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps(
            {
                "Birthdate": {"type": "suppression"},
                "Sex": {"type": "suppression", "suppressed": "Person"},
                "Zipcode": {"type": "rounding", "digits": 5, "height": 2},
            }
        )
    )
    return path


class TestAnonymize:
    def test_writes_anonymous_csv(self, patients_csv, spec_json, tmp_path, capsys):
        out = tmp_path / "released.csv"
        code = main([
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2",
            "--output", str(out),
        ])
        assert code == 0
        released = read_csv(out)
        assert released.num_rows == 6
        from repro.core.anonymity import check_k_anonymity

        assert check_k_anonymity(released, ["Birthdate", "Sex", "Zipcode"], 2)
        assert "selected generalization" in capsys.readouterr().out

    def test_show_all_lists_solutions(self, patients_csv, spec_json, capsys):
        code = main([
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2", "--show-all",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("height") >= 5

    def test_weights_steer_selection(self, patients_csv, spec_json, capsys):
        code = main([
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2", "--weights", "Sex=10",
        ])
        assert code == 0
        assert "Sex=0" in capsys.readouterr().out

    def test_infeasible_k_fails(self, patients_csv, spec_json, capsys):
        code = main([
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "99",
        ])
        assert code == 1
        assert "no 99-anonymous" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "algorithm",
        ["basic", "superroots", "cube", "binary", "bottomup", "datafly"],
    )
    def test_every_algorithm_selectable(
        self, patients_csv, spec_json, algorithm
    ):
        code = main([
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2", "--algorithm", algorithm,
        ])
        assert code == 0

    def test_qi_subset(self, patients_csv, spec_json, capsys):
        code = main([
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2", "--qi", "Sex,Zipcode",
        ])
        assert code == 0


class TestCheck:
    def test_raw_patients_not_anonymous(self, patients_csv, capsys):
        code = main([
            "check", str(patients_csv),
            "--qi", "Birthdate,Sex,Zipcode", "--k", "2",
        ])
        assert code == 1
        assert "2-anonymous: NO" in capsys.readouterr().out

    def test_trivial_k1_passes(self, patients_csv, capsys):
        code = main([
            "check", str(patients_csv),
            "--qi", "Birthdate,Sex,Zipcode", "--k", "1",
        ])
        assert code == 0
        assert "1-anonymous: YES" in capsys.readouterr().out


class TestAttack:
    def test_attack_on_raw_release(self, voters_csv, patients_csv, capsys):
        code = main([
            "attack", str(voters_csv), str(patients_csv),
            "--qi", "Birthdate,Sex,Zipcode",
        ])
        assert code == 1  # someone is uniquely re-identified
        assert "uniquely re-identified" in capsys.readouterr().out

    def test_attack_on_anonymous_release(
        self, voters_csv, patients_csv, spec_json, tmp_path, capsys
    ):
        out = tmp_path / "released.csv"
        main([
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2", "--output", str(out),
        ])
        code = main([
            "attack", str(voters_csv), str(out),
            "--qi", "Birthdate,Sex,Zipcode",
        ])
        assert code == 0  # nobody links uniquely


class TestParsing:
    def test_bad_weights_rejected(self, patients_csv, spec_json):
        with pytest.raises(SystemExit):
            main([
                "anonymize", str(patients_csv),
                "--hierarchies", str(spec_json),
                "--k", "2", "--weights", "oops",
            ])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestObservabilityFlags:
    def test_trace_writes_json_lines(
        self, patients_csv, spec_json, tmp_path, capsys
    ):
        from repro.obs import read_json_lines

        trace = tmp_path / "trace.jsonl"
        code = main([
            "--trace", str(trace),
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2",
            "--output", str(tmp_path / "out.csv"),
        ])
        assert code == 0
        records = read_json_lines(trace.read_text().splitlines())
        names = {record["name"] for record in records}
        assert {"scan", "rollup", "groupby"} <= names

    def test_trace_leaves_global_tracer_disabled(
        self, patients_csv, spec_json, tmp_path
    ):
        from repro import obs

        main([
            "--trace", str(tmp_path / "t.jsonl"),
            "check", str(patients_csv),
            "--qi", "Birthdate,Sex,Zipcode", "--k", "1",
        ])
        assert not obs.enabled()

    def test_profile_prints_hotspots(
        self, patients_csv, spec_json, tmp_path, capsys
    ):
        code = main([
            "--profile",
            "anonymize", str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2",
            "--output", str(tmp_path / "out.csv"),
        ])
        assert code == 0
        assert "function calls" in capsys.readouterr().err
