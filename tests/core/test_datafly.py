"""Tests for the Datafly greedy baseline (Section 6)."""

import pytest

from repro.core.anonymity import check_k_anonymity, compute_frequency_set
from repro.core.datafly import datafly
from repro.datasets.patients import patients_problem
from tests.conftest import make_random_problem


class TestDatafly:
    def test_achieves_k_anonymity_within_threshold(self):
        problem = patients_problem()
        result = datafly(problem, 2)
        node = result.anonymous_nodes[0]
        fs = compute_frequency_set(problem, node)
        assert fs.is_k_anonymous(2, result.max_suppression or 0)

    def test_applied_view_is_anonymous(self):
        problem = patients_problem()
        result = datafly(problem, 2)
        view = result.apply(problem)
        assert check_k_anonymity(
            view.table, problem.quasi_identifier, 2
        )

    def test_greedy_picks_widest_attribute_first(self):
        """Patients: Zipcode has 4 distinct values (vs 3 and 2), so the
        first generalization step must touch Zipcode."""
        result = datafly(patients_problem(), 2)
        trace = result.details["trace"]
        assert len(trace) >= 2
        first, second = trace[0][0], trace[1][0]
        assert first == "<B0, S0, Z0>"
        assert second == "<B0, S0, Z1>"

    def test_single_answer_flag(self):
        result = datafly(patients_problem(), 2)
        assert not result.complete

    def test_default_threshold_is_k(self):
        problem = make_random_problem(7)
        result = datafly(problem, 3)
        assert result.details["suppressed"] <= 3

    def test_custom_threshold(self):
        problem = patients_problem()
        result = datafly(problem, 2, max_suppression=0)
        node = result.anonymous_nodes[0]
        fs = compute_frequency_set(problem, node)
        assert fs.min_count() >= 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            datafly(patients_problem(), 0)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances_terminate_anonymous(self, seed):
        problem = make_random_problem(seed + 700)
        result = datafly(problem, 2)
        assert result.found
        node = result.anonymous_nodes[0]
        fs = compute_frequency_set(problem, node)
        assert fs.is_k_anonymous(2, result.max_suppression or 0)

    def test_no_minimality_guarantee_is_documented_behaviour(self):
        """Datafly may overshoot the minimal height — verify it can."""
        from repro.core.incognito import basic_incognito

        overshoots = 0
        for seed in range(12):
            problem = make_random_problem(seed + 800)
            greedy = datafly(problem, 2, max_suppression=0)
            complete = basic_incognito(problem, 2)
            if not (greedy.found and complete.found):
                continue
            if greedy.anonymous_nodes[0].height > complete.best_node().height:
                overshoots += 1
        assert overshoots > 0, "expected at least one non-minimal greedy result"
