"""SearchStats / CounterSet merging must be associative and commutative.

The parallel evaluator folds per-chunk stats deltas into the run's totals
in submission order; the determinism contract only holds if the fold's
result is independent of grouping and order — integer sums for counters,
maxima for high-water marks.
"""

from __future__ import annotations

import itertools
import pickle
import random

from repro.core.stats import SearchStats
from repro.obs.counters import CounterSet


def _delta(seed: int) -> SearchStats:
    rng = random.Random(seed)
    stats = SearchStats()
    stats.table_scans = rng.randint(0, 50)
    stats.rollups = rng.randint(0, 50)
    stats.rollup_source_rows = rng.randint(0, 10_000)
    stats.frequency_set_rows = rng.randint(0, 10_000)
    stats.peak_frequency_set_rows = rng.randint(1, 5_000)
    stats.record_check(rng.randint(1, 4))
    return stats


def _fold(deltas) -> dict:
    total = SearchStats()
    for delta in deltas:
        total += delta
    return total.as_dict()


def test_merge_is_permutation_invariant():
    deltas = [_delta(seed) for seed in range(4)]
    baseline = _fold(deltas)
    for order in itertools.permutations(range(4)):
        assert _fold(deltas[i] for i in order) == baseline


def test_merge_is_associative():
    a, b, c = (_delta(seed) for seed in (10, 11, 12))
    left = SearchStats()
    left += a
    left += b
    left += c

    bc = SearchStats()
    bc += b
    bc += c
    right = SearchStats()
    right += a
    right += bc

    assert left.as_dict() == right.as_dict()


def test_iadd_merges_sums_and_maxima():
    total = SearchStats(table_scans=2, peak_frequency_set_rows=10)
    delta = SearchStats(table_scans=3, peak_frequency_set_rows=7)
    total += delta
    assert total.table_scans == 5
    assert total.peak_frequency_set_rows == 10  # max, not sum
    result = total.__iadd__(object())
    assert result is NotImplemented


def test_counterset_add_returns_merged_copy():
    left = CounterSet({"a.x": 1})
    left.note_max("a.peak", 5)
    right = CounterSet({"a.x": 2})
    right.note_max("a.peak", 3)
    merged = left + right
    assert merged.get("a.x") == 3 and merged.get("a.peak") == 5
    # operands untouched
    assert left.get("a.x") == 1 and right.get("a.x") == 2


def test_counterset_round_trips_through_pickle():
    """Worker processes ship their deltas back as pickled CounterSets."""
    delta = _delta(99)
    clone = pickle.loads(pickle.dumps(delta.counters))
    assert clone == delta.counters
    # Maxima must survive as maxima: merging the clone twice must not sum.
    total = SearchStats()
    total.counters += clone
    total.counters += clone
    assert total.peak_frequency_set_rows == delta.peak_frequency_set_rows
