"""Tests for out-of-core (chunked) frequency computation (future work §7)."""

import pytest

import numpy as np

from repro.core.anonymity import compute_frequency_set
from repro.core.incognito import basic_incognito
from repro.core.outofcore import (
    MERGE_FAN_IN,
    ChunkedEvaluator,
    chunked_incognito,
    compute_frequency_set_chunked,
    merge_partials,
)
from repro.datasets.adults import adults_problem
from repro.datasets.patients import patients_problem
from tests.conftest import make_random_problem


class TestChunkedScan:
    @pytest.mark.parametrize("chunk_rows", [1, 2, 3, 7, 100])
    def test_matches_in_memory_scan_on_patients(self, chunk_rows):
        problem = patients_problem()
        for node in problem.lattice().nodes():
            chunked = compute_frequency_set_chunked(
                problem, node, chunk_rows=chunk_rows
            )
            direct = compute_frequency_set(problem, node)
            assert chunked.as_dict() == direct.as_dict(), str(node)

    def test_matches_on_larger_data(self):
        problem = adults_problem(3_000, qi_size=4)
        node = problem.bottom_node()
        chunked = compute_frequency_set_chunked(problem, node, chunk_rows=512)
        direct = compute_frequency_set(problem, node)
        assert chunked.as_dict() == direct.as_dict()

    def test_empty_table(self):
        problem = patients_problem()
        empty = problem.table.take([])
        from repro.core.problem import PreparedTable

        empty_problem = PreparedTable(
            empty,
            {name: problem.hierarchy(name) for name in problem.quasi_identifier},
            problem.quasi_identifier,
        )
        fs = compute_frequency_set_chunked(empty_problem, empty_problem.bottom_node())
        assert fs.num_groups == 0

    def test_invalid_chunk_rows(self):
        problem = patients_problem()
        with pytest.raises(ValueError):
            compute_frequency_set_chunked(
                problem, problem.bottom_node(), chunk_rows=0
            )

    def test_incremental_fold_matches_direct_beyond_fan_in(self):
        """Differential for the bounded-merge path: far more chunks than
        MERGE_FAN_IN, so partials are folded incrementally mid-scan."""
        problem = adults_problem(3_000, qi_size=4)
        chunk_rows = 64
        assert (3_000 // chunk_rows) > 2 * MERGE_FAN_IN
        for node in (problem.bottom_node(), problem.top_node()):
            chunked = compute_frequency_set_chunked(
                problem, node, chunk_rows=chunk_rows
            )
            direct = compute_frequency_set(problem, node)
            np.testing.assert_array_equal(chunked.key_codes, direct.key_codes)
            np.testing.assert_array_equal(chunked.counts, direct.counts)


class TestMergePartials:
    def test_overlapping_groups_sum(self):
        keys_a = np.array([[0], [1]])
        keys_b = np.array([[1], [2]])
        merged_keys, merged_counts = merge_partials(
            [keys_a, keys_b],
            [np.array([2, 3]), np.array([4, 5])],
            [3],
        )
        np.testing.assert_array_equal(merged_keys, [[0], [1], [2]])
        np.testing.assert_array_equal(merged_counts, [2, 7, 5])

    def test_fold_order_is_irrelevant(self):
        problem = patients_problem()
        node = problem.bottom_node()
        pieces = [
            compute_frequency_set_chunked(problem, node, chunk_rows=1)
        ]
        direct = compute_frequency_set(problem, node)
        np.testing.assert_array_equal(
            pieces[0].key_codes, direct.key_codes
        )
        np.testing.assert_array_equal(pieces[0].counts, direct.counts)


class TestChunkedEvaluator:
    def test_scan_counted(self):
        problem = patients_problem()
        evaluator = ChunkedEvaluator(problem, chunk_rows=2)
        evaluator.scan(problem.bottom_node())
        assert evaluator.stats.table_scans == 1

    def test_rollup_inherited(self):
        problem = patients_problem()
        evaluator = ChunkedEvaluator(problem, chunk_rows=2)
        base = evaluator.scan(problem.bottom_node())
        rolled = evaluator.rollup(base, problem.top_node())
        assert rolled.total() == 6

    def test_invalid_chunk_rows(self):
        with pytest.raises(ValueError):
            ChunkedEvaluator(patients_problem(), chunk_rows=-1)


class TestChunkedIncognito:
    def test_same_answers_as_basic(self):
        problem = patients_problem()
        assert (
            chunked_incognito(problem, 2, chunk_rows=2).anonymous_nodes
            == basic_incognito(problem, 2).anonymous_nodes
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_agreement(self, seed):
        problem = make_random_problem(seed + 1_100)
        assert (
            chunked_incognito(problem, 2, chunk_rows=5).anonymous_nodes
            == basic_incognito(problem, 2).anonymous_nodes
        )

    def test_algorithm_label(self):
        result = chunked_incognito(patients_problem(), 2)
        assert result.algorithm == "chunked-incognito"
