"""Tests for producing the anonymized view V."""

import pytest

from repro.core.anonymity import check_k_anonymity
from repro.core.generalize import (
    apply_generalization,
    apply_with_star_schema,
    generalize_table,
    suppress_column,
)
from repro.datasets.patients import patients_problem
from repro.lattice.node import LatticeNode

QI = ("Birthdate", "Sex", "Zipcode")


def node(b: int, s: int, z: int) -> LatticeNode:
    return LatticeNode(QI, (b, s, z))


class TestGeneralizeTable:
    def test_zero_node_is_identity(self):
        problem = patients_problem()
        assert generalize_table(problem, node(0, 0, 0)) == problem.table

    def test_replaces_qi_values(self):
        problem = patients_problem()
        view = generalize_table(problem, node(1, 1, 1))
        assert set(view.column("Sex").to_list()) == {"Person"}
        assert set(view.column("Birthdate").to_list()) == {"*"}
        assert set(view.column("Zipcode").to_list()) == {"5371*", "5370*"}

    def test_non_qi_columns_untouched(self):
        problem = patients_problem()
        view = generalize_table(problem, node(1, 1, 2))
        assert view.column("Disease") == problem.table.column("Disease")

    def test_row_count_preserved(self):
        problem = patients_problem()
        assert generalize_table(problem, node(1, 0, 2)).num_rows == 6

    def test_agrees_with_star_schema_on_every_node(self):
        problem = patients_problem()
        for lattice_node in problem.lattice().nodes():
            fast = generalize_table(problem, lattice_node)
            slow = apply_with_star_schema(problem, lattice_node)
            assert fast == slow, str(lattice_node)


class TestApplyGeneralization:
    def test_without_k_never_suppresses(self):
        problem = patients_problem()
        view = apply_generalization(problem, node(0, 0, 0))
        assert view.suppressed_rows == 0
        assert view.num_rows == 6

    def test_anonymous_node_no_suppression(self):
        problem = patients_problem()
        view = apply_generalization(problem, node(1, 1, 0), k=2)
        assert view.suppressed_rows == 0
        assert check_k_anonymity(view.table, QI, 2)

    def test_non_anonymous_node_rejected_without_budget(self):
        problem = patients_problem()
        with pytest.raises(ValueError, match="not 2-anonymous"):
            apply_generalization(problem, node(0, 0, 0), k=2)

    def test_suppression_drops_outlier_rows(self):
        problem = patients_problem()
        # ⟨B0,S1,Z1⟩: groups are (76-era, 5371*) etc.; find a node needing
        # some suppression but within budget.
        view = apply_generalization(
            problem, node(0, 0, 0), k=2, max_suppression=6
        )
        assert view.suppressed_rows == 6
        assert view.num_rows == 0

    def test_partial_suppression(self):
        problem = patients_problem()
        # At ⟨B0, S0, Z2⟩ the groups are (birthdate, sex) pairs:
        # (1/21/76,M):2, (4/13/86,F):2, (2/28/76,M):1, (2/28/76,F):1
        view = apply_generalization(
            problem, node(0, 0, 2), k=2, max_suppression=2
        )
        assert view.suppressed_rows == 2
        assert view.num_rows == 4
        assert check_k_anonymity(view.table, QI, 2)

    def test_view_carries_node(self):
        problem = patients_problem()
        view = apply_generalization(problem, node(1, 1, 2))
        assert view.node == node(1, 1, 2)


class TestSuppressColumn:
    def test_whole_column_masked(self):
        problem = patients_problem()
        table = suppress_column(problem.table, "Sex")
        assert set(table.column("Sex").to_list()) == {"*"}
        assert table.num_rows == 6
