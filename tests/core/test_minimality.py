"""Tests for minimality criteria (Section 2.1)."""

import pytest

from repro.core.minimality import (
    best_node_by_metric,
    minimal_height_nodes,
    pareto_minimal_nodes,
    weighted_minimal_node,
)
from repro.lattice.node import LatticeNode

ATTRS = ("a", "b")


def n(x: int, y: int) -> LatticeNode:
    return LatticeNode(ATTRS, (x, y))


class TestMinimalHeight:
    def test_picks_all_minimum_height(self):
        nodes = [n(2, 0), n(0, 1), n(1, 0), n(1, 1)]
        assert minimal_height_nodes(nodes) == [n(0, 1), n(1, 0)]

    def test_empty(self):
        assert minimal_height_nodes([]) == []

    def test_deterministic_order(self):
        nodes = [n(1, 0), n(0, 1)]
        assert minimal_height_nodes(nodes) == minimal_height_nodes(nodes[::-1])


class TestParetoMinimal:
    def test_dominated_nodes_removed(self):
        nodes = [n(0, 1), n(1, 1), n(1, 2)]
        assert pareto_minimal_nodes(nodes) == [n(0, 1)]

    def test_incomparable_nodes_all_kept(self):
        nodes = [n(0, 2), n(1, 1), n(2, 0)]
        assert pareto_minimal_nodes(nodes) == nodes

    def test_single_node(self):
        assert pareto_minimal_nodes([n(1, 1)]) == [n(1, 1)]

    def test_pareto_subset_of_input(self):
        nodes = [n(0, 0), n(0, 1), n(1, 0), n(1, 1)]
        assert pareto_minimal_nodes(nodes) == [n(0, 0)]


class TestWeightedMinimal:
    def test_weights_steer_choice(self):
        nodes = [n(1, 0), n(0, 1)]
        assert weighted_minimal_node(nodes, {"a": 10.0}) == n(0, 1)
        assert weighted_minimal_node(nodes, {"b": 10.0}) == n(1, 0)

    def test_default_weight_is_one(self):
        nodes = [n(2, 0), n(0, 1)]
        assert weighted_minimal_node(nodes, {}) == n(0, 1)

    def test_tie_breaks_to_lower_height(self):
        nodes = [n(2, 0), n(1, 0)]
        assert weighted_minimal_node(nodes, {"a": 0.0}) == n(1, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_minimal_node([], {})


class TestBestByMetric:
    def test_minimises_by_default(self):
        nodes = [n(0, 1), n(1, 0)]
        best = best_node_by_metric(nodes, lambda node: node.level_of("a"))
        assert best == n(0, 1)

    def test_maximise_option(self):
        nodes = [n(0, 1), n(1, 0)]
        best = best_node_by_metric(
            nodes, lambda node: node.level_of("a"), lower_is_better=False
        )
        assert best == n(1, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_node_by_metric([], lambda node: 0)
