"""Tests for the CLI model subcommand."""

import json

import pytest

from repro.cli import main
from repro.core.anonymity import check_k_anonymity
from repro.datasets.patients import patients_table
from repro.relational.csvio import read_csv, write_csv

QI = "Birthdate,Sex,Zipcode"


@pytest.fixture
def patients_csv(tmp_path):
    path = tmp_path / "patients.csv"
    write_csv(patients_table(), path)
    return path


@pytest.fixture
def spec_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps(
            {
                "Birthdate": {"type": "suppression"},
                "Sex": {"type": "suppression", "suppressed": "Person"},
                "Zipcode": {"type": "rounding", "digits": 5, "height": 2},
            }
        )
    )
    return path


class TestModelSubcommand:
    @pytest.mark.parametrize(
        "model", ["mondrian", "partition-1d", "cell-suppression"]
    )
    def test_partition_and_local_models_without_spec(
        self, patients_csv, tmp_path, model
    ):
        out = tmp_path / "out.csv"
        code = main([
            "model", model, str(patients_csv),
            "--qi", QI, "--k", "2", "--output", str(out),
        ])
        assert code == 0
        released = read_csv(out)
        assert check_k_anonymity(released, QI.split(","), 2)

    @pytest.mark.parametrize(
        "model", ["full-domain", "subtree", "multidim-subgraph", "annealing"]
    )
    def test_hierarchy_models_with_spec(
        self, patients_csv, spec_json, tmp_path, model
    ):
        out = tmp_path / "out.csv"
        code = main([
            "model", model, str(patients_csv),
            "--hierarchies", str(spec_json),
            "--k", "2", "--output", str(out),
        ])
        assert code == 0
        released = read_csv(out)
        assert check_k_anonymity(released, QI.split(","), 2)

    def test_metrics_printed(self, patients_csv, capsys):
        code = main([
            "model", "mondrian", str(patients_csv), "--qi", QI, "--k", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "C_DM=" in out and "C_AVG=" in out

    def test_qi_defaults_to_spec_keys(self, patients_csv, spec_json, capsys):
        code = main([
            "model", "full-domain", str(patients_csv),
            "--hierarchies", str(spec_json), "--k", "2",
        ])
        assert code == 0

    def test_missing_qi_and_spec_rejected(self, patients_csv, capsys):
        code = main([
            "model", "mondrian", str(patients_csv), "--k", "2",
        ])
        assert code == 2
        assert "--qi" in capsys.readouterr().err

    def test_unknown_model_rejected(self, patients_csv):
        with pytest.raises(SystemExit):
            main(["model", "nope", str(patients_csv), "--qi", QI, "--k", "2"])
