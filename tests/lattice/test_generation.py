"""Tests for a-priori graph generation (Section 3.1.2, Figures 5-7)."""

import itertools
import random

from repro.lattice.generation import (
    edge_generation,
    graph_generation,
    initial_graph,
    join_phase,
    prune_phase,
)
from repro.lattice.hashtree import SubsetHashTree
from repro.lattice.node import LatticeNode

PATIENTS_QI = ("Birthdate", "Sex", "Zipcode")
HEIGHTS = {"Birthdate": 1, "Sex": 1, "Zipcode": 2}


def bsz(b: int, s: int, z: int) -> LatticeNode:
    return LatticeNode(PATIENTS_QI, (b, s, z))


class TestInitialGraph:
    def test_c1_node_count(self):
        graph = initial_graph(PATIENTS_QI, HEIGHTS)
        # (1+1) + (1+1) + (2+1) single-attribute nodes
        assert len(graph) == 7

    def test_e1_chain_edges(self):
        graph = initial_graph(PATIENTS_QI, HEIGHTS)
        assert graph.num_edges() == 1 + 1 + 2

    def test_roots_are_level_zero(self):
        graph = initial_graph(PATIENTS_QI, HEIGHTS)
        assert {str(r) for r in graph.roots()} == {"<B0>", "<S0>", "<Z0>"}


class TestJoinPhase:
    def test_pairs_single_attributes(self):
        survivors = [
            LatticeNode(("Sex",), (0,)),
            LatticeNode(("Sex",), (1,)),
            LatticeNode(("Zipcode",), (0,)),
        ]
        triples = join_phase(survivors, PATIENTS_QI)
        candidates = {t[0] for t in triples}
        assert candidates == {
            LatticeNode(("Sex", "Zipcode"), (0, 0)),
            LatticeNode(("Sex", "Zipcode"), (1, 0)),
        }

    def test_respects_dimension_order(self):
        """Pairs are generated once, with dims ordered by the QI order."""
        survivors = [
            LatticeNode(("Zipcode",), (0,)),
            LatticeNode(("Sex",), (0,)),
        ]
        triples = join_phase(survivors, PATIENTS_QI)
        assert len(triples) == 1
        candidate, parent1, parent2 = triples[0]
        assert candidate.attributes == ("Sex", "Zipcode")
        assert parent1.attributes == ("Sex",)
        assert parent2.attributes == ("Zipcode",)

    def test_prefix_must_match_levels(self):
        survivors = [
            LatticeNode(("Sex", "Zipcode"), (0, 0)),
            LatticeNode(("Sex", "Birthdate"), (1, 0)),  # different Sex level
        ]
        # normalised order: (Birthdate, Sex) vs (Sex, Zipcode): prefixes differ
        triples = join_phase(survivors, PATIENTS_QI)
        assert triples == []


class TestPrunePhase:
    def test_drops_candidates_with_missing_subsets(self):
        survivors = [
            LatticeNode(("Sex",), (0,)),
            LatticeNode(("Zipcode",), (0,)),
        ]
        triples = join_phase(survivors, PATIENTS_QI)
        assert len(prune_phase(triples, survivors)) == 1
        # now remove a needed subset: candidate ⟨S0, Z0⟩ requires both parents
        pruned = prune_phase(triples, [LatticeNode(("Sex",), (0,))])
        assert pruned == []


class TestPaperExample:
    """Example 3.2 / Figure 7: the pruned 3-attribute graph for Patients."""

    # Final 2-attribute survivors shown in Figure 5 (a, b, c):
    S2 = [
        # ⟨Sex, Zipcode⟩ searches end with: ⟨S1,Z0⟩,⟨S1,Z1⟩,⟨S1,Z2⟩,⟨S0,Z2⟩
        LatticeNode(("Sex", "Zipcode"), (1, 0)),
        LatticeNode(("Sex", "Zipcode"), (1, 1)),
        LatticeNode(("Sex", "Zipcode"), (1, 2)),
        LatticeNode(("Sex", "Zipcode"), (0, 2)),
        # ⟨Birthdate, Zipcode⟩: ⟨B1,Z0⟩,⟨B1,Z1⟩,⟨B1,Z2⟩,⟨B0,Z2⟩
        LatticeNode(("Birthdate", "Zipcode"), (1, 0)),
        LatticeNode(("Birthdate", "Zipcode"), (1, 1)),
        LatticeNode(("Birthdate", "Zipcode"), (1, 2)),
        LatticeNode(("Birthdate", "Zipcode"), (0, 2)),
        # ⟨Birthdate, Sex⟩: ⟨B1,S0⟩,⟨B0,S1⟩,⟨B1,S1⟩
        LatticeNode(("Birthdate", "Sex"), (1, 0)),
        LatticeNode(("Birthdate", "Sex"), (0, 1)),
        LatticeNode(("Birthdate", "Sex"), (1, 1)),
    ]

    def _generate(self):
        # Build a 2-attribute graph holding S2 with its edges, as the
        # algorithm would have it at the end of iteration 2.
        from repro.lattice.graph import CandidateGraph

        graph = CandidateGraph()
        for node in self.S2:
            graph.add_node(node)
        for a in self.S2:
            for b in self.S2:
                if b.is_direct_generalization_of(a):
                    graph.add_edge(a, b)
        return graph_generation(self.S2, graph, PATIENTS_QI)

    def test_figure7a_nodes(self):
        graph = self._generate()
        expected = {
            bsz(1, 1, 0), bsz(1, 1, 1), bsz(1, 0, 2), bsz(0, 1, 2), bsz(1, 1, 2),
        }
        assert set(graph.nodes) == expected

    def test_figure7a_edges(self):
        graph = self._generate()
        edges = {(str(a), str(b)) for a, b in graph.edges()}
        assert edges == {
            ("<B1, S1, Z0>", "<B1, S1, Z1>"),
            ("<B1, S1, Z1>", "<B1, S1, Z2>"),
            ("<B1, S0, Z2>", "<B1, S1, Z2>"),
            ("<B0, S1, Z2>", "<B1, S1, Z2>"),
        }

    def test_figure7a_roots(self):
        graph = self._generate()
        assert set(graph.roots()) == {bsz(1, 1, 0), bsz(1, 0, 2), bsz(0, 1, 2)}

    def test_much_smaller_than_unpruned_lattice(self):
        """Figure 7(b): the unpruned 3-attribute lattice has 12 nodes."""
        graph = self._generate()
        assert len(graph) == 5 < 12


class TestRandomizedSemantics:
    """graph_generation must equal the subset-property semantics exactly."""

    def test_nodes_and_edges_match_bruteforce(self):
        rng = random.Random(17)
        qi = ("A", "B", "C", "D")
        heights = {"A": 2, "B": 1, "C": 2, "D": 1}
        for _ in range(40):
            graph = initial_graph(qi, heights)
            for size in range(1, 4):
                # Random upward-closed survivor sets per family (mirrors the
                # generalization property's guarantee).
                survivors: set[LatticeNode] = set()
                for family_nodes in graph.families().values():
                    for node in family_nodes:
                        if rng.random() < 0.55:
                            survivors.add(node)
                changed = True
                while changed:
                    changed = False
                    for node in list(survivors):
                        for up in graph.direct_generalizations(node):
                            if up not in survivors:
                                survivors.add(up)
                                changed = True
                ordered = sorted(survivors, key=LatticeNode.sort_key)
                next_graph = graph_generation(ordered, graph, qi)

                tree = SubsetHashTree(ordered)
                expected_nodes = set()
                for attrs in itertools.combinations(qi, size + 1):
                    ranges = [range(heights[a] + 1) for a in attrs]
                    for levels in itertools.product(*ranges):
                        node = LatticeNode(attrs, levels)
                        if tree.contains_all_subsets(node, size):
                            expected_nodes.add(node)
                assert set(next_graph.nodes) == expected_nodes

                expected_edges = {
                    (a, b)
                    for a in expected_nodes
                    for b in expected_nodes
                    if b.is_direct_generalization_of(a)
                }
                assert set(next_graph.edges()) == expected_edges
                graph = next_graph
