"""Tests for the Apriori-style subset hash tree."""

import random

import pytest

from repro.lattice.hashtree import SubsetHashTree, all_subsets_present
from repro.lattice.node import LatticeNode


def node(attrs: str, *levels: int) -> LatticeNode:
    return LatticeNode(tuple(attrs), levels)


class TestMembership:
    def test_contains_added(self):
        tree = SubsetHashTree([node("ab", 0, 1)])
        assert node("ab", 0, 1) in tree
        assert node("ab", 1, 0) not in tree

    def test_order_insensitive(self):
        tree = SubsetHashTree([LatticeNode(("b", "a"), (1, 0))])
        assert LatticeNode(("a", "b"), (0, 1)) in tree

    def test_len_deduplicates(self):
        tree = SubsetHashTree([node("a", 0), node("a", 0)])
        assert len(tree) == 1

    def test_split_on_overflow(self):
        """Many nodes force leaf splits; membership stays exact."""
        nodes = [node("abc", x, y, z) for x in range(4) for y in range(4) for z in range(4)]
        tree = SubsetHashTree(nodes)
        assert len(tree) == 64
        for n in nodes:
            assert n in tree
        assert node("abc", 9, 9, 9) not in tree

    def test_randomized_against_set(self):
        rng = random.Random(5)
        universe = [node("wxyz"[i], l) for i in range(4) for l in range(3)]
        pairs = [
            a.merge(b)
            for i, a in enumerate(universe)
            for b in universe[i + 1:]
            if a.attributes != b.attributes
        ]
        chosen = rng.sample(pairs, 25)
        tree = SubsetHashTree(chosen)
        chosen_set = set(chosen)
        for candidate in pairs:
            assert (candidate in tree) == (candidate in chosen_set)


class TestSubsetPruneCheck:
    def test_all_subsets_present_true(self):
        survivors = [node("a", 0), node("b", 1), node("c", 2)]
        tree = SubsetHashTree(survivors)
        candidate = LatticeNode(("a", "b"), (0, 1))
        assert tree.contains_all_subsets(candidate, 1)

    def test_all_subsets_present_false(self):
        tree = SubsetHashTree([node("a", 0)])
        candidate = LatticeNode(("a", "b"), (0, 1))
        assert not tree.contains_all_subsets(candidate, 1)

    def test_three_attribute_candidate(self):
        survivors = [
            LatticeNode(("a", "b"), (0, 1)),
            LatticeNode(("a", "c"), (0, 2)),
            LatticeNode(("b", "c"), (1, 2)),
        ]
        tree = SubsetHashTree(survivors)
        assert tree.contains_all_subsets(LatticeNode(("a", "b", "c"), (0, 1, 2)), 2)
        assert not tree.contains_all_subsets(
            LatticeNode(("a", "b", "c"), (0, 1, 0)), 2
        )

    def test_size_bounds_rejected(self):
        tree = SubsetHashTree([node("a", 0)])
        with pytest.raises(ValueError):
            tree.contains_all_subsets(node("a", 0), 1)

    def test_wrapper_accepts_sequences(self):
        survivors = [node("a", 0), node("b", 0)]
        assert all_subsets_present(LatticeNode(("a", "b"), (0, 0)), survivors)
