"""Tests for lattice nodes (domain vectors)."""

import pytest

from repro.lattice.node import LatticeNode


def sz(levels: tuple[int, int]) -> LatticeNode:
    return LatticeNode(("Sex", "Zipcode"), levels)


class TestConstruction:
    def test_of_mapping(self):
        node = LatticeNode.of({"Sex": 1, "Zipcode": 0})
        assert node.attributes == ("Sex", "Zipcode")
        assert node.levels == (1, 0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LatticeNode(("a", "b"), (0,))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LatticeNode(("a", "a"), (0, 0))

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            LatticeNode(("a",), (-1,))

    def test_hashable_value_object(self):
        assert sz((1, 0)) == sz((1, 0))
        assert len({sz((1, 0)), sz((1, 0)), sz((0, 1))}) == 2


class TestAccessors:
    def test_height_is_distance_vector_sum(self):
        """Figure 3: the height of ⟨S1, Z1⟩ is 2."""
        assert sz((1, 1)).height == 2

    def test_size(self):
        assert sz((0, 0)).size == 2

    def test_level_of(self):
        assert sz((1, 2)).level_of("Zipcode") == 2

    def test_level_of_missing(self):
        with pytest.raises(KeyError):
            sz((1, 2)).level_of("Age")

    def test_str_is_paper_notation(self):
        assert str(sz((1, 2))) == "<S1, Z2>"

    def test_label(self):
        assert sz((1, 0)).label() == "Sex=1, Zipcode=0"

    def test_as_dict(self):
        assert sz((1, 2)).as_dict() == {"Sex": 1, "Zipcode": 2}


class TestRelations:
    def test_distance_vector(self):
        assert sz((0, 0)).distance_vector(sz((1, 2))) == (1, 2)

    def test_distance_vector_not_comparable(self):
        with pytest.raises(ValueError, match="not a generalization"):
            sz((1, 0)).distance_vector(sz((0, 2)))

    def test_distance_vector_attribute_mismatch(self):
        with pytest.raises(ValueError, match="matching attributes"):
            sz((0, 0)).distance_vector(LatticeNode(("Sex",), (1,)))

    def test_generalizes_reflexive(self):
        assert sz((1, 1)).generalizes(sz((1, 1)))

    def test_generalizes_implied(self):
        """⟨S0, Z2⟩ is an implied generalization of ⟨S0, Z0⟩ (Figure 3)."""
        assert sz((0, 2)).generalizes(sz((0, 0)))

    def test_generalizes_false_when_incomparable(self):
        assert not sz((1, 0)).generalizes(sz((0, 1)))

    def test_direct_generalization(self):
        """⟨S0, Z2⟩ is a direct generalization of ⟨S0, Z1⟩."""
        assert sz((0, 2)).is_direct_generalization_of(sz((0, 1)))

    def test_implied_is_not_direct(self):
        assert not sz((0, 2)).is_direct_generalization_of(sz((0, 0)))

    def test_direct_requires_same_attributes(self):
        assert not LatticeNode(("Sex",), (1,)).is_direct_generalization_of(
            sz((0, 0))
        )


class TestDerivation:
    def test_with_level(self):
        assert sz((0, 0)).with_level("Zipcode", 2) == sz((0, 2))

    def test_subset(self):
        node = LatticeNode(("a", "b", "c"), (1, 2, 3))
        assert node.subset(["c", "a"]) == LatticeNode(("c", "a"), (3, 1))

    def test_drop(self):
        node = LatticeNode(("a", "b", "c"), (1, 2, 3))
        assert node.drop("b") == LatticeNode(("a", "c"), (1, 3))

    def test_merge_disjoint(self):
        merged = LatticeNode(("a",), (1,)).merge(LatticeNode(("b",), (2,)))
        assert merged == LatticeNode(("a", "b"), (1, 2))

    def test_merge_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            LatticeNode(("a",), (1,)).merge(LatticeNode(("a",), (2,)))

    def test_sort_key_orders_by_height_first(self):
        nodes = [sz((1, 1)), sz((0, 0)), sz((0, 1))]
        ordered = sorted(nodes, key=LatticeNode.sort_key)
        assert [n.height for n in ordered] == [0, 1, 2]
