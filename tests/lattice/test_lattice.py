"""Tests for the full generalization lattice (Figure 3)."""

import pytest

from repro.lattice.lattice import GeneralizationLattice
from repro.lattice.node import LatticeNode


def figure3() -> GeneralizationLattice:
    """The Sex × Zipcode lattice of the paper's Figure 3(a)."""
    return GeneralizationLattice(("Sex", "Zipcode"), (1, 2))


class TestStructure:
    def test_size_matches_figure3(self):
        assert figure3().size == 6

    def test_bottom_and_top(self):
        lattice = figure3()
        assert lattice.bottom == LatticeNode(("Sex", "Zipcode"), (0, 0))
        assert lattice.top == LatticeNode(("Sex", "Zipcode"), (1, 2))

    def test_max_height(self):
        assert figure3().max_height == 3

    def test_nodes_enumerates_all(self):
        nodes = list(figure3().nodes())
        assert len(nodes) == 6
        assert len(set(nodes)) == 6

    def test_contains(self):
        lattice = figure3()
        assert LatticeNode(("Sex", "Zipcode"), (1, 1)) in lattice
        assert LatticeNode(("Sex", "Zipcode"), (2, 0)) not in lattice
        assert LatticeNode(("Sex",), (0,)) not in lattice

    def test_heights_mapping_constructor(self):
        lattice = GeneralizationLattice(("a", "b"), {"a": 1, "b": 2})
        assert lattice.heights == (1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneralizationLattice((), ())
        with pytest.raises(ValueError):
            GeneralizationLattice(("a",), (1, 2))
        with pytest.raises(ValueError):
            GeneralizationLattice(("a",), (-1,))


class TestEdges:
    def test_successors_of_bottom(self):
        """Figure 3(a): ⟨S0, Z0⟩ has direct generalizations ⟨S1, Z0⟩, ⟨S0, Z1⟩."""
        lattice = figure3()
        successors = set(lattice.successors(lattice.bottom))
        assert successors == {
            LatticeNode(("Sex", "Zipcode"), (1, 0)),
            LatticeNode(("Sex", "Zipcode"), (0, 1)),
        }

    def test_top_has_no_successors(self):
        lattice = figure3()
        assert lattice.successors(lattice.top) == []

    def test_predecessors_inverse_of_successors(self):
        lattice = figure3()
        for node in lattice.nodes():
            for successor in lattice.successors(node):
                assert node in lattice.predecessors(successor)

    def test_edge_count(self):
        # Figure 3(a) draws 7 edges.
        assert sum(1 for _ in figure3().edges()) == 7

    def test_successor_of_foreign_node_rejected(self):
        with pytest.raises(ValueError):
            figure3().successors(LatticeNode(("Sex",), (0,)))


class TestTraversal:
    def test_nodes_at_height(self):
        lattice = figure3()
        assert {n.levels for n in lattice.nodes_at_height(1)} == {(1, 0), (0, 1)}
        assert {n.levels for n in lattice.nodes_at_height(2)} == {(1, 1), (0, 2)}

    def test_breadth_first_non_decreasing(self):
        heights = [node.height for node in figure3().breadth_first()]
        assert heights == sorted(heights)

    def test_generalizations_of(self):
        lattice = figure3()
        node = LatticeNode(("Sex", "Zipcode"), (0, 1))
        gens = set(lattice.generalizations_of(node))
        assert gens == {
            LatticeNode(("Sex", "Zipcode"), (1, 1)),
            LatticeNode(("Sex", "Zipcode"), (0, 2)),
            LatticeNode(("Sex", "Zipcode"), (1, 2)),
        }

    def test_generalizations_of_top_is_empty(self):
        lattice = figure3()
        assert list(lattice.generalizations_of(lattice.top)) == []


class TestMeetJoin:
    def test_meet_is_componentwise_min(self):
        lattice = figure3()
        a = LatticeNode(("Sex", "Zipcode"), (1, 0))
        b = LatticeNode(("Sex", "Zipcode"), (0, 2))
        assert lattice.meet([a, b]) == lattice.bottom

    def test_join_is_componentwise_max(self):
        lattice = figure3()
        a = LatticeNode(("Sex", "Zipcode"), (1, 0))
        b = LatticeNode(("Sex", "Zipcode"), (0, 2))
        assert lattice.join([a, b]) == lattice.top

    def test_meet_empty_rejected(self):
        with pytest.raises(ValueError):
            figure3().meet([])

    def test_paper_superroot_example(self):
        """Section 3.3.1: the meet of the three Figure 7(a) roots is ⟨B0,S0,Z0⟩."""
        lattice = GeneralizationLattice(("B", "S", "Z"), (1, 1, 2))
        roots = [
            LatticeNode(("B", "S", "Z"), (1, 1, 0)),
            LatticeNode(("B", "S", "Z"), (1, 0, 2)),
            LatticeNode(("B", "S", "Z"), (0, 1, 2)),
        ]
        assert lattice.meet(roots) == lattice.bottom
