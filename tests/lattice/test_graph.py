"""Tests for candidate graphs and their relational export (Figure 6)."""

import pytest

from repro.lattice.graph import CandidateGraph, subset_lattice_sizes
from repro.lattice.lattice import GeneralizationLattice
from repro.lattice.node import LatticeNode


def sz(levels) -> LatticeNode:
    return LatticeNode(("Sex", "Zipcode"), levels)


def figure3_graph() -> CandidateGraph:
    return CandidateGraph.from_lattice(
        GeneralizationLattice(("Sex", "Zipcode"), (1, 2))
    )


class TestBasics:
    def test_ids_start_at_one(self):
        graph = CandidateGraph()
        assert graph.add_node(sz((0, 0))) == 1
        assert graph.add_node(sz((1, 0))) == 2

    def test_add_node_idempotent(self):
        graph = CandidateGraph()
        first = graph.add_node(sz((0, 0)))
        second = graph.add_node(sz((0, 0)))
        assert first == second
        assert len(graph) == 1

    def test_id_round_trip(self):
        graph = figure3_graph()
        for node in graph.nodes:
            assert graph.node_of(graph.id_of(node)) == node

    def test_id_of_missing(self):
        with pytest.raises(KeyError):
            CandidateGraph().id_of(sz((0, 0)))

    def test_contains(self):
        graph = figure3_graph()
        assert sz((1, 2)) in graph
        assert LatticeNode(("Sex",), (0,)) not in graph

    def test_parents_recorded(self):
        graph = CandidateGraph()
        graph.add_node(sz((0, 0)), parents=(3, 7))
        assert graph.parents_of(sz((0, 0))) == (3, 7)
        assert graph.parents_of(1) == (3, 7)


class TestEdges:
    def test_add_edge_deduplicates(self):
        graph = CandidateGraph()
        graph.add_node(sz((0, 0)))
        graph.add_node(sz((1, 0)))
        graph.add_edge(sz((0, 0)), sz((1, 0)))
        graph.add_edge(sz((0, 0)), sz((1, 0)))
        assert graph.num_edges() == 1

    def test_direct_generalizations(self):
        graph = figure3_graph()
        gens = set(graph.direct_generalizations(sz((0, 0))))
        assert gens == {sz((1, 0)), sz((0, 1))}

    def test_direct_specializations(self):
        graph = figure3_graph()
        specs = set(graph.direct_specializations(sz((1, 2))))
        assert specs == {sz((0, 2)), sz((1, 1))}

    def test_roots_of_full_lattice_is_bottom(self):
        graph = figure3_graph()
        assert graph.roots() == [sz((0, 0))]

    def test_roots_of_fragmented_graph(self):
        graph = CandidateGraph()
        graph.add_node(sz((1, 0)))
        graph.add_node(sz((0, 2)))
        graph.add_node(sz((1, 2)))
        graph.add_edge(sz((1, 0)), sz((1, 2)))
        graph.add_edge(sz((0, 2)), sz((1, 2)))
        assert set(graph.roots()) == {sz((1, 0)), sz((0, 2))}

    def test_generalizations_closure(self):
        graph = figure3_graph()
        closure = set(graph.generalizations_closure(sz((0, 1))))
        assert closure == {sz((1, 1)), sz((0, 2)), sz((1, 2))}


class TestFamilies:
    def test_single_family(self):
        graph = figure3_graph()
        families = graph.families()
        assert list(families) == [("Sex", "Zipcode")]
        assert len(families[("Sex", "Zipcode")]) == 6

    def test_mixed_families(self):
        graph = CandidateGraph()
        graph.add_node(LatticeNode(("a",), (0,)))
        graph.add_node(LatticeNode(("b",), (0,)))
        graph.add_node(LatticeNode(("b",), (1,)))
        sizes = subset_lattice_sizes(graph)
        assert sizes == {("a",): 1, ("b",): 2}


class TestRelationalExport:
    def test_figure6_nodes_relation(self):
        """Figure 6: six nodes, columns ID, dim1, index1, dim2, index2."""
        nodes_table, _ = figure3_graph().to_tables()
        assert nodes_table.schema.names == (
            "ID", "dim1", "index1", "dim2", "index2",
        )
        assert nodes_table.num_rows == 6
        first = nodes_table.row(0)
        assert first == (1, "Sex", 0, "Zipcode", 0)

    def test_figure6_edges_relation(self):
        _, edges_table = figure3_graph().to_tables()
        assert edges_table.schema.names == ("start", "end")
        assert edges_table.num_rows == 7
        edge_pairs = set(edges_table.iter_rows())
        # spot-check Figure 6's listed edges via node ids
        graph = figure3_graph()
        assert (
            graph.id_of(sz((0, 0))), graph.id_of(sz((1, 0)))
        ) in edge_pairs

    def test_empty_graph_exports_empty_tables(self):
        nodes_table, edges_table = CandidateGraph().to_tables()
        assert nodes_table.num_rows == 0
        assert edges_table.num_rows == 0

    def test_mixed_sizes_rejected(self):
        graph = CandidateGraph()
        graph.add_node(LatticeNode(("a",), (0,)))
        graph.add_node(LatticeNode(("a", "b"), (0, 0)))
        with pytest.raises(ValueError, match="mixed"):
            graph.to_tables()
