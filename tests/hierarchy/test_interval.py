"""Tests for numeric range hierarchies."""

import pytest

from repro.hierarchy.base import HierarchyError
from repro.hierarchy.interval import RangeHierarchy


def age() -> RangeHierarchy:
    return RangeHierarchy([5, 10, 20])


class TestHeights:
    def test_height_includes_suppression(self):
        assert age().height == 4

    def test_height_without_suppression(self):
        assert RangeHierarchy([5, 10], suppress_top=False).height == 2


class TestGeneralize:
    def test_level0_identity(self):
        assert age().generalize(23, 0) == 23

    def test_five_year_buckets(self):
        assert age().generalize(23, 1) == "[20-25)"
        assert age().generalize(25, 1) == "[25-30)"

    def test_ten_year_buckets(self):
        assert age().generalize(23, 2) == "[20-30)"

    def test_twenty_year_buckets(self):
        assert age().generalize(23, 3) == "[20-40)"

    def test_suppression_top(self):
        assert age().generalize(23, 4) == "*"

    def test_origin_shifts_buckets(self):
        hierarchy = RangeHierarchy([5], origin=3, suppress_top=False)
        assert hierarchy.generalize(3, 1) == "[3-8)"
        assert hierarchy.generalize(2, 1) == "[-2-3)"

    def test_nested_buckets_merge_exactly(self):
        """Every 10-year bucket is the union of exactly two 5-year buckets."""
        hierarchy = age()
        for value in range(0, 60):
            five = hierarchy.generalize(value, 1)
            ten = hierarchy.generalize(value, 2)
            partner = value + 5 if (value // 5) % 2 == 0 else value - 5
            assert hierarchy.generalize(partner, 2) == ten
            assert hierarchy.generalize(partner, 1) != five

    def test_non_numeric_rejected(self):
        with pytest.raises(HierarchyError, match="numeric"):
            age().generalize("abc", 1)

    def test_floats_bucketed_by_floor(self):
        assert age().generalize(24.9, 1) == "[20-25)"


class TestValidation:
    def test_empty_widths_rejected(self):
        with pytest.raises(HierarchyError):
            RangeHierarchy([])

    def test_negative_width_rejected(self):
        with pytest.raises(HierarchyError, match="positive"):
            RangeHierarchy([-5])

    def test_non_dividing_widths_rejected(self):
        with pytest.raises(HierarchyError, match="evenly"):
            RangeHierarchy([5, 12])

    def test_compiles_consistently(self):
        compiled = age().compile(list(range(17, 91)))
        compiled.validate()
        assert compiled.cardinality(4) == 1
