"""Tests for dimension-table materialisation (Figure 4)."""

import pytest

from repro.hierarchy.dimension import dimension_table
from repro.hierarchy.rounding import RoundingHierarchy
from repro.hierarchy.suppression import SuppressionHierarchy


class TestDimensionTable:
    def test_column_names(self):
        table = dimension_table("Sex", SuppressionHierarchy("Person"), ["Male", "Female"])
        assert table.schema.names == ("Sex_0", "Sex_1")

    def test_one_row_per_base_value(self):
        table = dimension_table(
            "Zip", RoundingHierarchy(5, height=2), ["53715", "53703"]
        )
        assert table.num_rows == 2

    def test_row_contents_follow_hierarchy(self):
        table = dimension_table(
            "Zip", RoundingHierarchy(5, height=2), ["53715", "53703"]
        )
        assert table.to_rows() == [
            ("53715", "5371*", "537**"),
            ("53703", "5370*", "537**"),
        ]

    def test_accepts_precompiled(self):
        compiled = SuppressionHierarchy().compile(["a", "b"])
        table = dimension_table("A", compiled)
        assert table.to_rows() == [("a", "*"), ("b", "*")]

    def test_uncompiled_requires_base_values(self):
        with pytest.raises(ValueError, match="base_values"):
            dimension_table("A", SuppressionHierarchy())
