"""Tests for taxonomy-tree hierarchies."""

import pytest

from repro.hierarchy.base import HierarchyError
from repro.hierarchy.taxonomy import TaxonomyHierarchy


def marital() -> TaxonomyHierarchy:
    return TaxonomyHierarchy.grouped(
        {
            "Married": ["Married-civ", "Married-AF"],
            "Alone": ["Divorced", "Widowed", "Never-married"],
        }
    )


class TestGrouped:
    def test_height_two(self):
        assert marital().height == 2

    def test_level1_groups(self):
        assert marital().generalize("Divorced", 1) == "Alone"
        assert marital().generalize("Married-AF", 1) == "Married"

    def test_level2_root(self):
        assert marital().generalize("Divorced", 2) == "*"

    def test_level0_identity(self):
        assert marital().generalize("Widowed", 0) == "Widowed"

    def test_leaves(self):
        assert set(marital().leaves) == {
            "Married-civ", "Married-AF", "Divorced", "Widowed", "Never-married",
        }

    def test_unknown_leaf_raises(self):
        with pytest.raises(HierarchyError, match="not a leaf"):
            marital().generalize("Single", 1)


class TestNestedTree:
    def test_three_level_tree(self):
        tree = {
            "*": {
                "low": {"a": {}, "b": {}},
                "high": {"c": {}},
            }
        }
        hierarchy = TaxonomyHierarchy(tree)
        assert hierarchy.height == 2
        assert hierarchy.generalize("a", 1) == "low"
        assert hierarchy.generalize("c", 2) == "*"

    def test_uneven_depth_pads_with_top(self):
        tree = {
            "*": {
                "deep": {"mid": {"leaf1": {}}},
                "leaf2": {},
            }
        }
        hierarchy = TaxonomyHierarchy(tree)
        assert hierarchy.height == 3
        assert hierarchy.generalize("leaf1", 1) == "mid"
        assert hierarchy.generalize("leaf1", 3) == "*"
        # the shallow leaf reaches the root early and stays there
        assert hierarchy.generalize("leaf2", 1) == "*"
        assert hierarchy.generalize("leaf2", 3) == "*"

    def test_explicit_height_extends(self):
        hierarchy = TaxonomyHierarchy({"*": {"a": {}, "b": {}}}, height=3)
        assert hierarchy.height == 3
        assert hierarchy.generalize("a", 3) == "*"

    def test_explicit_height_too_small_rejected(self):
        tree = {"*": {"g": {"a": {}}}}
        with pytest.raises(HierarchyError, match="below"):
            TaxonomyHierarchy(tree, height=1)

    def test_multiple_roots_rejected(self):
        with pytest.raises(HierarchyError, match="root"):
            TaxonomyHierarchy({"r1": {"a": {}}, "r2": {"b": {}}})

    def test_duplicate_leaf_rejected(self):
        tree = {"*": {"g1": {"x": {}}, "g2": {"x": {}}}}
        with pytest.raises(HierarchyError, match="duplicate"):
            TaxonomyHierarchy(tree)

    def test_no_leaves_rejected(self):
        with pytest.raises(HierarchyError):
            TaxonomyHierarchy({})


class TestFromParentMap:
    def test_builds_equivalent_tree(self):
        parents = {"a": "g", "b": "g", "g": "*", "c": "*"}
        hierarchy = TaxonomyHierarchy.from_parent_map(parents)
        assert hierarchy.generalize("a", 1) == "g"
        assert hierarchy.generalize("a", 2) == "*"

    def test_two_roots_rejected(self):
        with pytest.raises(HierarchyError, match="one root"):
            TaxonomyHierarchy.from_parent_map({"a": "r1", "b": "r2"})


class TestCompileIntegration:
    def test_compiles_over_subset_of_leaves(self):
        compiled = marital().compile(["Divorced", "Married-civ"])
        assert compiled.cardinality(1) == 2
        assert compiled.cardinality(2) == 1

    def test_compile_unknown_value_fails(self):
        with pytest.raises(HierarchyError):
            marital().compile(["NotALeaf"])
