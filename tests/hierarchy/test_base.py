"""Tests for hierarchy compilation and the CompiledHierarchy invariants."""

import numpy as np
import pytest

from repro.hierarchy.base import CompiledHierarchy, Hierarchy, HierarchyError
from repro.hierarchy.rounding import RoundingHierarchy
from repro.hierarchy.suppression import SuppressionHierarchy


class InconsistentHierarchy(Hierarchy):
    """Deliberately broken: a level-1 group splits again at level 2."""

    @property
    def height(self) -> int:
        return 2

    def generalize(self, value, level):
        if level == 0:
            return value
        if level == 1:
            return "g"  # everything merges ...
        return value  # ... then splits back apart: invalid


class TestCompile:
    def test_level0_is_identity(self):
        compiled = SuppressionHierarchy().compile(["a", "b"])
        assert compiled.level_values(0) == ["a", "b"]
        assert list(compiled.level_lookup(0)) == [0, 1]

    def test_top_level_merges_all(self):
        compiled = SuppressionHierarchy().compile(["a", "b", "c"])
        assert compiled.cardinality(1) == 1
        assert compiled.level_values(1) == ["*"]

    def test_inconsistent_hierarchy_rejected(self):
        with pytest.raises(HierarchyError, match="splits"):
            InconsistentHierarchy().compile(["a", "b"])

    def test_num_levels(self):
        compiled = RoundingHierarchy(3).compile(["123", "456"])
        assert compiled.num_levels == 4
        assert compiled.height == 3

    def test_base_size(self):
        compiled = SuppressionHierarchy().compile(["a", "b", "c"])
        assert compiled.base_size == 3


class TestGeneralizeCodes:
    def test_vectorised_matches_scalar(self):
        hierarchy = RoundingHierarchy(3)
        base = ["123", "129", "456"]
        compiled = hierarchy.compile(base)
        codes = np.array([0, 1, 2, 0])
        generalized = compiled.generalize_codes(codes, 1)
        values = [compiled.level_values(1)[c] for c in generalized]
        assert values == ["12*", "12*", "45*", "12*"]


class TestMappingBetween:
    def test_identity_when_same_level(self):
        compiled = RoundingHierarchy(3).compile(["123", "456"])
        mapping = compiled.mapping_between(1, 1)
        assert list(mapping) == [0, 1]

    def test_multi_level_jump_composes(self):
        base = ["111", "112", "121", "211"]
        compiled = RoundingHierarchy(3).compile(base)
        direct = compiled.mapping_between(0, 2)
        via_one = compiled.mapping_between(1, 2)[compiled.mapping_between(0, 1)]
        assert list(direct) == list(via_one)

    def test_downward_rejected(self):
        compiled = RoundingHierarchy(3).compile(["123"])
        with pytest.raises(HierarchyError, match="down"):
            compiled.mapping_between(2, 1)

    def test_cached(self):
        compiled = RoundingHierarchy(3).compile(["123", "456"])
        assert compiled.mapping_between(0, 1) is compiled.mapping_between(0, 1)


class TestValidate:
    def test_valid_passes(self):
        RoundingHierarchy(2).compile(["12", "34"]).validate()

    def test_tampered_level0_detected(self):
        compiled = RoundingHierarchy(2).compile(["12", "34"])
        compiled._lookups[0] = np.array([1, 0], dtype=np.int32)
        with pytest.raises(HierarchyError, match="identity"):
            compiled.validate()

    def test_code_out_of_range_detected(self):
        compiled = SuppressionHierarchy().compile(["a", "b"])
        compiled._lookups[1] = np.array([0, 7], dtype=np.int32)
        with pytest.raises(HierarchyError, match="out of range"):
            compiled.validate()


class TestChain:
    def test_chain_returns_all_levels(self):
        hierarchy = RoundingHierarchy(3)
        assert hierarchy.chain("537") == ["537", "53*", "5**", "***"]

    def test_check_level_bounds(self):
        with pytest.raises(HierarchyError, match="out of range"):
            SuppressionHierarchy().generalize("a", 2)
        with pytest.raises(HierarchyError):
            SuppressionHierarchy().generalize("a", -1)

    def test_repr_mentions_cardinalities(self):
        compiled = SuppressionHierarchy().compile(["a", "b"])
        assert "cardinalities=[2, 1]" in repr(compiled)
