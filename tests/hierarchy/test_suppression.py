"""Tests for suppression hierarchies (Figure 2e/f)."""

from repro.hierarchy.suppression import SuppressionHierarchy


class TestSuppressionHierarchy:
    def test_height_is_one(self):
        assert SuppressionHierarchy().height == 1

    def test_paper_sex_example(self):
        """Figure 2(f): Male/Female generalize to Person."""
        hierarchy = SuppressionHierarchy("Person")
        assert hierarchy.generalize("Male", 1) == "Person"
        assert hierarchy.generalize("Female", 1) == "Person"

    def test_level0_identity(self):
        assert SuppressionHierarchy().generalize("Male", 0) == "Male"

    def test_default_token(self):
        assert SuppressionHierarchy().generalize("x", 1) == "*"

    def test_suppressed_property(self):
        assert SuppressionHierarchy("Person").suppressed == "Person"

    def test_compiles_to_single_top_value(self):
        compiled = SuppressionHierarchy().compile(["a", "b", "c"])
        assert compiled.cardinality(0) == 3
        assert compiled.cardinality(1) == 1
