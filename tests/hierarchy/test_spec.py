"""Tests for hierarchy spec (de)serialization."""

import pytest

from repro.hierarchy import (
    DateHierarchy,
    RangeHierarchy,
    RoundingHierarchy,
    SuppressionHierarchy,
    TaxonomyHierarchy,
)
from repro.hierarchy.base import HierarchyError
from repro.hierarchy.spec import (
    hierarchies_from_spec,
    hierarchy_from_spec,
    hierarchy_to_spec,
)


class TestFromSpec:
    def test_suppression(self):
        hierarchy = hierarchy_from_spec({"type": "suppression", "suppressed": "X"})
        assert isinstance(hierarchy, SuppressionHierarchy)
        assert hierarchy.generalize("a", 1) == "X"

    def test_rounding(self):
        hierarchy = hierarchy_from_spec({"type": "rounding", "digits": 5, "height": 2})
        assert isinstance(hierarchy, RoundingHierarchy)
        assert hierarchy.height == 2
        assert hierarchy.generalize("53715", 1) == "5371*"

    def test_range(self):
        hierarchy = hierarchy_from_spec(
            {"type": "range", "widths": [5, 10], "suppress_top": False}
        )
        assert isinstance(hierarchy, RangeHierarchy)
        assert hierarchy.height == 2

    def test_date(self):
        hierarchy = hierarchy_from_spec({"type": "date"})
        assert isinstance(hierarchy, DateHierarchy)

    def test_taxonomy_tree(self):
        hierarchy = hierarchy_from_spec(
            {"type": "taxonomy", "tree": {"*": {"g": {"a": {}, "b": {}}}}}
        )
        assert isinstance(hierarchy, TaxonomyHierarchy)
        assert hierarchy.generalize("a", 1) == "g"

    def test_taxonomy_groups(self):
        hierarchy = hierarchy_from_spec(
            {"type": "taxonomy", "groups": {"g": ["a", "b"]}, "root": "TOP"}
        )
        assert hierarchy.generalize("a", 2) == "TOP"

    def test_missing_type(self):
        with pytest.raises(HierarchyError, match="type"):
            hierarchy_from_spec({})

    def test_unknown_type(self):
        with pytest.raises(HierarchyError, match="unknown"):
            hierarchy_from_spec({"type": "magic"})

    def test_rounding_needs_digits(self):
        with pytest.raises(HierarchyError, match="digits"):
            hierarchy_from_spec({"type": "rounding"})

    def test_range_needs_widths(self):
        with pytest.raises(HierarchyError, match="widths"):
            hierarchy_from_spec({"type": "range"})

    def test_taxonomy_needs_tree_or_groups(self):
        with pytest.raises(HierarchyError, match="tree"):
            hierarchy_from_spec({"type": "taxonomy"})

    def test_multi_attribute_spec(self):
        hierarchies = hierarchies_from_spec(
            {
                "zip": {"type": "rounding", "digits": 5},
                "sex": {"type": "suppression"},
            }
        )
        assert set(hierarchies) == {"zip", "sex"}


class TestRoundTrip:
    @pytest.mark.parametrize(
        "hierarchy,domain",
        [
            (SuppressionHierarchy("Person"), ["a", "b"]),
            (RoundingHierarchy(4, height=3), ["1234", "5678"]),
            (RangeHierarchy([5, 10], origin=2), [3, 9, 17]),
            (DateHierarchy(), ["2001-05-06", "2002-01-01"]),
            (
                TaxonomyHierarchy.grouped({"g1": ["a", "b"], "g2": ["c"]}),
                ["a", "b", "c"],
            ),
        ],
    )
    def test_to_spec_then_from_spec_behaves_identically(self, hierarchy, domain):
        rebuilt = hierarchy_from_spec(hierarchy_to_spec(hierarchy))
        assert rebuilt.height == hierarchy.height
        for value in domain:
            assert rebuilt.chain(value) == hierarchy.chain(value)

    def test_unknown_hierarchy_type_rejected(self):
        class Custom(SuppressionHierarchy):
            pass

        # subclass still serializes as suppression (isinstance); a truly
        # foreign hierarchy fails:
        from repro.hierarchy.base import Hierarchy

        class Foreign(Hierarchy):
            @property
            def height(self):
                return 1

            def generalize(self, value, level):
                return value if level == 0 else "*"

        with pytest.raises(HierarchyError, match="serialize"):
            hierarchy_to_spec(Foreign())
