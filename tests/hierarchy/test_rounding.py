"""Tests for per-digit rounding hierarchies (Figure 2a/b)."""

import pytest

from repro.hierarchy.base import HierarchyError
from repro.hierarchy.rounding import RoundingHierarchy


class TestPaperZipcodes:
    """Figure 2(b): 53715 → 5371* → 537**."""

    def test_level1(self):
        hierarchy = RoundingHierarchy(5, height=2)
        assert hierarchy.generalize("53715", 1) == "5371*"

    def test_level2(self):
        hierarchy = RoundingHierarchy(5, height=2)
        assert hierarchy.generalize("53715", 2) == "537**"

    def test_siblings_merge(self):
        hierarchy = RoundingHierarchy(5, height=2)
        assert hierarchy.generalize("53715", 1) == hierarchy.generalize("53710", 1)
        assert hierarchy.generalize("53706", 1) == hierarchy.generalize("53703", 1)

    def test_level2_merges_all_madison(self):
        hierarchy = RoundingHierarchy(5, height=2)
        values = ["53715", "53710", "53706", "53703"]
        tops = {hierarchy.generalize(v, 2) for v in values}
        assert tops == {"537**"}


class TestGeneral:
    def test_height_defaults_to_digits(self):
        assert RoundingHierarchy(4).height == 4

    def test_full_suppression_at_top(self):
        assert RoundingHierarchy(3).generalize("123", 3) == "***"

    def test_int_values_zero_padded(self):
        hierarchy = RoundingHierarchy(4)
        assert hierarchy.generalize(95, 1) == "009*"
        assert hierarchy.generalize(1095, 1) == "109*"

    def test_level0_identity_keeps_type(self):
        assert RoundingHierarchy(4).generalize(95, 0) == 95

    def test_wrong_width_string_rejected(self):
        with pytest.raises(HierarchyError, match="characters"):
            RoundingHierarchy(3).generalize("12", 1)

    def test_non_string_non_int_rejected(self):
        with pytest.raises(HierarchyError):
            RoundingHierarchy(3).generalize(1.5, 1)

    def test_custom_mask(self):
        assert RoundingHierarchy(3, mask="#").generalize("123", 2) == "1##"

    def test_bad_mask_rejected(self):
        with pytest.raises(HierarchyError):
            RoundingHierarchy(3, mask="##")

    def test_height_bounds(self):
        with pytest.raises(HierarchyError):
            RoundingHierarchy(3, height=4)
        with pytest.raises(HierarchyError):
            RoundingHierarchy(3, height=0)
        with pytest.raises(HierarchyError):
            RoundingHierarchy(0)

    def test_compiles(self):
        compiled = RoundingHierarchy(5).compile(["53715", "53703", "10001"])
        assert compiled.cardinality(5) == 1
        assert compiled.cardinality(2) == 2  # 537**, 100**
