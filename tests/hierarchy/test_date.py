"""Tests for calendar date hierarchies."""

import datetime

import pytest

from repro.hierarchy.base import HierarchyError
from repro.hierarchy.date import DateHierarchy


class TestDateHierarchy:
    def test_height(self):
        assert DateHierarchy().height == 3

    def test_level0_identity(self):
        assert DateHierarchy().generalize("2001-03-15", 0) == "2001-03-15"

    def test_month(self):
        assert DateHierarchy().generalize("2001-03-15", 1) == "2001-03"

    def test_year(self):
        assert DateHierarchy().generalize("2001-03-15", 2) == "2001"

    def test_suppressed(self):
        assert DateHierarchy().generalize("2001-03-15", 3) == "*"

    def test_accepts_date_objects(self):
        assert (
            DateHierarchy().generalize(datetime.date(2001, 3, 15), 1) == "2001-03"
        )

    def test_same_month_merges(self):
        hierarchy = DateHierarchy()
        assert hierarchy.generalize("2001-03-01", 1) == hierarchy.generalize(
            "2001-03-31", 1
        )

    def test_different_years_stay_apart_at_level2(self):
        hierarchy = DateHierarchy()
        assert hierarchy.generalize("2001-03-01", 2) != hierarchy.generalize(
            "2002-03-01", 2
        )

    def test_bad_string_rejected(self):
        with pytest.raises(HierarchyError, match="ISO"):
            DateHierarchy().generalize("03/15/2001", 1)

    def test_non_date_rejected(self):
        with pytest.raises(HierarchyError):
            DateHierarchy().generalize(20010315, 1)

    def test_compiles(self):
        compiled = DateHierarchy().compile(
            ["2001-01-01", "2001-01-20", "2001-02-01", "2002-01-01"]
        )
        assert compiled.cardinality(1) == 3  # 2001-01, 2001-02, 2002-01
        assert compiled.cardinality(2) == 2  # 2001, 2002
        assert compiled.cardinality(3) == 1
