"""Kill-resume equivalence for incremental runs, all three algorithms.

A checkpointed :class:`~repro.incremental.IncrementalSession` maintains
two files: the algorithm's own level-granular run checkpoint (kill/resume
*inside* one version) and the session chain file (pieces + fingerprint
chain, reuse *across* versions and processes).  These tests kill the run
mid-delta — via the same deterministic ``BombStore`` crash surface the
resilience suite uses — then resume in a fresh session (a fresh process,
as far as the code can tell) and assert the resumed result equals

* an uninterrupted incremental run (results AND counters), and
* a from-scratch run over the concatenated table (results AND structural
  counters),

with no completed level re-scanned.  Ample piece budgets on purpose: a
tight ``max_bytes`` can evict pieces between the kill and the resume,
which legitimately shifts ``incremental.*`` accounting (see DESIGN.md
§11).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import PreparedTable
from repro.incremental import ALGORITHMS, IncrementalSession
import repro.incremental.session as session_module
from repro.resilience import CheckpointStore
from tests.conftest import make_random_problem
from tests.incremental.test_append_property import (
    from_scratch,
    scratch_comparable,
    split_rows,
)
from tests.resilience.test_checkpoint import BombStore, Killed, comparable_counters


def make_session(problem, algorithm, checkpoint_dir=None):
    qi = problem.quasi_identifier
    hierarchies = {name: problem.hierarchy(name).source for name in qi}
    return IncrementalSession(
        PreparedTable(problem.table, hierarchies, qi),
        2,
        algorithm=algorithm,
        checkpoint_dir=checkpoint_dir,
    )


def stream_batches(session, batches):
    result = session.run()
    for delta in batches[1:]:
        session.append(delta)
        result = session.run()
    return result


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_kill_mid_delta_then_resume(algorithm, tmp_path, monkeypatch):
    problem = make_random_problem(31, num_rows=60, num_attributes=3)
    batches = split_rows(problem, [20, 40])
    base = PreparedTable(
        batches[0],
        {n: problem.hierarchy(n).source for n in problem.quasi_identifier},
        problem.quasi_identifier,
    )

    # The uninterrupted reference: same batches, own checkpoint directory.
    untouched = make_session(base, algorithm, tmp_path / "reference")
    reference = stream_batches(untouched, batches)

    # The victim: bomb the *run* checkpoint (the chain file stays intact),
    # so the process dies mid-way through re-anonymizing the final delta.
    ckpt_dir = tmp_path / "killed"
    victim = make_session(base, algorithm, ckpt_dir)
    victim.run()
    victim.append(batches[1])
    victim.run()
    victim.append(batches[2])

    real_store = session_module.CheckpointStore

    def bombing_store(path):
        if str(path).endswith(".run.ckpt.json"):
            return BombStore(path, 1)
        return real_store(path)

    monkeypatch.setattr(session_module, "CheckpointStore", bombing_store)
    with pytest.raises(Killed):
        victim.run()
    monkeypatch.setattr(session_module, "CheckpointStore", real_store)

    run_ckpt = next(ckpt_dir.glob("*.run.ckpt.json"))
    at_kill = CheckpointStore(run_ckpt).load()
    assert at_kill is not None and not at_kill.get("completed")

    # Resume in a fresh session: rebuild the same append chain, adopt the
    # persisted pieces, and resume the algorithm's own checkpoint.
    resumed_session = make_session(base, algorithm, ckpt_dir)
    resumed_session.append(batches[1])
    resumed_session.append(batches[2])
    resumed = resumed_session.run(resume=True)

    assert resumed_session.chain_report is not None
    assert resumed_session.chain_report.diverged_index is None

    assert resumed.anonymous_nodes == reference.anonymous_nodes
    assert comparable_counters(resumed.stats) == comparable_counters(
        reference.stats
    )

    # ... and both equal a from-scratch run over the concatenated table.
    scratch, scratch_problem = from_scratch(resumed_session, 2, algorithm)
    assert resumed.anonymous_nodes == scratch.anonymous_nodes
    assert scratch_comparable(resumed.stats) == scratch_comparable(
        scratch.stats
    )

    # Completed pre-kill work is replayed, never re-scanned: the resumed
    # run's total scans equal the reference's, not reference + replayed.
    assert resumed.stats.table_scans == reference.stats.table_scans


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_chain_survives_process_boundary_without_a_kill(algorithm, tmp_path):
    """Sanity half of the pair: a clean process handoff reuses all pieces."""
    problem = make_random_problem(41, num_rows=50, num_attributes=3)
    batches = split_rows(problem, [25])
    base = PreparedTable(
        batches[0],
        {n: problem.hierarchy(n).source for n in problem.quasi_identifier},
        problem.quasi_identifier,
    )

    first = make_session(base, algorithm, tmp_path / "chain")
    first.run()

    # "New process": a fresh session over the same base, same directory.
    second = make_session(base, algorithm, tmp_path / "chain")
    second.append(batches[1])
    result = second.run()
    assert second.chain_report is not None
    # The stored chain (version 0) is a strict prefix of the live one.
    assert second.chain_report.matched == 1
    assert result.stats.incremental_base_hits > 0

    scratch, scratch_problem = from_scratch(second, 2, algorithm)
    assert result.anonymous_nodes == scratch.anonymous_nodes
    assert scratch_comparable(result.stats) == scratch_comparable(
        scratch.stats
    )
