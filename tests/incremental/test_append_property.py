"""Property suite: streamed appends are bit-identical to from-scratch runs.

The contract under test (DESIGN.md §11): take any generated table, any
partition of its rows into append batches, apply them in order through an
:class:`repro.incremental.IncrementalSession`, and the final run's
results, frequency sets, and counters are bit-identical to a from-scratch
run over the concatenated table — under every execution mode.

Hypothesis drives the generated-table half (serial and threads modes,
where per-example cost is small); fixed-seed parametrized cases cover the
process-pool modes.  ``incremental.*`` counters are additionally asserted
mode-independent: the plan (which nodes hit remembered prefixes, how many
rows each delta scan covers) is decided parent-side, so serial, threads,
processes, and shards must account identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anonymity import compute_frequency_set
from repro.core.problem import PreparedTable
from repro.incremental import ALGORITHMS, IncrementalSession
from repro.parallel import ExecutionConfig, use_execution
from tests.conftest import make_random_problem

#: Counter families excluded when comparing against a from-scratch run:
#: wall-clock, ``incremental.*`` (a from-scratch run has no delta plans —
#: asserted mode-independent separately), and execution accounting
#: (``parallel.*``/``shard.*``/``worker.*`` describe how work was
#: dispatched, which legitimately differs across modes; the structural
#: search counters must not).
_EXECUTION_FAMILIES = ("parallel.", "shard.", "worker.", "incremental.")


def scratch_comparable(stats) -> dict:
    return {
        key: value
        for key, value in stats.counters.as_dict().items()
        if "seconds" not in key
        and not key.startswith(_EXECUTION_FAMILIES)
    }


def incremental_counters(stats) -> dict:
    return {
        key: value
        for key, value in stats.counters.as_dict().items()
        if key.startswith("incremental.")
    }


def split_rows(problem: PreparedTable, cuts: list[int]):
    """Partition the problem's rows at ``cuts`` into consecutive batches."""
    bounds = [0, *sorted(cuts), problem.num_rows]
    return [
        problem.table.take(np.arange(lo, hi))
        for lo, hi in zip(bounds, bounds[1:])
    ]


def stream(problem, batches, k, algorithm, *, execution=None):
    """Run batches through a session; return (final result, session)."""
    qi = problem.quasi_identifier
    hierarchies = {name: problem.hierarchy(name).source for name in qi}
    session = IncrementalSession(
        PreparedTable(batches[0], hierarchies, qi), k, algorithm=algorithm
    )
    contexts = use_execution(execution) if execution is not None else None
    if contexts is not None:
        contexts.__enter__()
    try:
        result = session.run()
        for delta in batches[1:]:
            session.append(delta)
            result = session.run()
    finally:
        if contexts is not None:
            contexts.__exit__(None, None, None)
    return result, session


def from_scratch(session, k, algorithm, *, execution=None):
    """A from-scratch run over the session's concatenated table."""
    qi = session.dataset.quasi_identifier
    problem = PreparedTable(
        session.dataset.problem.table,
        {name: session.dataset.problem.hierarchy(name).source for name in qi},
        qi,
    )
    if execution is not None:
        with use_execution(execution):
            return ALGORITHMS[algorithm](problem, k), problem
    return ALGORITHMS[algorithm](problem, k), problem


def assert_equivalent(result, session, scratch, scratch_problem):
    assert result.anonymous_nodes == scratch.anonymous_nodes
    assert scratch_comparable(result.stats) == scratch_comparable(
        scratch.stats
    )
    # The remembered full-table pieces ARE the incremental run's frequency
    # sets; the scratch problem shares the concatenated table (hence every
    # dictionary and level code), so fresh GROUP BYs must reproduce them
    # byte-for-byte.
    checked = 0
    for piece in session.context.pieces():
        if piece.covered_rows != session.dataset.num_rows:
            continue
        fresh = compute_frequency_set(scratch_problem, piece.node)
        assert np.array_equal(piece.key_codes, fresh.key_codes)
        assert np.array_equal(piece.counts, fresh.counts)
        checked += 1
    assert checked > 0


@st.composite
def append_scenarios(draw):
    seed = draw(st.integers(0, 500))
    problem = make_random_problem(seed)
    cuts = draw(
        st.lists(st.integers(0, problem.num_rows), max_size=4)
    )
    algorithm = draw(st.sampled_from(sorted(ALGORITHMS)))
    mode = draw(st.sampled_from(["serial", "threads"]))
    return problem, cuts, algorithm, mode


class TestAppendProperty:
    @settings(max_examples=30)
    @given(append_scenarios())
    def test_any_partition_matches_from_scratch(self, scenario):
        problem, cuts, algorithm, mode = scenario
        batches = split_rows(problem, cuts)
        execution = (
            ExecutionConfig(mode="threads", workers=2)
            if mode == "threads"
            else None
        )
        result, session = stream(
            problem, batches, 2, algorithm, execution=execution
        )
        # Same-mode differential: parallel binary search speculatively
        # scans probe candidates, so its trajectory (and counters) are
        # only comparable against a from-scratch run under the *same*
        # execution mode.
        scratch, scratch_problem = from_scratch(
            session, 2, algorithm, execution=execution
        )
        assert_equivalent(result, session, scratch, scratch_problem)

    @settings(max_examples=15)
    @given(append_scenarios())
    def test_incremental_counters_are_integral(self, scenario):
        problem, cuts, algorithm, mode = scenario
        batches = split_rows(problem, cuts)
        result, _ = stream(problem, batches, 2, algorithm)
        for key, value in incremental_counters(result.stats).items():
            assert isinstance(value, int), key


class TestExecutionModes:
    """Fixed-seed coverage of the process-backed modes + mode independence."""

    MODES = {
        "serial": None,
        "threads": ExecutionConfig(mode="threads", workers=2),
        "processes": ExecutionConfig(mode="processes", workers=2),
        "shards": ExecutionConfig(mode="shards", workers=2, shard_rows=8),
    }

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_modes_agree(self, algorithm):
        problem = make_random_problem(11, num_rows=40, num_attributes=3)
        cuts = [13, 29]
        batches = split_rows(problem, cuts)

        outcomes = {}
        for mode, execution in self.MODES.items():
            result, session = stream(
                problem, batches, 2, algorithm, execution=execution
            )
            outcomes[mode] = (result, session)

        scratch, scratch_problem = from_scratch(
            outcomes["serial"][1], 2, algorithm
        )
        for mode, (result, session) in outcomes.items():
            if algorithm == "binary" and mode != "serial":
                # Parallel binary search speculatively scans probe
                # candidates, so its structural counters legitimately
                # differ from the serial trajectory; compare against a
                # from-scratch run under the same mode instead.
                assert result.anonymous_nodes == scratch.anonymous_nodes
                mode_scratch, mode_problem = from_scratch(
                    session, 2, algorithm, execution=self.MODES[mode]
                )
                assert_equivalent(result, session, mode_scratch, mode_problem)
                continue
            assert_equivalent(result, session, scratch, scratch_problem)

        # The delta plan is decided parent-side: every mode must account
        # the same incremental work.
        serial_counters = incremental_counters(outcomes["serial"][0].stats)
        assert serial_counters["incremental.delta_scans"] > 0
        for mode, (result, _) in outcomes.items():
            if algorithm == "binary" and mode != "serial":
                continue
            assert incremental_counters(result.stats) == serial_counters, mode

    def test_empty_deltas_are_versions_too(self):
        problem = make_random_problem(3, num_rows=24, num_attributes=3)
        # cuts at the edges produce empty first/last batches
        batches = split_rows(problem, [0, 10, 10, 24])
        assert sum(b.num_rows == 0 for b in batches) >= 2
        result, session = stream(problem, batches, 2, "basic")
        assert session.version == len(batches) - 1
        scratch, scratch_problem = from_scratch(session, 2, "basic")
        assert_equivalent(result, session, scratch, scratch_problem)
