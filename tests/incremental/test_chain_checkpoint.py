"""Version-chain checkpoint matching: precise divergence, prefix fallback.

Regression surface for the silent-discard bug class: a fingerprint
mismatch used to throw the whole checkpoint away without saying why.  Now
:func:`repro.resilience.checkpoint.match_chain` reports exactly which
segment diverged (with both fingerprints) and the session falls back to
the longest valid prefix — keeping every piece the matching segments
still cover.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.problem import PreparedTable
from repro.incremental import IncrementalSession
from repro.resilience import (
    ChainMatch,
    ChainMismatchWarning,
    CheckpointError,
    CheckpointStore,
    match_chain,
    segment_fingerprint,
)
from tests.conftest import make_random_problem
from tests.incremental.test_append_property import (
    from_scratch,
    scratch_comparable,
    split_rows,
)


class TestMatchChain:
    def test_full_match(self):
        match = match_chain(["a", "b", "c"], ["a", "b", "c"])
        assert match.full
        assert match.matched == 3
        assert match.diverged_index is None
        assert "matches all 3" in match.describe()

    def test_strict_prefix_is_not_a_divergence(self):
        match = match_chain(["a", "b"], ["a", "b", "c", "d"])
        assert not match.full
        assert match.matched == 2
        assert match.diverged_index is None
        assert "covers 2 of 4" in match.describe()

    def test_divergence_names_the_delta_and_both_fingerprints(self):
        match = match_chain(["a", "b", "XX"], ["a", "b", "YY", "z"])
        assert match.matched == 2
        assert match.diverged_index == 2
        assert match.expected_fingerprint == "YY"
        assert match.found_fingerprint == "XX"
        message = match.describe()
        assert "diverged at delta 2" in message
        assert "expected YY" in message and "found XX" in message
        assert "longest valid prefix (2 of 4" in message

    def test_divergence_at_the_base_segment(self):
        match = match_chain(["XX", "b"], ["a", "b"])
        assert match.matched == 0
        assert match.diverged_index == 0
        assert "diverged at the base segment" in match.describe()

    def test_stored_longer_than_expected(self):
        match = match_chain(["a", "b", "c"], ["a", "b"])
        assert not match.full
        assert match.matched == 2
        assert match.diverged_index is None
        assert "holds 3 segments but the dataset has only 2" in match.describe()


class TestSegmentFingerprint:
    def test_content_based_and_range_sensitive(self):
        problem = make_random_problem(7, num_rows=30, num_attributes=3)
        same = make_random_problem(7, num_rows=30, num_attributes=3)
        other = make_random_problem(8, num_rows=30, num_attributes=3)
        assert segment_fingerprint(problem, 0, 15) == segment_fingerprint(
            same, 0, 15
        )
        assert segment_fingerprint(problem, 0, 15) != segment_fingerprint(
            problem, 0, 16
        )
        assert segment_fingerprint(problem, 0, 15) != segment_fingerprint(
            other, 0, 15
        )

    def test_stable_as_later_appends_grow_the_dictionary(self):
        """The chain-stability property: appending rows must not change
        the fingerprint of any earlier segment, or every append would
        invalidate the whole chain."""
        problem = make_random_problem(9, num_rows=40, num_attributes=3)
        batches = split_rows(problem, [20])
        qi = problem.quasi_identifier
        hierarchies = {n: problem.hierarchy(n).source for n in qi}
        small = PreparedTable(batches[0], hierarchies, qi)
        grown = PreparedTable(
            batches[0].concat(batches[1]), hierarchies, qi
        )
        assert segment_fingerprint(small, 0, 20) == segment_fingerprint(
            grown, 0, 20
        )


class TestLoadChain:
    def make_store(self, tmp_path, header, chain):
        store = CheckpointStore(tmp_path / "chain.json")
        store.save({**header, "chain": chain, "pieces": []})
        return store

    def test_header_mismatch_returns_nothing(self, tmp_path):
        header = {"kind": "incremental-chain", "k": 2}
        store = self.make_store(tmp_path, header, ["a"])
        state, match = store.load_chain({"kind": "incremental-chain", "k": 3}, ["a"])
        assert state is None and match is None

    def test_matching_header_reports_the_chain_comparison(self, tmp_path):
        header = {"kind": "incremental-chain", "k": 2}
        store = self.make_store(tmp_path, header, ["a", "b"])
        state, match = store.load_chain(header, ["a", "b", "c"])
        assert state is not None
        assert isinstance(match, ChainMatch)
        assert match.matched == 2 and not match.full

    def test_missing_chain_key_is_a_checkpoint_error(self, tmp_path):
        header = {"kind": "incremental-chain", "k": 2}
        store = CheckpointStore(tmp_path / "chain.json")
        store.save(dict(header))
        with pytest.raises(CheckpointError, match="chain"):
            store.load_chain(header, ["a"])


class TestSessionFallback:
    """The end-to-end regression: mismatches are loud and prefix-scoped."""

    def setup_sessions(self, tmp_path, cuts=(20, 40)):
        problem = make_random_problem(13, num_rows=60, num_attributes=3)
        batches = split_rows(problem, list(cuts))
        qi = problem.quasi_identifier
        hierarchies = {n: problem.hierarchy(n).source for n in qi}
        base = PreparedTable(batches[0], hierarchies, qi)
        return base, batches

    def test_prefix_reuse_is_silent_and_counted(self, tmp_path):
        base, batches = self.setup_sessions(tmp_path)
        first = IncrementalSession(base, 2, checkpoint_dir=tmp_path)
        first.run()

        second = IncrementalSession(base, 2, checkpoint_dir=tmp_path)
        for delta in batches[1:]:
            second.append(delta)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ChainMismatchWarning)
            result = second.run()  # must not warn: stored is a clean prefix
        assert second.chain_report is not None
        assert second.chain_report.matched == 1
        assert result.stats.incremental_base_hits > 0

        scratch, _ = from_scratch(second, 2, "basic")
        assert result.anonymous_nodes == scratch.anonymous_nodes
        assert scratch_comparable(result.stats) == scratch_comparable(
            scratch.stats
        )

    def test_diverged_delta_warns_and_falls_back_to_prefix(self, tmp_path):
        base, batches = self.setup_sessions(tmp_path)
        first = IncrementalSession(base, 2, checkpoint_dir=tmp_path)
        first.run()
        first.append(batches[1])
        first.run()  # stored chain now covers base + delta 1

        # A different delta 1: the stored chain's second segment is wrong.
        second = IncrementalSession(base, 2, checkpoint_dir=tmp_path)
        second.append(batches[2])
        with pytest.warns(ChainMismatchWarning) as caught:
            result = second.run()
        message = str(caught[0].message)
        assert "diverged at delta 1" in message
        assert "expected" in message and "found" in message
        report = second.chain_report
        assert report is not None and report.diverged_index == 1
        assert report.matched == 1  # the base segment still counts
        assert report.expected_fingerprint != report.found_fingerprint

        scratch, _ = from_scratch(second, 2, "basic")
        assert result.anonymous_nodes == scratch.anonymous_nodes

    def test_full_mismatch_discards_every_piece_but_still_runs(self, tmp_path):
        base, batches = self.setup_sessions(tmp_path)
        first = IncrementalSession(base, 2, checkpoint_dir=tmp_path)
        first.run()

        # A session whose *base* differs: nothing in the chain is valid.
        other_problem = make_random_problem(14, num_rows=30, num_attributes=3)
        qi = other_problem.quasi_identifier
        other_base = PreparedTable(
            other_problem.table,
            {n: other_problem.hierarchy(n).source for n in qi},
            qi,
        )
        # Same header (algorithm/k/qi names q0..q2) but different content.
        second = IncrementalSession(other_base, 2, checkpoint_dir=tmp_path)
        with pytest.warns(ChainMismatchWarning, match="base segment"):
            result = second.run()
        assert second.chain_report is not None
        assert second.chain_report.matched == 0
        assert result.stats.incremental_base_hits == 0
        assert result.found or not result.found  # ran to completion

    def test_empty_delta_appends_extend_the_chain_cheaply(self, tmp_path):
        base, batches = self.setup_sessions(tmp_path)
        empty = batches[0].take(np.arange(0))
        session = IncrementalSession(base, 2, checkpoint_dir=tmp_path)
        session.run()
        session.append(empty)
        result = session.run()
        assert session.version == 1
        assert result.stats.incremental_delta_rows_scanned == 0
        assert result.stats.incremental_base_hits > 0

        # The empty segment is a real chain element: a fresh session that
        # replays it matches the stored chain in full, silently.
        second = IncrementalSession(base, 2, checkpoint_dir=tmp_path)
        second.append(empty)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ChainMismatchWarning)
            replay = second.run()
        assert second.chain_report is not None and second.chain_report.full
        assert replay.anonymous_nodes == result.anonymous_nodes

        scratch, _ = from_scratch(second, 2, "basic")
        assert replay.anonymous_nodes == scratch.anonymous_nodes
        assert scratch_comparable(replay.stats) == scratch_comparable(
            scratch.stats
        )
