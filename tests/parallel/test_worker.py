"""Worker-side unit tests: RSS telemetry portability, scan_range jobs."""

from __future__ import annotations

import sys
import types

import numpy as np
import pytest

from repro import obs
from repro.core.anonymity import compute_frequency_set_range
from repro.parallel import worker
from tests.conftest import tiny_numeric_problem


def fake_resource(ru_maxrss):
    """A stand-in ``resource`` module reporting a fixed ru_maxrss."""
    return types.SimpleNamespace(
        RUSAGE_SELF=0,
        getrusage=lambda who: types.SimpleNamespace(ru_maxrss=ru_maxrss),
    )


class TestPeakRssBytes:
    """ru_maxrss units are platform-specific: KiB on Linux, bytes on
    macOS, and the resource module is absent on Windows."""

    def test_linux_scales_kilobytes_to_bytes(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "resource", fake_resource(2_048))
        monkeypatch.setattr(sys, "platform", "linux")
        assert worker._peak_rss_bytes() == 2_048 * 1024

    def test_darwin_is_already_bytes(self, monkeypatch):
        # Regression: a blanket *1024 inflated macOS readings 1024x.
        monkeypatch.setitem(sys.modules, "resource", fake_resource(2_048))
        monkeypatch.setattr(sys, "platform", "darwin")
        assert worker._peak_rss_bytes() == 2_048

    def test_missing_resource_module_skips(self, monkeypatch):
        # Windows: `import resource` raises; no observation, no crash.
        monkeypatch.setitem(sys.modules, "resource", None)
        assert worker._peak_rss_bytes() is None

    def test_real_platform_reports_positive(self):
        value = worker._peak_rss_bytes()
        assert value is not None and value > 0

    def test_telemetry_skips_when_unavailable(self, monkeypatch):
        from repro.obs.metrics import MetricSet

        monkeypatch.setitem(sys.modules, "resource", None)
        metrics = MetricSet()
        worker._note_worker_telemetry(
            metrics, num_jobs=1, chunk_seconds=0.1, submitted_at=None
        )
        assert metrics.as_dict().get("worker.rss_bytes", {"count": 0})[
            "count"
        ] == 0


@pytest.fixture
def installed_problem():
    """Install a problem in this process's worker slot, restoring after."""
    previous_problem = worker._PROBLEM
    previous_tracer = obs.get_tracer()
    problem = tiny_numeric_problem()
    worker.init_worker(problem)
    try:
        yield problem
    finally:
        worker._PROBLEM = previous_problem
        obs.set_tracer(previous_tracer)


class TestRunChunkScanRange:
    def test_scan_range_job_returns_the_shard_partial(self, installed_problem):
        node = installed_problem.bottom_node()
        out, counters, _ = worker.run_chunk([(node, "scan_range", (2, 7))])
        (key_codes, counts), = out
        direct = compute_frequency_set_range(installed_problem, node, 2, 7)
        np.testing.assert_array_equal(key_codes, direct.key_codes)
        np.testing.assert_array_equal(counts, direct.counts)
        # Shard work is telemetry, not scan accounting.
        assert counters.get("shard.range_scans", 0) == 1
        assert counters.get("shard.rows_scanned", 0) == 5
        assert counters.get("frequency.table_scans", 0) == 0

    def test_scan_range_without_payload_is_an_error(self, installed_problem):
        node = installed_problem.bottom_node()
        with pytest.raises(ValueError, match="scan_range"):
            worker.run_chunk([(node, "scan_range", None)])
