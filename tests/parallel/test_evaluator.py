"""Unit tests for the parallel execution config and batch materializer."""

from __future__ import annotations

import pytest

from repro.core.anonymity import FrequencyEvaluator
from repro.core.fscache import FrequencySetCache
from repro.core.stats import SearchStats
from repro.parallel import (
    BatchMaterializer,
    ExecutionConfig,
    current_execution,
    use_execution,
)
from repro.parallel.evaluator import _split_chunks
from tests.conftest import tiny_numeric_problem


class TestExecutionConfig:
    def test_default_is_serial(self):
        config = ExecutionConfig()
        assert config.mode == "serial" and config.workers == 1
        assert not config.is_parallel

    def test_single_worker_normalizes_to_serial(self):
        config = ExecutionConfig(mode="processes", workers=1)
        assert config.mode == "serial"
        assert not config.is_parallel

    def test_serial_normalizes_workers_to_one(self):
        assert ExecutionConfig(mode="serial", workers=8).workers == 1

    def test_from_workers(self):
        assert not ExecutionConfig.from_workers(None).is_parallel
        assert not ExecutionConfig.from_workers(1).is_parallel
        config = ExecutionConfig.from_workers(3)
        assert config.mode == "processes" and config.workers == 3
        assert ExecutionConfig.from_workers(2, "threads").mode == "threads"

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ExecutionConfig(mode="fibers")
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)

    def test_use_execution_installs_and_restores(self):
        assert not current_execution().is_parallel
        config = ExecutionConfig(mode="threads", workers=2)
        with use_execution(config):
            assert current_execution() is config
        assert not current_execution().is_parallel


class TestSplitChunks:
    def test_even_and_uneven_splits(self):
        assert _split_chunks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]
        assert _split_chunks([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_never_produces_empty_chunks(self):
        assert _split_chunks([1, 2], 5) == [[1], [2]]

    def test_preserves_order(self):
        items = list(range(17))
        chunks = _split_chunks(items, 4)
        assert [x for chunk in chunks for x in chunk] == items

    def test_empty_items_is_no_chunks(self):
        # Regression: this used to divide by a zero chunk count.
        assert _split_chunks([], 3) == []


class TestBatchMaterializer:
    def _requests(self, problem):
        lattice = problem.lattice()
        nodes = []
        for height in range(lattice.max_height + 1):
            nodes.extend(lattice.nodes_at_height(height))
        return [(node, None) for node in nodes]

    def test_thread_batch_matches_serial(self):
        problem = tiny_numeric_problem()
        requests = self._requests(problem)

        serial_eval = FrequencyEvaluator(problem, SearchStats())
        with BatchMaterializer(problem, ExecutionConfig()) as pool:
            serial_sets = pool.materialize_batch(serial_eval, requests)

        thread_eval = FrequencyEvaluator(problem, SearchStats())
        config = ExecutionConfig(mode="threads", workers=2)
        with BatchMaterializer(problem, config) as pool:
            thread_sets = pool.materialize_batch(thread_eval, requests)

        for left, right in zip(serial_sets, thread_sets):
            assert left.node == right.node
            assert left.as_dict() == right.as_dict()
        assert (
            serial_eval.stats.table_scans == thread_eval.stats.table_scans
        )
        assert serial_eval.stats.parallel_tasks == 0
        assert thread_eval.stats.parallel_tasks > 0
        assert thread_eval.stats.parallel_workers == 2

    def test_process_batch_matches_serial(self):
        problem = tiny_numeric_problem()
        requests = self._requests(problem)

        serial_eval = FrequencyEvaluator(problem, SearchStats())
        with BatchMaterializer(problem, ExecutionConfig()) as pool:
            serial_sets = pool.materialize_batch(serial_eval, requests)

        process_eval = FrequencyEvaluator(problem, SearchStats())
        config = ExecutionConfig(mode="processes", workers=2)
        with BatchMaterializer(problem, config) as pool:
            process_sets = pool.materialize_batch(process_eval, requests)

        for left, right in zip(serial_sets, process_sets):
            assert left.node == right.node
            assert left.as_dict() == right.as_dict()
        assert (
            serial_eval.stats.table_scans == process_eval.stats.table_scans
        )

    def test_cache_hits_bypass_dispatch(self):
        problem = tiny_numeric_problem()
        requests = self._requests(problem)
        cache = FrequencySetCache()
        config = ExecutionConfig(mode="threads", workers=2)

        stats = SearchStats()
        evaluator = FrequencyEvaluator(problem, stats, cache=cache)
        with BatchMaterializer(problem, config) as pool:
            pool.materialize_batch(evaluator, requests)
            first_tasks = stats.parallel_tasks
            pool.materialize_batch(evaluator, requests)
        # Second batch: every request is an exact hit, resolved in the
        # parent with no dispatch at all.
        assert stats.parallel_tasks == first_tasks
        assert stats.cache_hits == len(requests)

    def test_rollup_sources_are_shipped(self):
        problem = tiny_numeric_problem()
        evaluator = FrequencyEvaluator(problem, SearchStats())
        bottom = problem.bottom_node()
        base = evaluator.scan(bottom)
        lattice = problem.lattice()
        ups = [
            (node, base) for node in lattice.nodes_at_height(1)
        ]
        config = ExecutionConfig(mode="processes", workers=2)
        with BatchMaterializer(problem, config) as pool:
            results = pool.materialize_batch(evaluator, ups)

        check = FrequencyEvaluator(problem, SearchStats())
        for (node, _), result in zip(ups, results):
            assert result.as_dict() == check.scan(node).as_dict()
        # All jobs were rollups from the shipped base, not fresh scans.
        assert evaluator.stats.rollups == len(ups)
        assert evaluator.stats.table_scans == 1  # just the base scan
