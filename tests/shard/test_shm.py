"""Shared-memory table store: planning, lifecycle, zero-copy round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anonymity import compute_frequency_set
from repro.hierarchy import SuppressionHierarchy
from repro.shard import (
    DEFAULT_SHARD_ROWS,
    SharedTableStore,
    attach_problem,
    plan_shards,
)
from tests.conftest import make_random_problem, tiny_numeric_problem


class TestPlanShards:
    def test_non_dividing_width_gets_short_tail(self):
        assert plan_shards(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_exact_division(self):
        assert plan_shards(8, 4) == [(0, 4), (4, 8)]

    def test_width_beyond_table_is_one_shard(self):
        assert plan_shards(3, 100) == [(0, 3)]

    def test_empty_table_has_no_shards(self):
        assert plan_shards(0, 4) == []

    def test_ranges_partition_the_rows(self):
        ranges = plan_shards(1_000, 7)
        assert ranges[0][0] == 0 and ranges[-1][1] == 1_000
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(-1, 4)

    def test_default_width(self):
        assert DEFAULT_SHARD_ROWS >= 1


class TestFromProblem:
    def test_attach_round_trips_the_table(self):
        problem = tiny_numeric_problem()
        store = SharedTableStore.from_problem(problem)
        try:
            attached = attach_problem(store.handle)
            assert attached.quasi_identifier == problem.quasi_identifier
            assert attached.table.num_rows == problem.table.num_rows
            for name in problem.quasi_identifier:
                original = problem.table.column(name)
                view = attached.table.column(name)
                np.testing.assert_array_equal(view.codes, original.codes)
                assert list(view.values) == list(original.values)
        finally:
            store.close()

    def test_attached_scan_is_bit_identical(self):
        problem = make_random_problem(21, num_rows=40)
        store = SharedTableStore.from_problem(problem)
        try:
            attached = attach_problem(store.handle)
            for node in problem.lattice().nodes():
                left = compute_frequency_set(problem, node)
                right = compute_frequency_set(attached, node)
                np.testing.assert_array_equal(left.key_codes, right.key_codes)
                np.testing.assert_array_equal(left.counts, right.counts)
        finally:
            store.close()

    def test_attached_view_does_not_copy(self):
        """Writes through the store's array are visible to the attacher."""
        problem = tiny_numeric_problem()
        store = SharedTableStore.from_problem(problem)
        try:
            attached = attach_problem(store.handle)
            name = problem.quasi_identifier[0]
            before = int(attached.table.column(name).codes[0])
            handle_spec = store.handle.columns[0]
            assert handle_spec.name == name
            # Poke the first code via the store's own view.
            store._columns[0][2][0] = before  # no-op write proves shared buf
            np.testing.assert_array_equal(
                attached.table.column(name).codes,
                store._columns[0][2],
            )
        finally:
            store.close()

    def test_handle_is_small(self):
        """The handle must not smuggle the code arrays along."""
        import pickle

        problem = tiny_numeric_problem()
        store = SharedTableStore.from_problem(problem)
        try:
            payload = pickle.dumps(store.handle)
            assert len(payload) < 64 * 1024
        finally:
            store.close()


class TestStreamingBuild:
    def _build(self):
        store = SharedTableStore()
        codes = store.allocate("q", 6)
        codes[:] = [0, 1, 1, 0, 1, 0]
        problem = store.build_problem(
            {"q": ["a", "b"]}, {"q": SuppressionHierarchy()}, ("q",)
        )
        return store, problem

    def test_build_problem_wraps_segments(self):
        store, problem = self._build()
        try:
            assert problem._shm_store is store
            assert problem.table.num_rows == 6
            fs = compute_frequency_set(problem, problem.bottom_node())
            assert fs.as_dict() == {("a",): 3, ("b",): 3}
        finally:
            store.close()

    def test_allocate_after_seal_is_an_error(self):
        store, _ = self._build()
        try:
            with pytest.raises(RuntimeError, match="sealed"):
                store.allocate("late", 3)
        finally:
            store.close()

    def test_duplicate_column_is_an_error(self):
        store = SharedTableStore()
        try:
            store.allocate("q", 3)
            with pytest.raises(ValueError, match="already allocated"):
                store.allocate("q", 3)
        finally:
            store.close()

    def test_handle_before_seal_is_an_error(self):
        store = SharedTableStore()
        try:
            store.allocate("q", 3)
            with pytest.raises(RuntimeError, match="no handle"):
                store.handle
        finally:
            store.close()

    def test_nbytes_accounts_allocations(self):
        store = SharedTableStore()
        try:
            store.allocate("a", 10)
            store.allocate("b", 5)
            assert store.nbytes() == 15 * np.dtype(np.int32).itemsize
        finally:
            store.close()


class TestClose:
    def test_close_is_idempotent(self):
        store = SharedTableStore.from_problem(tiny_numeric_problem())
        store.close()
        store.close()
        assert store.closed

    def test_closed_store_rejects_use(self):
        store = SharedTableStore.from_problem(tiny_numeric_problem())
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.handle
        with pytest.raises(RuntimeError, match="closed"):
            store.allocate("late", 3)

    def test_close_with_live_problem_views_unlinks_anyway(self):
        """A live shm-backed problem must not make close() raise; the
        segment is unlinked and a fresh attach by name fails."""
        from multiprocessing import shared_memory

        store = SharedTableStore()
        store.allocate("q", 4)[:] = [0, 0, 1, 1]
        problem = store.build_problem(
            {"q": ["x", "y"]}, {"q": SuppressionHierarchy()}, ("q",)
        )
        segment_name = store.handle.columns[0].segment
        store.close()
        # The problem's view still reads (mapping lives until it drops)...
        assert problem.table.num_rows == 4
        # ...but the backing object is gone for new attachers.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment_name)
