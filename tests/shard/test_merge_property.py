"""Property test: per-shard partial merge == whole-table scan, always.

The shard mode's correctness rests on one algebraic fact — COUNT is
distributive and :func:`repro.core.outofcore.merge_partials` re-groups by
the same mixed-radix dense key a direct scan sorts by — so for *any*
table, *any* shard width (including widths that do not divide the row
count), *any* merge order, and even gratuitous empty shards, the merged
result must be bit-identical to :func:`compute_frequency_set`.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anonymity import (
    compute_frequency_set,
    compute_frequency_set_range,
)
from repro.core.outofcore import merge_partials
from repro.shard import plan_shards
from tests.conftest import make_random_problem


def node_radices(problem, node) -> list[int]:
    return [
        problem.hierarchy(attribute).cardinality(level)
        for attribute, level in node.items()
    ]


def merged_scan(problem, node, ranges) -> tuple[np.ndarray, np.ndarray]:
    partials = [
        compute_frequency_set_range(problem, node, start, stop)
        for start, stop in ranges
    ]
    return merge_partials(
        [piece.key_codes for piece in partials],
        [piece.counts for piece in partials],
        node_radices(problem, node),
    )


@settings(max_examples=40)
@given(
    seed=st.integers(0, 60),
    shard_rows=st.integers(1, 60),
    data=st.data(),
)
def test_shard_merge_equals_whole_scan(seed, shard_rows, data):
    problem = make_random_problem(seed)
    num_rows = problem.table.num_rows
    ranges = plan_shards(num_rows, shard_rows)
    # Splice in an empty range at an arbitrary boundary: empty shards must
    # be neutral elements of the merge.
    empty_at = data.draw(
        st.integers(0, num_rows), label="empty-shard position"
    )
    ranges = ranges + [(empty_at, empty_at)]
    # Merge order must not matter either.
    ranges = data.draw(st.permutations(ranges), label="merge order")

    lattice = problem.lattice()
    nodes = [problem.bottom_node(), problem.top_node()]
    middle = [
        node
        for height in range(1, lattice.max_height)
        for node in lattice.nodes_at_height(height)
    ]
    if middle:
        nodes.append(data.draw(st.sampled_from(middle), label="middle node"))

    for node in nodes:
        keys, counts = merged_scan(problem, node, ranges)
        direct = compute_frequency_set(problem, node)
        np.testing.assert_array_equal(keys, direct.key_codes)
        np.testing.assert_array_equal(counts, direct.counts)
        assert counts.sum() == num_rows


@settings(max_examples=20)
@given(seed=st.integers(0, 30), width=st.integers(1, 9))
def test_range_scans_partition_every_row(seed, width):
    """Each row lands in exactly one shard: per-shard totals sum to N."""
    problem = make_random_problem(seed)
    num_rows = problem.table.num_rows
    node = problem.bottom_node()
    totals = [
        compute_frequency_set_range(problem, node, start, stop).total()
        for start, stop in plan_shards(num_rows, width)
    ]
    assert sum(totals) == num_rows


def test_empty_range_yields_empty_set():
    problem = make_random_problem(7)
    node = problem.bottom_node()
    fs = compute_frequency_set_range(problem, node, 2, 2)
    assert fs.num_groups == 0 and fs.total() == 0


def test_range_bounds_are_validated():
    import pytest

    problem = make_random_problem(7)
    node = problem.bottom_node()
    num_rows = problem.table.num_rows
    with pytest.raises(ValueError):
        compute_frequency_set_range(problem, node, -1, 2)
    with pytest.raises(ValueError):
        compute_frequency_set_range(problem, node, 0, num_rows + 1)
    with pytest.raises(ValueError):
        compute_frequency_set_range(problem, node, 3, 2)
