"""Regression tests for the RA008/RA009 findings fixed in the shard layer.

* RA008 — ``attach_problem`` must close already-attached mappings when a
  later segment fails to attach; ``SharedTableStore.allocate`` must
  close *and unlink* a fresh segment when the ndarray view over it
  cannot be built (the segment exists in ``/dev/shm`` but nothing owns
  it yet).
* RA009 — ``manifest.record_segments`` publishes through the atomic
  write path: the final file is complete JSON and no temporary sidecar
  survives.
"""

from __future__ import annotations

import dataclasses
import json
from multiprocessing import shared_memory
from types import SimpleNamespace

import numpy as np
import pytest

from repro.shard import manifest, shm
from repro.shard.shm import SharedTableStore, attach_problem
from tests.conftest import tiny_numeric_problem


def _recording_shared_memory():
    """A SharedMemory subclass that records instances and close/unlink."""

    class Recording(shared_memory.SharedMemory):
        instances: list = []

        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            type(self).instances.append(self)
            self.closed = False
            self.unlinked = False

        def close(self):
            self.closed = True
            super().close()

        def unlink(self):
            self.unlinked = True
            super().unlink()

    return Recording


def test_attach_failure_closes_earlier_mappings(monkeypatch):
    """A vanished later segment must not strand the mappings already
    opened for earlier columns (RA008)."""
    problem = tiny_numeric_problem()
    store = SharedTableStore.from_problem(problem)
    try:
        handle = store.handle
        assert len(handle.columns) >= 2
        broken = dataclasses.replace(
            handle,
            columns=(
                handle.columns[0],
                dataclasses.replace(
                    handle.columns[1], segment="ra008-no-such-segment"
                ),
                *handle.columns[2:],
            ),
        )
        Recording = _recording_shared_memory()
        monkeypatch.setattr(shm.shared_memory, "SharedMemory", Recording)
        with pytest.raises((FileNotFoundError, OSError)):
            attach_problem(broken)
        # Only the first column ever attached, and its mapping is closed.
        assert len(Recording.instances) == 1
        assert Recording.instances[0].closed
        assert not Recording.instances[0].unlinked  # attachers never unlink
    finally:
        store.close()


def test_allocate_failure_releases_the_fresh_segment(monkeypatch):
    """If the writable view over a just-created segment cannot be built,
    the segment must be closed *and unlinked* (RA008): it is not yet in
    ``_columns``, so no later ``close()`` would ever reach it."""
    Recording = _recording_shared_memory()
    monkeypatch.setattr(shm.shared_memory, "SharedMemory", Recording)

    def exploding_ndarray(*args, **kwargs):
        raise RuntimeError("ndarray construction failed")

    monkeypatch.setattr(
        shm,
        "np",
        SimpleNamespace(dtype=np.dtype, ndarray=exploding_ndarray),
    )
    store = SharedTableStore()
    with pytest.raises(RuntimeError, match="ndarray construction failed"):
        store.allocate("age", 8)
    assert len(Recording.instances) == 1
    assert Recording.instances[0].closed
    assert Recording.instances[0].unlinked
    assert store._columns == []
    store.close()


def test_record_segments_publishes_atomically(tmp_path, monkeypatch):
    """The manifest lands complete, parseable, and with no temporary
    sidecar left behind (RA009 write → fsync → rename)."""
    monkeypatch.setenv(manifest.MANIFEST_DIR_ENV, str(tmp_path))
    path = manifest.record_segments("t-1", ["seg_a", "seg_b"])
    assert path.parent == tmp_path
    document = json.loads(path.read_text())
    assert document["segments"] == ["seg_a", "seg_b"]
    leftovers = [p for p in tmp_path.iterdir() if p != path]
    assert leftovers == [], f"temporary files survived publish: {leftovers}"
