"""The ``shards`` execution mode: bit-identical results, clean lifecycle.

The contract under test: fanning a node's scan out over shared-memory row
shards and merging the partials is invisible everywhere except the
``shard.*`` telemetry — frequency sets, ``frequency.*`` counters, search
results, and checkpoints all match a serial run bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.core.anonymity import FrequencyEvaluator
from repro.core.incognito import basic_incognito
from repro.core.stats import SearchStats
from repro.parallel import BatchMaterializer, ExecutionConfig, use_execution
from repro.resilience import CheckpointStore, FaultPlan
from repro.shard import SharedTableStore
from tests.conftest import make_random_problem, tiny_numeric_problem
from tests.resilience.test_checkpoint import BombStore, Killed
from tests.resilience.test_supervisor import (
    FAST,
    all_requests,
    frequency_counters,
    serial_baseline,
)


def shard_config(**overrides) -> ExecutionConfig:
    settings = dict(mode="shards", workers=2, shard_rows=3)
    settings.update(overrides)
    return ExecutionConfig(**settings)


class TestShardBatchDifferential:
    def run_shards(self, problem, requests, config):
        evaluator = FrequencyEvaluator(problem, SearchStats())
        with BatchMaterializer(problem, config) as pool:
            sets = pool.materialize_batch(evaluator, requests)
        return sets, evaluator.stats

    @pytest.mark.parametrize("shard_rows", [1, 2, 3, 7, 100])
    def test_matches_serial_for_every_shard_width(self, shard_rows):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        expected_sets, expected_counters = serial_baseline(problem, requests)
        actual_sets, stats = self.run_shards(
            problem, requests, shard_config(shard_rows=shard_rows)
        )
        for left, right in zip(expected_sets, actual_sets):
            assert left.node == right.node
            assert left.as_dict() == right.as_dict()
        assert frequency_counters(stats.counters) == (
            frequency_counters(expected_counters)
        )

    def test_fanned_scans_surface_in_shard_counters(self):
        problem = tiny_numeric_problem()  # 10 rows / 3-row shards = 4 each
        requests = all_requests(problem)
        _, stats = self.run_shards(problem, requests, shard_config())
        assert stats.shard_range_scans > 0
        assert stats.shard_merges == len(requests)
        assert stats.shard_rows_scanned == (
            problem.table.num_rows * len(requests)
        )
        # The fan-out is telemetry, not accounting: the run still reports
        # one table scan per node, as serial would.
        assert stats.table_scans == len(requests)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_problems_match_serial(self, seed):
        problem = make_random_problem(seed + 2_200, num_rows=35)
        requests = all_requests(problem)
        expected_sets, expected_counters = serial_baseline(problem, requests)
        actual_sets, stats = self.run_shards(
            problem, requests, shard_config(shard_rows=4)
        )
        for left, right in zip(expected_sets, actual_sets):
            assert left.as_dict() == right.as_dict()
        assert frequency_counters(stats.counters) == (
            frequency_counters(expected_counters)
        )

    def test_single_shard_table_skips_fan_out(self):
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        expected_sets, _ = serial_baseline(problem, requests)
        actual_sets, stats = self.run_shards(
            problem, requests, shard_config(shard_rows=1_000)
        )
        for left, right in zip(expected_sets, actual_sets):
            assert left.as_dict() == right.as_dict()
        assert stats.shard_merges == 0


class TestStoreLifecycle:
    def test_materializer_creates_and_closes_its_own_store(self):
        problem = tiny_numeric_problem()
        pool = BatchMaterializer(problem, shard_config())
        evaluator = FrequencyEvaluator(problem, SearchStats())
        with pool:
            pool.materialize_batch(evaluator, all_requests(problem))
            store = pool._shm_store
            assert store is not None and not store.closed
        assert store.closed

    def test_materializer_adopts_but_does_not_close_problem_store(self):
        problem = tiny_numeric_problem()
        store = SharedTableStore.from_problem(problem)
        problem._shm_store = store
        try:
            evaluator = FrequencyEvaluator(problem, SearchStats())
            with BatchMaterializer(problem, shard_config()) as pool:
                pool.materialize_batch(evaluator, all_requests(problem))
                assert pool._shm_store is store
            # Adopted store outlives the pool: the builder owns it.
            assert not store.closed
        finally:
            store.close()


class TestDegradation:
    def test_constant_crashes_demote_shards_to_threads(self):
        """Shard workers that keep dying walk the ladder; results hold."""
        problem = tiny_numeric_problem()
        requests = all_requests(problem)
        expected_sets, _ = serial_baseline(problem, requests)
        plan = FaultPlan(crash_rate=1.0, seed=13)
        config = shard_config(max_retries=2, faults=plan, **FAST)
        evaluator = FrequencyEvaluator(problem, SearchStats())
        with BatchMaterializer(problem, config) as pool:
            actual_sets = pool.materialize_batch(evaluator, requests)
            final_mode = pool.mode
        for left, right in zip(expected_sets, actual_sets):
            assert left.as_dict() == right.as_dict()
        counters = evaluator.stats.counters
        assert counters.get("fault.pool_rebuilds", 0) == 1
        assert counters.get("fault.demotions", 0) >= 1
        assert final_mode in ("threads", "serial")


class TestShardIncognito:
    def test_search_matches_serial(self):
        problem = make_random_problem(31, num_rows=45, num_attributes=3)
        baseline = basic_incognito(problem, 2)
        with use_execution(shard_config(shard_rows=8)):
            sharded = basic_incognito(problem, 2)
        assert sharded.anonymous_nodes == baseline.anonymous_nodes
        assert sharded.stats.table_scans == baseline.stats.table_scans
        assert (
            sharded.stats.frequency_set_rows
            == baseline.stats.frequency_set_rows
        )

    def test_kill_resume_equals_uninterrupted(self, tmp_path):
        """A shard-mode run killed at a checkpoint resumes to the serial
        answer with identical structural accounting."""
        problem = make_random_problem(32, num_rows=45, num_attributes=3)
        baseline = basic_incognito(problem, 2)

        path = tmp_path / "run.ckpt.json"
        with use_execution(shard_config(shard_rows=8)):
            with pytest.raises(Killed):
                basic_incognito(
                    problem, 2, checkpoint=BombStore(path, bomb_after=1)
                )
            resumed = basic_incognito(
                problem, 2, checkpoint=CheckpointStore(path), resume=True
            )
        assert resumed.anonymous_nodes == baseline.anonymous_nodes
        baseline_freq = frequency_counters(baseline.stats.counters)
        resumed_freq = frequency_counters(resumed.stats.counters)
        assert resumed_freq == baseline_freq
