"""Differential suite: every algorithm vs. a scan-per-node oracle.

Hypothesis generates small random problems (2–4 QI attributes, mixed
hierarchy shapes, 4–40 rows) and asserts that the complete algorithms —
basic / super-roots / cube Incognito and exhaustive bottom-up — return
exactly the oracle's k-anonymous node set, and that Samarati's binary
search finds a minimal-height member of it.  The module-scoped fixtures
(see ``conftest.py``) run every example serially and on a two-worker
thread pool, with the frequency-set cache off and on: four combinations,
all of which must be observationally identical.

The oracle trusts no algorithm machinery: it scans the base table once
per lattice node and applies the k-anonymity definition directly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    basic_incognito,
    bottom_up_search,
    cube_incognito,
    samarati_binary_search,
    superroots_incognito,
)
from repro.core.anonymity import compute_frequency_set
from repro.core.fscache import FrequencySetCache
from repro.core.problem import PreparedTable
from repro.parallel import ExecutionConfig
from tests.conftest import make_random_problem

pytestmark = pytest.mark.differential

#: The sound-and-complete algorithms, all of which must agree exactly.
COMPLETE_ALGORITHMS = (
    basic_incognito,
    superroots_incognito,
    cube_incognito,
    bottom_up_search,
)

#: Structural counters that must be identical across execution modes.
STRUCTURAL_COUNTERS = (
    "nodes.checked",
    "nodes.marked",
    "frequency.table_scans",
    "frequency.rollups",
    "frequency.rollup_source_rows",
)


def assert_dist_metrics_identical(a, b, context=""):
    """The ``dist.*`` histogram family must be *bit-identical* across
    execution modes: its observations are data values (row counts), the
    evaluation plan is fixed in the parent, and the histogram merge is
    exact and order-free — so not just the summaries but the full bucket
    state must match.  (``latency.*``/``worker.*`` are wall-clock and OS
    telemetry; only their merge algebra is deterministic, so they are
    deliberately excluded.)
    """
    dist_a = a.stats.metrics.filtered("dist.")
    dist_b = b.stats.metrics.filtered("dist.")
    assert set(dist_a) == set(dist_b), context
    for name, histogram in dist_a.items():
        assert histogram == dist_b[name], f"{context}: {name}"


def oracle_anonymous_nodes(problem: PreparedTable, k: int) -> set:
    """Every k-anonymous node of the full lattice, by definition."""
    lattice = problem.lattice()
    anonymous = set()
    for height in range(lattice.max_height + 1):
        for node in lattice.nodes_at_height(height):
            if compute_frequency_set(problem, node).is_k_anonymous(k):
                anonymous.add(node)
    return anonymous


@given(seed=st.integers(0, 2**20), k=st.integers(1, 6))
@settings(max_examples=50)
def test_complete_algorithms_match_oracle(execution, cache, seed, k):
    problem = make_random_problem(seed)
    expected = oracle_anonymous_nodes(problem, k)
    for algorithm in COMPLETE_ALGORITHMS:
        result = algorithm(problem, k, execution=execution, cache=cache)
        assert set(result.anonymous_nodes) == expected, algorithm.__name__


@given(seed=st.integers(0, 2**20), k=st.integers(1, 6))
@settings(max_examples=25)
def test_binary_search_finds_minimal_height(execution, cache, seed, k):
    problem = make_random_problem(seed)
    expected = oracle_anonymous_nodes(problem, k)
    result = samarati_binary_search(
        problem, k, execution=execution, cache=cache
    )
    if not expected:
        assert result.anonymous_nodes == []
    else:
        (found,) = result.anonymous_nodes
        assert found in expected
        assert found.height == min(node.height for node in expected)


def test_process_pool_matches_serial_exactly():
    """Processes-mode runs are byte-identical to serial, counters included.

    A dedicated seed-listed test (not hypothesis) because a process pool
    per generated example would dominate the suite's runtime.
    """
    execution = ExecutionConfig(mode="processes", workers=2)
    for seed in (3, 11, 42):
        problem = make_random_problem(seed, num_rows=30)
        for k in (2, 3):
            serial = basic_incognito(problem, k)
            parallel = basic_incognito(problem, k, execution=execution)
            assert parallel.anonymous_nodes == serial.anonymous_nodes
            for key in STRUCTURAL_COUNTERS:
                assert parallel.stats.counters.get(key) == serial.stats.counters.get(
                    key
                ), key
            assert_dist_metrics_identical(
                parallel, serial, f"processes seed={seed} k={k}"
            )


def test_worker_metric_merge_identical_across_modes():
    """Merged ``dist.*`` histograms are bit-identical serial vs threads vs
    processes, and pool runs ship uniform ``worker.*`` telemetry.

    The chunk payloads carry per-worker MetricSet deltas that the parent
    merges in submission order; because the merge is exact and the
    ``dist.*`` observations are plan-determined data values, every
    execution mode must converge on the same histogram state.  Serial runs
    have no chunks, hence no ``worker.*`` instruments, by construction.
    """
    threads = ExecutionConfig(mode="threads", workers=2)
    processes = ExecutionConfig(mode="processes", workers=2)
    for seed in (3, 42):
        problem = make_random_problem(seed, num_rows=30)
        serial = basic_incognito(problem, 2)
        threaded = basic_incognito(problem, 2, execution=threads)
        pooled = basic_incognito(problem, 2, execution=processes)
        assert_dist_metrics_identical(threaded, serial, f"threads seed={seed}")
        assert_dist_metrics_identical(pooled, serial, f"processes seed={seed}")
        # Pool modes describe their chunks uniformly...
        for result, mode in ((threaded, "threads"), (pooled, "processes")):
            workerish = result.stats.metrics.filtered("worker.")
            assert "worker.chunk_jobs" in workerish, mode
            assert "worker.chunk_seconds" in workerish, mode
            assert "worker.queue_wait_seconds" in workerish, mode
            # ...and every dispatched job is accounted for exactly once.
            assert workerish["worker.chunk_jobs"].sum == (
                threaded.stats.metrics.get("worker.chunk_jobs").sum
            ), mode
        # ...while pure serial execution never fabricates worker telemetry.
        assert serial.stats.metrics.filtered("worker.") == {}


def test_cache_does_not_change_thread_pool_results():
    """One shared cache across problems + thread pool stays transparent.

    Re-running the same problem against a warm cache must produce the
    same node set with zero fresh table scans (everything is a hit), and
    switching problems must invalidate cleanly.
    """
    cache = FrequencySetCache()
    execution = ExecutionConfig(mode="threads", workers=2)
    for seed in (5, 6):
        problem = make_random_problem(seed, num_rows=25)
        cold = basic_incognito(problem, 2, execution=execution, cache=cache)
        warm = basic_incognito(problem, 2, execution=execution, cache=cache)
        assert warm.anonymous_nodes == cold.anonymous_nodes
        assert warm.stats.table_scans == 0
        assert warm.stats.cache_hits > 0
