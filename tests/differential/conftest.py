"""Fixtures for the differential suite: execution × cache combinations.

Both fixtures are module-scoped (hypothesis forbids function-scoped
fixtures inside ``@given`` tests), so one combination spans every
generated example of a module:

* the *execution* axis runs the same algorithms serially and on a
  two-worker thread pool — results must be indistinguishable;
* the *cache* axis shares one :class:`FrequencySetCache` across *all*
  examples, deliberately: every new random problem has a new fingerprint,
  so each example also exercises the bind-and-invalidate path, and within
  an example the algorithms exercise cross-algorithm reuse.  (The cache
  is only ever touched from the test thread — planning and admission
  happen in the parent even under the thread pool.)

Process-pool execution is covered by dedicated seed-listed tests in
``test_differential.py`` rather than the hypothesis fan — a process pool
per generated example would dominate the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.core.fscache import FrequencySetCache
from repro.parallel import ExecutionConfig


@pytest.fixture(scope="module", params=["serial", "threads-2"])
def execution(request) -> ExecutionConfig:
    if request.param == "serial":
        return ExecutionConfig()
    return ExecutionConfig(mode="threads", workers=2)


@pytest.fixture(scope="module", params=["cache-off", "cache-on"])
def cache(request) -> FrequencySetCache | None:
    if request.param == "cache-off":
        return None
    return FrequencySetCache()
