"""Shared fixtures and helpers for the test suite.

Hypothesis runs under one of two registered profiles, selected with the
``HYPOTHESIS_PROFILE`` environment variable:

* ``dev`` (default) — normal randomized exploration for local runs;
* ``ci`` — derandomized (fixed seed derived from each test) with no
  deadline, so CI failures are reproducible and slow machines don't flake.
"""

from __future__ import annotations

import os
import random

import pytest

try:
    from hypothesis import settings

    settings.register_profile("dev", deadline=None)
    settings.register_profile(
        "ci", deadline=None, derandomize=True, print_blob=True
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis-less environments
    pass

from repro.core.problem import PreparedTable
from repro.datasets.patients import (
    patients_hierarchies,
    patients_problem,
    patients_table,
    voter_table,
)
from repro.hierarchy import (
    RangeHierarchy,
    RoundingHierarchy,
    SuppressionHierarchy,
    TaxonomyHierarchy,
)
from repro.relational.table import Table


@pytest.fixture
def patients() -> Table:
    return patients_table()


@pytest.fixture
def voters() -> Table:
    return voter_table()


@pytest.fixture
def patients_prob() -> PreparedTable:
    return patients_problem()


def make_random_problem(
    seed: int,
    *,
    num_rows: int | None = None,
    num_attributes: int | None = None,
) -> PreparedTable:
    """A small random anonymization problem for cross-checking algorithms.

    Attributes draw from three hierarchy shapes (suppression, rounding,
    two-level taxonomy) with small domains, so exhaustive search stays
    cheap while exercising mixed heights.
    """
    rng = random.Random(seed)
    if num_attributes is None:
        num_attributes = rng.randint(2, 4)
    if num_rows is None:
        num_rows = rng.randint(4, 40)

    hierarchies = {}
    columns: dict[str, list] = {}
    for position in range(num_attributes):
        name = f"q{position}"
        shape = rng.choice(["suppress", "round", "taxonomy"])
        if shape == "suppress":
            domain = [f"v{position}_{i}" for i in range(rng.randint(2, 5))]
            hierarchies[name] = SuppressionHierarchy()
        elif shape == "round":
            digits = rng.randint(2, 3)
            domain = [
                str(rng.randint(0, 10 ** digits - 1)).rjust(digits, "0")
                for _ in range(rng.randint(2, 6))
            ]
            domain = sorted(set(domain))
            hierarchies[name] = RoundingHierarchy(digits)
        else:
            leaves = [f"l{position}_{i}" for i in range(rng.randint(3, 6))]
            half = max(1, len(leaves) // 2)
            hierarchies[name] = TaxonomyHierarchy.grouped(
                {"g0": leaves[:half], "g1": leaves[half:]}
            )
            domain = leaves
        columns[name] = [rng.choice(domain) for _ in range(num_rows)]
    table = Table.from_columns(columns)
    return PreparedTable(table, hierarchies)


@pytest.fixture
def random_problem() -> PreparedTable:
    return make_random_problem(0)


def tiny_numeric_problem() -> PreparedTable:
    """A fixed numeric problem with a range hierarchy, used in many tests."""
    table = Table.from_columns(
        {
            "age": [21, 22, 23, 24, 31, 32, 33, 34, 41, 42],
            "sex": ["M", "F", "M", "F", "M", "F", "M", "F", "M", "F"],
        }
    )
    hierarchies = {
        "age": RangeHierarchy([5, 10], suppress_top=True),
        "sex": SuppressionHierarchy(),
    }
    return PreparedTable(table, hierarchies)
