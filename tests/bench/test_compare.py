"""The bench regression gate: summaries, thresholds, exit codes."""

import copy
import json

import pytest

from repro.bench.compare import (
    DEFAULT_MIN_SECONDS,
    SUMMARY_KIND,
    SUMMARY_SCHEMA_VERSION,
    compare_summaries,
    load_summary,
    main,
    summarize_document,
    workload_key,
)


def _run(figure="fig10", database="adults", k=2, x=3, algorithm="Basic",
         elapsed=1.0):
    return {
        "figure": figure,
        "database": database,
        "k": k,
        "x_name": "qid_size",
        "x_value": x,
        "algorithm": algorithm,
        "elapsed_seconds": elapsed,
        "solutions": 6,
        "counters": {"nodes_checked": 13, "table_scans": 8, "rollups": 5},
        "metrics": {
            "latency.scan_seconds": {
                "count": 8, "sum": 0.4, "min": 0.01, "max": 0.2,
                "p50": 0.05, "p90": 0.1, "p99": 0.2,
            },
            "never.recorded": {"count": 0},
        },
    }


def _document(runs):
    return {
        "schema_version": 2,
        "benchmark": "incognito",
        "config": {"quick": True},
        "runs": runs,
    }


class TestSummarize:
    def test_workload_key_is_fully_qualified(self):
        assert workload_key(_run()) == "fig10/adults/qid_size=3/k=2/Basic"

    def test_summary_shape(self):
        summary = summarize_document(_document([_run()]))
        assert summary["kind"] == SUMMARY_KIND
        assert summary["schema_version"] == SUMMARY_SCHEMA_VERSION
        entry = summary["workloads"]["fig10/adults/qid_size=3/k=2/Basic"]
        assert entry["elapsed_seconds"] == 1.0
        assert entry["counters"]["nodes_checked"] == 13
        assert entry["counters"]["solutions"] == 6
        # Empty instruments are dropped; recorded ones keep quantiles.
        assert "never.recorded" not in entry["metrics"]
        assert entry["metrics"]["latency.scan_seconds"]["p99"] == 0.2

    def test_load_summary_accepts_both_forms(self, tmp_path):
        document = _document([_run()])
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(document))
        summarized = tmp_path / "summary.json"
        summarized.write_text(json.dumps(summarize_document(document)))
        assert load_summary(raw) == load_summary(summarized)

    def test_load_summary_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="neither a bench document"):
            load_summary(bad)

    def test_load_summary_rejects_wrong_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "kind": SUMMARY_KIND, "schema_version": 99, "workloads": {},
        }))
        with pytest.raises(ValueError, match="schema_version"):
            load_summary(bad)


class TestCompare:
    def test_identical_summaries_pass(self):
        summary = summarize_document(_document([_run(), _run(x=4)]))
        regressions, notes = compare_summaries(summary, summary)
        assert regressions == []
        assert notes == []

    def test_twenty_percent_slowdown_regresses(self):
        base = summarize_document(_document([_run(elapsed=1.0)]))
        slow = copy.deepcopy(base)
        key = "fig10/adults/qid_size=3/k=2/Basic"
        slow["workloads"][key]["elapsed_seconds"] = 1.25
        regressions, _ = compare_summaries(base, slow, threshold=0.2)
        assert len(regressions) == 1
        assert key in regressions[0]
        assert "+25.0%" in regressions[0]
        # The report carries the per-metric quantile diff.
        assert "latency.scan_seconds" in regressions[0]
        assert "p99" in regressions[0]

    def test_small_absolute_delta_is_noise(self):
        # +50% relative but only 1ms absolute: under the floor, not a
        # regression — quick-mode workloads run in microseconds.
        base = summarize_document(_document([_run(elapsed=0.002)]))
        jittery = copy.deepcopy(base)
        key = "fig10/adults/qid_size=3/k=2/Basic"
        jittery["workloads"][key]["elapsed_seconds"] = 0.003
        regressions, notes = compare_summaries(base, jittery, threshold=0.2)
        assert regressions == []
        assert any("ignored as noise" in note for note in notes)
        assert DEFAULT_MIN_SECONDS > 0.001

    def test_speedup_never_regresses(self):
        base = summarize_document(_document([_run(elapsed=2.0)]))
        fast = copy.deepcopy(base)
        key = "fig10/adults/qid_size=3/k=2/Basic"
        fast["workloads"][key]["elapsed_seconds"] = 0.5
        regressions, _ = compare_summaries(base, fast)
        assert regressions == []

    def test_missing_workload_regresses(self):
        base = summarize_document(_document([_run(), _run(x=4)]))
        partial = summarize_document(_document([_run()]))
        regressions, _ = compare_summaries(base, partial)
        assert len(regressions) == 1
        assert "missing" in regressions[0]

    def test_counter_drift_is_a_note_not_a_failure(self):
        base = summarize_document(_document([_run()]))
        drifted = copy.deepcopy(base)
        key = "fig10/adults/qid_size=3/k=2/Basic"
        drifted["workloads"][key]["counters"]["nodes_checked"] = 99
        regressions, notes = compare_summaries(base, drifted)
        assert regressions == []
        assert any("nodes_checked" in note for note in notes)

    def test_new_workload_is_a_note(self):
        base = summarize_document(_document([_run()]))
        grown = summarize_document(_document([_run(), _run(x=4)]))
        regressions, notes = compare_summaries(base, grown)
        assert regressions == []
        assert any("new workload" in note for note in notes)


class TestCli:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        document = _document([_run(), _run(x=4)])
        a = self._write(tmp_path, "a.json", document)
        b = self._write(tmp_path, "b.json", document)
        assert main([a, b, "--threshold", "0.2"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero_with_quantile_report(
        self, tmp_path, capsys
    ):
        base = _document([_run(elapsed=1.0)])
        slow = copy.deepcopy(base)
        slow["runs"][0]["elapsed_seconds"] = 1.3
        a = self._write(tmp_path, "a.json", base)
        b = self._write(tmp_path, "b.json", slow)
        assert main([a, b, "--threshold", "0.2"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "latency.scan_seconds" in out  # per-workload quantile diff

    def test_threshold_flag_is_respected(self, tmp_path):
        base = _document([_run(elapsed=1.0)])
        slow = copy.deepcopy(base)
        slow["runs"][0]["elapsed_seconds"] = 1.3
        a = self._write(tmp_path, "a.json", base)
        b = self._write(tmp_path, "b.json", slow)
        assert main([a, b, "--threshold", "0.5"]) == 0

    def test_summarize_writes_summary_file(self, tmp_path):
        a = self._write(tmp_path, "a.json", _document([_run()]))
        out = tmp_path / "baseline.json"
        assert main(["--summarize", a, "-o", str(out)]) == 0
        summary = json.loads(out.read_text())
        assert summary["kind"] == SUMMARY_KIND
        assert len(summary["workloads"]) == 1

    def test_summarize_to_stdout(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _document([_run()]))
        assert main(["--summarize", a]) == 0
        assert json.loads(capsys.readouterr().out)["kind"] == SUMMARY_KIND

    def test_compare_requires_current(self, tmp_path):
        a = self._write(tmp_path, "a.json", _document([_run()]))
        with pytest.raises(SystemExit):
            main([a])

    def test_committed_baseline_matches_current_schema(self):
        # The repo ships benchmarks/baseline.json for CI; it must load.
        from pathlib import Path

        baseline = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baseline.json"
        )
        summary = load_summary(baseline)
        assert summary["workloads"]
