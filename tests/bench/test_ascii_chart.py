"""Tests for the ASCII chart renderer."""

from repro.bench.ascii_chart import _scaled, format_series_chart
from repro.bench.harness import MeasuredRun, Series


def make_series() -> list[Series]:
    fast = Series("Fast Algo")
    slow = Series("Slow Algorithm")
    for x, (f, s) in zip((3, 4), ((0.1, 1.0), (0.2, 10.0))):
        fast.add(x, MeasuredRun("Fast Algo", f, 1, 1, 0, 1))
        slow.add(x, MeasuredRun("Slow Algorithm", s, 1, 1, 0, 1))
    return [fast, slow]


class TestScaled:
    def test_zero_value(self):
        assert _scaled(0.0, 10.0, 40, log=True) == 0

    def test_maximum_fills_width(self):
        assert _scaled(10.0, 10.0, 40, log=True) == 40
        assert _scaled(10.0, 10.0, 40, log=False) == 40

    def test_linear_half(self):
        assert _scaled(5.0, 10.0, 40, log=False) == 20

    def test_log_boosts_small_values(self):
        small_log = _scaled(0.1, 10.0, 40, log=True)
        small_linear = _scaled(0.1, 10.0, 40, log=False)
        assert small_log > small_linear

    def test_minimum_one_column_for_positive(self):
        assert _scaled(1e-9, 10.0, 40, log=True) >= 1


class TestFormatChart:
    def test_contains_labels_and_bars(self):
        chart = format_series_chart("My Fig", "QID", make_series())
        assert "My Fig" in chart
        assert "Fast Algo" in chart and "Slow Algorithm" in chart
        assert "#" in chart
        assert "QID = 3" in chart and "QID = 4" in chart

    def test_longer_times_get_longer_bars(self):
        chart = format_series_chart("T", "x", make_series(), log=False)
        lines = {line.strip().split()[0]: line for line in chart.splitlines() if "#" in line}
        fast_bar = lines["Fast"].count("#")
        slow_bar = lines["Slow"].count("#")
        assert slow_bar > fast_bar

    def test_empty_series(self):
        assert "(no data)" in format_series_chart("T", "x", [])

    def test_scale_note(self):
        assert "log" in format_series_chart("T", "x", make_series())
        assert "linear" in format_series_chart(
            "T", "x", make_series(), log=False
        )
