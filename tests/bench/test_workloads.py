"""Tests for the figure workload builders (at miniature scale)."""

import pytest

from repro.bench.workloads import (
    FIGURE10_QI_SIZES,
    FIGURE11_KS,
    figure10_sweep,
    figure11_sweep,
    figure12_sweep,
    format_nodes_table,
    make_problem,
    nodes_searched_table,
    release_problem,
    shard_scale_sweep,
)
from repro.parallel import ExecutionConfig, use_execution

ROWS = 800  # miniature scale: exercise the plumbing, not the timings


class TestMakeProblem:
    def test_adults(self):
        problem = make_problem("adults", 4, rows=ROWS)
        assert len(problem.quasi_identifier) == 4
        assert problem.num_rows == ROWS

    def test_landsend(self):
        problem = make_problem("landsend", 3, rows=ROWS)
        assert len(problem.quasi_identifier) == 3

    def test_unknown_database(self):
        with pytest.raises(ValueError):
            make_problem("nope", 3)

    def test_landsend_is_shm_backed_under_shards(self):
        config = ExecutionConfig(mode="shards", workers=2)
        with use_execution(config):
            problem = make_problem("landsend", 3, rows=ROWS)
        try:
            assert getattr(problem, "_shm_store", None) is not None
        finally:
            release_problem(problem)
        assert problem._shm_store.closed

    def test_release_problem_is_a_noop_without_store(self):
        release_problem(make_problem("adults", 3, rows=ROWS))


class TestSweepShapes:
    def test_figure10_constants(self):
        assert FIGURE10_QI_SIZES["adults"] == (3, 4, 5, 6, 7, 8, 9)
        assert FIGURE11_KS == (2, 5, 10, 25, 50)

    def test_figure10_miniature(self):
        series = figure10_sweep(
            "adults",
            k=2,
            qi_sizes=[3, 4],
            algorithms=["Basic Incognito", "Binary Search"],
            rows=ROWS,
        )
        assert [line.label for line in series] == [
            "Basic Incognito", "Binary Search",
        ]
        assert all(line.x_values == [3, 4] for line in series)
        assert all(run.elapsed_seconds > 0 for line in series for run in line.runs)

    def test_figure11_miniature(self):
        series = figure11_sweep("landsend", ks=[2, 5], rows=ROWS)
        labels = [line.label for line in series]
        assert labels == [
            "Binary Search (QID = 6)",
            "Basic Incognito (QID = 8)",
            "Super-roots Incognito (QID = 8)",
        ]
        assert all(line.x_values == [2, 5] for line in series)

    def test_figure12_miniature(self):
        line = figure12_sweep("adults", qi_sizes=[3, 4], rows=ROWS)
        assert line.x_values == [3, 4]
        for run in line.runs:
            assert run.cube_build_seconds > 0
            assert run.anonymization_seconds >= 0

    def test_nodes_searched_miniature(self):
        rows = nodes_searched_table(qi_sizes=[3, 4], rows=ROWS)
        assert [qid for qid, _, _ in rows] == [3, 4]
        for _, bottom_up, incognito in rows:
            assert bottom_up > 0 and incognito > 0

    def test_nodes_table_formatting(self):
        text = format_nodes_table([(3, 14, 14), (4, 47, 35)])
        assert "QID size" in text
        assert "47" in text and "35" in text

    def test_shard_scale_sweep_miniature(self):
        messages = []
        series = shard_scale_sweep(
            rows=2_000,
            workers=2,
            shard_rows=512,
            progress=messages.append,
        )
        assert [line.label for line in series] == [
            "Basic Incognito (serial)", "Basic Incognito (shards)",
        ]
        for line in series:
            # Runs are relabelled so the bench gate keys them apart.
            assert line.runs[0].algorithm == line.label
            assert line.runs[0].elapsed_seconds > 0
        # Same search either way: identical structural accounting.
        serial_run, shard_run = series[0].runs[0], series[1].runs[0]
        assert serial_run.table_scans == shard_run.table_scans
        assert serial_run.solutions == shard_run.solutions
        assert messages and all("shard[" in m for m in messages)

    def test_progress_callback_invoked(self):
        messages = []
        figure10_sweep(
            "adults",
            k=2,
            qi_sizes=[3],
            algorithms=["Basic Incognito"],
            rows=ROWS,
            progress=messages.append,
        )
        assert messages and "fig10" in messages[0]
