"""Tests for the figure workload builders (at miniature scale)."""

import pytest

from repro.bench.workloads import (
    FIGURE10_QI_SIZES,
    FIGURE11_KS,
    figure10_sweep,
    figure11_sweep,
    figure12_sweep,
    format_nodes_table,
    make_problem,
    nodes_searched_table,
)

ROWS = 800  # miniature scale: exercise the plumbing, not the timings


class TestMakeProblem:
    def test_adults(self):
        problem = make_problem("adults", 4, rows=ROWS)
        assert len(problem.quasi_identifier) == 4
        assert problem.num_rows == ROWS

    def test_landsend(self):
        problem = make_problem("landsend", 3, rows=ROWS)
        assert len(problem.quasi_identifier) == 3

    def test_unknown_database(self):
        with pytest.raises(ValueError):
            make_problem("nope", 3)


class TestSweepShapes:
    def test_figure10_constants(self):
        assert FIGURE10_QI_SIZES["adults"] == (3, 4, 5, 6, 7, 8, 9)
        assert FIGURE11_KS == (2, 5, 10, 25, 50)

    def test_figure10_miniature(self):
        series = figure10_sweep(
            "adults",
            k=2,
            qi_sizes=[3, 4],
            algorithms=["Basic Incognito", "Binary Search"],
            rows=ROWS,
        )
        assert [line.label for line in series] == [
            "Basic Incognito", "Binary Search",
        ]
        assert all(line.x_values == [3, 4] for line in series)
        assert all(run.elapsed_seconds > 0 for line in series for run in line.runs)

    def test_figure11_miniature(self):
        series = figure11_sweep("landsend", ks=[2, 5], rows=ROWS)
        labels = [line.label for line in series]
        assert labels == [
            "Binary Search (QID = 6)",
            "Basic Incognito (QID = 8)",
            "Super-roots Incognito (QID = 8)",
        ]
        assert all(line.x_values == [2, 5] for line in series)

    def test_figure12_miniature(self):
        line = figure12_sweep("adults", qi_sizes=[3, 4], rows=ROWS)
        assert line.x_values == [3, 4]
        for run in line.runs:
            assert run.cube_build_seconds > 0
            assert run.anonymization_seconds >= 0

    def test_nodes_searched_miniature(self):
        rows = nodes_searched_table(qi_sizes=[3, 4], rows=ROWS)
        assert [qid for qid, _, _ in rows] == [3, 4]
        for _, bottom_up, incognito in rows:
            assert bottom_up > 0 and incognito > 0

    def test_nodes_table_formatting(self):
        text = format_nodes_table([(3, 14, 14), (4, 47, 35)])
        assert "QID size" in text
        assert "47" in text and "35" in text

    def test_progress_callback_invoked(self):
        messages = []
        figure10_sweep(
            "adults",
            k=2,
            qi_sizes=[3],
            algorithms=["Basic Incognito"],
            rows=ROWS,
            progress=messages.append,
        )
        assert messages and "fig10" in messages[0]
