"""Tests for the benchmark harness."""

from repro.bench.harness import (
    ALGORITHMS,
    EXTRA_ALGORITHMS,
    MeasuredRun,
    Series,
    format_series_table,
    run_algorithm,
)
from repro.datasets.patients import patients_problem


class TestAlgorithmsRegistry:
    def test_six_figure10_lines(self):
        assert set(ALGORITHMS) == {
            "Bottom-Up (w/o rollup)",
            "Binary Search",
            "Bottom-Up (w/ rollup)",
            "Basic Incognito",
            "Cube Incognito",
            "Super-roots Incognito",
        }

    def test_datafly_available_as_extra(self):
        assert "Datafly" in EXTRA_ALGORITHMS


class TestRunAlgorithm:
    def test_runs_and_measures(self):
        run = run_algorithm("Basic Incognito", patients_problem(), 2)
        assert run.elapsed_seconds > 0
        assert run.solutions == 5
        assert run.nodes_checked > 0

    def test_repeats_keep_fastest(self):
        run = run_algorithm("Binary Search", patients_problem(), 2, repeats=3)
        assert run.elapsed_seconds > 0

    def test_cube_records_build_split(self):
        run = run_algorithm("Cube Incognito", patients_problem(), 2)
        assert run.cube_build_seconds > 0
        assert run.anonymization_seconds >= 0

    def test_every_registered_algorithm_runs(self):
        problem = patients_problem()
        for name in list(ALGORITHMS) + list(EXTRA_ALGORITHMS):
            run = run_algorithm(name, problem, 2)
            assert isinstance(run, MeasuredRun)
            assert run.algorithm == name

    def test_all_fields_come_from_the_same_best_run(self, monkeypatch):
        """Regression: never mix the fastest repeat's wall-clock with
        another repeat's counters — every reported field must come from
        the single best (fastest) execution."""
        from repro.core.result import AnonymizationResult
        from repro.core.stats import SearchStats

        def result(elapsed, scans):
            return AnonymizationResult(
                algorithm="Scripted",
                k=2,
                anonymous_nodes=[],
                stats=SearchStats(
                    elapsed_seconds=elapsed,
                    table_scans=scans,
                    rollups=scans * 2,
                    nodes_checked=scans * 3,
                ),
            )

        # Three repeats; the middle one is fastest and must win wholesale.
        results = iter([result(3.0, 30), result(1.0, 10), result(2.0, 20)])
        monkeypatch.setitem(
            EXTRA_ALGORITHMS, "Scripted", lambda p, k: next(results)
        )
        run = run_algorithm("Scripted", patients_problem(), 2, repeats=3)
        assert run.elapsed_seconds == 1.0
        assert run.table_scans == 10
        assert run.rollups == 20
        assert run.nodes_checked == 30
        assert run.counters["frequency.table_scans"] == 10

    def test_measured_run_projects_every_stats_field(self):
        run = run_algorithm("Cube Incognito", patients_problem(), 2)
        # The structured counters block must mirror the dotted snapshot.
        assert run.counters["frequency.table_scans"] == run.table_scans
        assert run.counters["frequency.rollups"] == run.rollups
        assert run.counters["frequency.projections"] == run.projections
        assert run.counters["nodes.checked"] == run.nodes_checked
        assert run.cube_build_scans > 0
        assert run.peak_frequency_set_rows > 0
        assert run.frequency_set_rows >= run.peak_frequency_set_rows


class TestFormatting:
    def test_table_layout(self):
        series = Series("Algo A")
        series.add(3, MeasuredRun("Algo A", 1.5, 10, 5, 5, 2))
        series.add(4, MeasuredRun("Algo A", 2.5, 20, 10, 10, 2))
        text = format_series_table("My Title", "QID", [series])
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert "QID" in lines[1] and "Algo A" in lines[1]
        assert "1.500s" in text and "2.500s" in text

    def test_custom_value_extractor(self):
        series = Series("A")
        series.add(1, MeasuredRun("A", 5.0, 1, 1, 0, 1, cube_build_seconds=2.0))
        text = format_series_table(
            "T", "x", [series], value=lambda run: run.cube_build_seconds
        )
        assert "2.000s" in text

    def test_empty_series(self):
        assert "(no data)" in format_series_table("T", "x", [])
