"""Tests for the benchmark harness."""

from repro.bench.harness import (
    ALGORITHMS,
    EXTRA_ALGORITHMS,
    MeasuredRun,
    Series,
    format_series_table,
    run_algorithm,
)
from repro.datasets.patients import patients_problem


class TestAlgorithmsRegistry:
    def test_six_figure10_lines(self):
        assert set(ALGORITHMS) == {
            "Bottom-Up (w/o rollup)",
            "Binary Search",
            "Bottom-Up (w/ rollup)",
            "Basic Incognito",
            "Cube Incognito",
            "Super-roots Incognito",
        }

    def test_datafly_available_as_extra(self):
        assert "Datafly" in EXTRA_ALGORITHMS


class TestRunAlgorithm:
    def test_runs_and_measures(self):
        run = run_algorithm("Basic Incognito", patients_problem(), 2)
        assert run.elapsed_seconds > 0
        assert run.solutions == 5
        assert run.nodes_checked > 0

    def test_repeats_keep_fastest(self):
        run = run_algorithm("Binary Search", patients_problem(), 2, repeats=3)
        assert run.elapsed_seconds > 0

    def test_cube_records_build_split(self):
        run = run_algorithm("Cube Incognito", patients_problem(), 2)
        assert run.cube_build_seconds > 0
        assert run.anonymization_seconds >= 0

    def test_every_registered_algorithm_runs(self):
        problem = patients_problem()
        for name in list(ALGORITHMS) + list(EXTRA_ALGORITHMS):
            run = run_algorithm(name, problem, 2)
            assert isinstance(run, MeasuredRun)
            assert run.algorithm == name


class TestFormatting:
    def test_table_layout(self):
        series = Series("Algo A")
        series.add(3, MeasuredRun("Algo A", 1.5, 10, 5, 5, 2))
        series.add(4, MeasuredRun("Algo A", 2.5, 20, 10, 10, 2))
        text = format_series_table("My Title", "QID", [series])
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert "QID" in lines[1] and "Algo A" in lines[1]
        assert "1.500s" in text and "2.500s" in text

    def test_custom_value_extractor(self):
        series = Series("A")
        series.add(1, MeasuredRun("A", 5.0, 1, 1, 0, 1, cube_build_seconds=2.0))
        text = format_series_table(
            "T", "x", [series], value=lambda run: run.cube_build_seconds
        )
        assert "2.000s" in text

    def test_empty_series(self):
        assert "(no data)" in format_series_table("T", "x", [])
