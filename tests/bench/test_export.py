"""Tests for the machine-readable benchmark export and its validator."""

import json

import pytest

from repro.bench.export import (
    BENCH_FILENAME,
    COUNTER_FIELDS,
    SCHEMA_VERSION,
    bench_document,
    run_record,
    validate_bench_document,
    write_bench_json,
)
from repro.bench.harness import run_algorithm
from repro.datasets.patients import patients_problem


def _valid_document():
    run = run_algorithm("Basic Incognito", patients_problem(), 2)
    record = run_record("fig10", "adults", 2, "qid_size", 3, run)
    return bench_document([record], {"adults_rows": 6, "quick": True})


class TestRunRecord:
    def test_counters_match_measured_run(self):
        run = run_algorithm("Cube Incognito", patients_problem(), 2)
        record = run_record("fig12", "adults", 2, "qid_size", 3, run)
        assert record["algorithm"] == "Cube Incognito"
        assert record["counters"]["table_scans"] == run.table_scans
        assert record["counters"]["rollups"] == run.rollups
        assert record["counters"]["projections"] == run.projections
        assert record["anonymization_seconds"] == pytest.approx(
            run.elapsed_seconds - run.cube_build_seconds
        )
        assert set(record["counters"]) == set(COUNTER_FIELDS)
        assert record["raw_counters"] == run.counters


class TestValidator:
    def test_valid_document_passes(self):
        assert validate_bench_document(_valid_document()) == []

    def test_non_object_rejected(self):
        assert validate_bench_document([1, 2]) != []
        assert validate_bench_document(None) != []

    def test_wrong_schema_version(self):
        document = _valid_document()
        document["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in e for e in validate_bench_document(document))

    def test_wrong_benchmark_name(self):
        document = _valid_document()
        document["benchmark"] = "other"
        assert any("benchmark" in e for e in validate_bench_document(document))

    def test_empty_runs_rejected(self):
        document = _valid_document()
        document["runs"] = []
        assert any("runs" in e for e in validate_bench_document(document))

    def test_missing_run_field_rejected(self):
        document = _valid_document()
        del document["runs"][0]["algorithm"]
        assert any("algorithm" in e for e in validate_bench_document(document))

    def test_negative_timing_rejected(self):
        document = _valid_document()
        document["runs"][0]["elapsed_seconds"] = -0.5
        assert any("elapsed_seconds" in e for e in validate_bench_document(document))

    @pytest.mark.parametrize("bad", [-1, 1.5, True, None, "3"])
    def test_malformed_counter_rejected(self, bad):
        document = _valid_document()
        document["runs"][0]["counters"]["table_scans"] = bad
        assert any("table_scans" in e for e in validate_bench_document(document))


class TestWriteBenchJson:
    def test_writes_valid_document(self, tmp_path):
        path = tmp_path / "out" / BENCH_FILENAME
        written = write_bench_json(path, _valid_document())
        assert written == path
        loaded = json.loads(path.read_text())
        assert validate_bench_document(loaded) == []

    def test_refuses_malformed_document(self, tmp_path):
        document = _valid_document()
        document["runs"][0]["counters"]["rollups"] = -3
        with pytest.raises(ValueError, match="rollups"):
            write_bench_json(tmp_path / BENCH_FILENAME, document)
        assert not (tmp_path / BENCH_FILENAME).exists()
