"""End-to-end tests of the figure runner's JSON export and --trace flag.

The acceptance bar (ISSUE): ``run_figures --quick`` emits a schema-valid
``BENCH_incognito.json`` whose scan/rollup counts for Basic vs Cube
Incognito match a fresh direct run's legacy ``SearchStats`` exactly, and
``--trace`` produces non-empty nested spans for at least the scan, rollup,
and groupby stages.
"""

import json

import pytest

from repro.bench import run_figures
from repro.bench.export import validate_bench_document
from repro.core.cube import cube_incognito
from repro.core.incognito import basic_incognito
from repro.datasets.adults import adults_problem
from repro.obs import read_json_lines


@pytest.fixture(scope="module")
def quick_output(tmp_path_factory):
    out = tmp_path_factory.mktemp("figures")
    json_path = out / "bench.json"
    trace_path = out / "trace.jsonl"
    code = run_figures.main(
        [
            "--quick",
            "--out", str(out),
            "--json", str(json_path),
            "--trace", str(trace_path),
        ]
    )
    assert code == 0
    return json.loads(json_path.read_text()), trace_path.read_text()


class TestQuickJsonExport:
    def test_document_is_schema_valid(self, quick_output):
        document, _ = quick_output
        assert validate_bench_document(document) == []
        assert document["config"]["quick"] is True
        assert document["config"]["adults_rows"] == run_figures.QUICK_ROWS

    def test_covers_every_algorithm_and_qi_size(self, quick_output):
        document, _ = quick_output
        runs = document["runs"]
        algorithms = {run["algorithm"] for run in runs}
        assert "Basic Incognito" in algorithms
        assert "Cube Incognito" in algorithms
        x_values = {
            run["x_value"] for run in runs if run["figure"] == "fig10"
        }
        assert x_values == set(run_figures.QUICK_QI_SIZES)
        # quick mode also carries the shard/incremental/service workloads
        figures = {run["figure"] for run in runs}
        assert {"fig10", "shard", "incremental", "service"} <= figures

    def test_service_workload_exports_throughput_and_p99(self, quick_output):
        document, _ = quick_output
        service = [
            run for run in document["runs"] if run["figure"] == "service"
        ]
        assert {run["algorithm"] for run in service} == {
            "Service (1 runner)",
            "Service (2 runners)",
        }
        for run in service:
            assert run["solutions"] == run_figures.QUICK_SERVICE_JOBS
            assert run["raw_counters"]["service.jobs_per_second"] > 0
            latency = run["metrics"]["latency.job_total_seconds"]
            assert latency["count"] == run_figures.QUICK_SERVICE_JOBS
            assert latency["p99"] >= latency["p50"] > 0

    def test_counters_match_fresh_search_stats_exactly(self, quick_output):
        """Basic vs Cube scan/rollup numbers in the JSON must equal the
        legacy SearchStats of a fresh identical run (determinism + the
        export reading the right fields)."""
        document, _ = quick_output
        by_key = {
            (run["algorithm"], run["x_value"]): run["counters"]
            for run in document["runs"]
        }
        for qi_size in run_figures.QUICK_QI_SIZES:
            problem = adults_problem(run_figures.QUICK_ROWS, qi_size=qi_size)
            for name, algorithm in (
                ("Basic Incognito", basic_incognito),
                ("Cube Incognito", cube_incognito),
            ):
                stats = algorithm(problem, run_figures.QUICK_K).stats
                counters = by_key[(name, qi_size)]
                assert counters["table_scans"] == stats.table_scans
                assert counters["rollups"] == stats.rollups
                assert counters["projections"] == stats.projections
                assert counters["nodes_checked"] == stats.nodes_checked


class TestQuickTrace:
    def test_trace_has_nested_scan_rollup_groupby_spans(self, quick_output):
        _, trace_text = quick_output
        records = read_json_lines(trace_text.splitlines())
        assert records
        names = {record["name"] for record in records}
        assert {"scan", "rollup", "groupby", "bench.run"} <= names
        # Nesting: group-bys sit under frequency evaluations, which sit
        # under per-run roots.
        groupbys = [r for r in records if r["name"] == "groupby"]
        assert groupbys and all(r["depth"] >= 1 for r in groupbys)
        roots = [r for r in records if r["parent_id"] is None]
        assert all(r["name"] == "bench.run" for r in roots)
        deepest = max(record["depth"] for record in records)
        assert deepest >= 2
