"""Cross-process trace stitching and validation (repro.obs.stitch)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.context import TraceContext
from repro.obs.stitch import (
    collect_trace_files,
    stitch_chrome,
    stitch_directory,
    stitch_summary,
    validate_chrome,
)

TRACE = "ab" * 16


def _record(
    span_id,
    name,
    *,
    pid,
    started,
    ended,
    parent_id=None,
    remote=False,
    process=None,
    thread=0,
):
    """A synthetic span record in the JsonLinesSink wire shape; the
    perf-counter fields are deliberately skewed per pid so only the unix
    instants can stitch correctly."""
    skew = pid * 1000.0
    return {
        "trace_id": TRACE,
        "span_id": span_id,
        "parent_id": parent_id,
        "remote": remote,
        "pid": pid,
        "process": process or f"proc-{pid}",
        "depth": 0,
        "name": name,
        "started": started - skew,
        "ended": ended - skew,
        "unix_started": started,
        "unix_ended": ended,
        "thread": thread,
        "duration_seconds": ended - started,
        "attrs": {},
        "counters": {},
    }


def _two_process_records():
    """A server span whose remote child ran in another process."""
    return [
        # children close (and are emitted) before parents
        _record(2, "service.job.run", pid=20, started=1.0, ended=4.0,
                parent_id=1, remote=True),
        _record(1, "service.job.launch", pid=10, started=0.5, ended=5.0),
    ]


class TestStitchChrome:
    def test_lanes_flows_and_metadata(self):
        doc = stitch_chrome(_two_process_records())
        events = doc["traceEvents"]
        validate_chrome(doc)
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in metadata} == {10, 20}
        assert {e["args"]["name"] for e in metadata} == {"proc-10", "proc-20"}
        flows = [e for e in events if e["ph"] in "sf"]
        assert len(flows) == 2
        start, finish = sorted(flows, key=lambda e: e["ph"], reverse=True)
        assert start["ph"] == "s" and start["pid"] == 10
        assert finish["ph"] == "f" and finish["pid"] == 20
        assert start["id"] == finish["id"]

    def test_wall_clock_rebase_spans_processes(self):
        doc = stitch_chrome(_two_process_records())
        begins = {
            e["name"]: e["ts"]
            for e in doc["traceEvents"]
            if e["ph"] == "B"
        }
        # launch started 0.5s before run on the shared wall clock, even
        # though the per-process perf clocks are wildly skewed
        assert begins["service.job.run"] - begins["service.job.launch"] == (
            pytest.approx(0.5e6)
        )

    def test_unresolved_remote_parent_is_root_without_flow(self):
        orphan = [
            _record(2, "service.job.run", pid=20, started=1.0, ended=4.0,
                    parent_id=999, remote=True),
        ]
        doc = stitch_chrome(orphan)
        validate_chrome(doc)
        assert not [e for e in doc["traceEvents"] if e["ph"] in "sf"]

    def test_unclosed_spans_are_dropped(self):
        records = _two_process_records()
        half_open = dict(records[0])
        half_open["span_id"] = 3
        half_open["unix_ended"] = None
        doc = stitch_chrome(records + [half_open])
        validate_chrome(doc)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "B"]
        assert names.count("service.job.run") == 1


class TestValidateChrome:
    def test_rejects_backwards_timestamps(self):
        doc = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 0, "ts": 10, "name": "a"},
                {"ph": "E", "pid": 1, "tid": 0, "ts": 5, "name": "a"},
            ]
        }
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome(doc)

    def test_rejects_unbalanced_nesting(self):
        doc = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 0, "ts": 1, "name": "a"},
            ]
        }
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome(doc)

    def test_rejects_mismatched_close_order(self):
        doc = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 0, "ts": 1, "name": "a"},
                {"ph": "B", "pid": 1, "tid": 0, "ts": 2, "name": "b"},
                {"ph": "E", "pid": 1, "tid": 0, "ts": 3, "name": "a"},
                {"ph": "E", "pid": 1, "tid": 0, "ts": 4, "name": "b"},
            ]
        }
        with pytest.raises(ValueError, match="closes"):
            validate_chrome(doc)

    def test_rejects_unpaired_flow(self):
        doc = {
            "traceEvents": [
                {"ph": "s", "pid": 1, "tid": 0, "ts": 1, "id": "x",
                 "name": "remote-parent", "cat": "remote"},
            ]
        }
        with pytest.raises(ValueError, match="flow"):
            validate_chrome(doc)

    def test_rejects_unknown_phase_and_bad_ts(self):
        with pytest.raises(ValueError, match="phase"):
            validate_chrome({"traceEvents": [{"ph": "Q", "ts": 1}]})
        with pytest.raises(ValueError, match="non-numeric"):
            validate_chrome(
                {"traceEvents": [
                    {"ph": "B", "pid": 1, "tid": 0, "ts": "x", "name": "a"}
                ]}
            )
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome({})


class TestSummary:
    def test_counts_links_and_processes(self):
        records = _two_process_records() + [
            _record(5, "worker.chunk", pid=30, started=2.0, ended=3.0,
                    parent_id=999, remote=True),
        ]
        summary = stitch_summary(records)
        assert summary["spans"] == 3
        assert summary["trace_ids"] == [TRACE]
        assert summary["remote_links"] == 2
        assert summary["resolved_links"] == 1
        assert summary["processes"]["30"]["spans"] == 1


class TestStitchDirectory:
    def test_stitches_real_tracer_output_across_files(self, tmp_path):
        # process A: a tracer with a fresh trace, parent span
        sink_a = obs.JsonLinesSink.open(str(tmp_path / "trace.jsonl"))
        tracer_a = obs.Tracer(sink_a)
        with tracer_a.span("parent") as sp:
            wire = sp.traceparent()
        sink_a.close()
        # process B (simulated): separate file, propagated context
        sink_b = obs.JsonLinesSink.open(
            str(tmp_path / "trace-worker-999.jsonl")
        )
        tracer_b = obs.Tracer(
            sink_b, context=TraceContext.from_traceparent(wire)
        )
        with tracer_b.span("child"):
            pass
        sink_b.close()

        chrome, summary = stitch_directory(tmp_path)
        validate_chrome(chrome)
        assert summary["trace_ids"] == [tracer_a.trace_id]
        assert summary["spans"] == 2
        assert summary["remote_links"] == 1
        assert summary["resolved_links"] == 1

    def test_missing_directory_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            stitch_directory(tmp_path / "empty")

    def test_collects_single_file_passthrough(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_two_process_records()[0]) + "\n")
        assert collect_trace_files(path) == [path]
