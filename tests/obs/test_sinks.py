"""Tests for span sinks and the JSON-lines round trip."""

import io
import json

from repro.obs import (
    InMemorySink,
    JsonLinesSink,
    NullSink,
    Tracer,
    read_json_lines,
)


class TestInMemorySink:
    def test_named_and_count(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("scan"):
            pass
        with tracer.span("rollup"):
            pass
        with tracer.span("scan"):
            pass
        assert sink.count("scan") == 2
        assert sink.count("rollup") == 1
        assert sink.count("missing") == 0
        assert [span.name for span in sink.named("scan")] == ["scan", "scan"]

    def test_roots(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        roots = sink.roots()
        assert [span.name for span in roots] == ["outer"]

    def test_clear(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("scan"):
            pass
        sink.clear()
        assert sink.spans == []


class TestNullSink:
    def test_discards(self):
        tracer = Tracer(NullSink())
        with tracer.span("scan"):
            pass  # nothing to assert beyond "does not raise"
        assert tracer.totals.get("span.scan") == 1


class TestJsonLinesRoundTrip:
    def _trace_to_lines(self) -> list[str]:
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        tracer = Tracer(sink)
        with tracer.span("bench.run", algorithm="Basic Incognito"):
            with tracer.span("scan") as scan:
                scan.set(node="<B0, Z0>")
                scan.incr("rows", 6)
            with tracer.span("rollup"):
                pass
        sink.close()
        return stream.getvalue().splitlines()

    def test_one_json_object_per_line(self):
        lines = self._trace_to_lines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert {"span_id", "parent_id", "depth", "name",
                    "duration_seconds", "attrs", "counters"} <= set(record)

    def test_read_json_lines_rebuilds_tree(self):
        records = read_json_lines(self._trace_to_lines())
        by_name = {record["name"]: record for record in records}
        root = by_name["bench.run"]
        assert root["parent_id"] is None
        assert [c["name"] for c in root["children"]] == ["scan", "rollup"]
        scan = by_name["scan"]
        assert scan["attrs"] == {"node": "<B0, Z0>"}
        assert scan["counters"] == {"rows": 6}
        assert scan["depth"] == 1

    def test_read_json_lines_ignores_blank_lines(self):
        lines = self._trace_to_lines()
        lines.insert(1, "")
        lines.append("   ")
        assert len(read_json_lines(lines)) == 3

    def test_orphan_children_stay_roots(self):
        # A parent that never closed (e.g. truncated trace) leaves its
        # children as roots rather than raising.
        lines = [json.dumps({"span_id": 5, "parent_id": 99, "depth": 1,
                             "name": "orphan", "duration_seconds": 0.0,
                             "attrs": {}, "counters": {}})]
        records = read_json_lines(lines)
        assert records[0]["name"] == "orphan"
        assert records[0]["children"] == []

    def test_non_serialisable_attrs_fall_back_to_str(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        tracer = Tracer(sink)
        with tracer.span("scan", node=object()) as sp:
            assert sp
        sink.flush()
        record = json.loads(stream.getvalue())
        assert isinstance(record["attrs"]["node"], str)

    def test_emission_is_buffered_until_flush(self):
        # Satellite: no write+flush syscall pair per span.  Closed spans
        # sit in the buffer (within the flush interval) until an explicit
        # flush, a full buffer, or close pushes them out.
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        tracer = Tracer(sink)
        with tracer.span("scan"):
            pass
        assert stream.getvalue() == ""
        tracer.flush()
        assert [json.loads(line)["name"]
                for line in stream.getvalue().splitlines()] == ["scan"]

    def test_full_buffer_forces_flush(self):
        from repro.obs.sinks import FLUSH_EVERY_SPANS

        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        tracer = Tracer(sink)
        for _ in range(FLUSH_EVERY_SPANS):
            with tracer.span("scan"):
                pass
        lines = stream.getvalue().splitlines()
        assert len(lines) == FLUSH_EVERY_SPANS

    def test_close_flushes_remaining_buffer(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        tracer = Tracer(sink)
        with tracer.span("rollup"):
            pass
        sink.close()
        assert [json.loads(line)["name"]
                for line in stream.getvalue().splitlines()] == ["rollup"]

    def test_open_owns_and_closes_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink.open(str(path))
        tracer = Tracer(sink)
        with tracer.span("scan"):
            pass
        sink.close()
        assert sink.stream.closed
        records = read_json_lines(path.read_text().splitlines())
        assert [r["name"] for r in records] == ["scan"]
