"""End-to-end: trace spans must agree with the legacy SearchStats numbers.

The acceptance bar for the observability layer is that it measures the
*same* events the paper's cost model counts: every ``scan`` span is one
``SearchStats.table_scans``, every ``rollup`` span one ``rollups``.
"""

import pytest

from repro import obs
from repro.core.cube import cube_incognito
from repro.core.incognito import basic_incognito
from repro.datasets.adults import adults_problem
from repro.obs import InMemorySink, Tracer

ROWS = 800
QI_SIZE = 3
K = 2


@pytest.fixture(scope="module")
def problem():
    return adults_problem(ROWS, qi_size=QI_SIZE)


def _traced(algorithm, problem):
    sink = InMemorySink()
    with obs.use_tracer(Tracer(sink)):
        result = algorithm(problem, K)
    return sink, result


class TestBasicIncognitoParity:
    def test_scan_and_rollup_spans_match_search_stats(self, problem):
        sink, result = _traced(basic_incognito, problem)
        stats = result.stats
        assert stats.table_scans > 0  # the workload exercised both paths
        assert stats.rollups > 0
        assert sink.count("scan") == stats.table_scans
        assert sink.count("rollup") == stats.rollups

    def test_iteration_spans_cover_every_subset_size(self, problem):
        sink, _ = _traced(basic_incognito, problem)
        sizes = [
            span.attrs["subset_size"]
            for span in sink.named("incognito.iteration")
        ]
        assert sizes == list(range(1, QI_SIZE + 1))

    def test_groupby_spans_nest_under_evaluations(self, problem):
        sink, _ = _traced(basic_incognito, problem)
        groupbys = sink.named("groupby")
        assert groupbys
        evaluation_ids = {
            span.span_id for span in sink.spans if span.name in ("scan", "rollup")
        }
        assert all(span.parent_id in evaluation_ids for span in groupbys)

    def test_tracer_totals_match_span_counts(self, problem):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with obs.use_tracer(tracer):
            basic_incognito(problem, K)
        assert tracer.totals.get("span.scan") == sink.count("scan")
        assert tracer.totals.get("span.rollup") == sink.count("rollup")


class TestCubeIncognitoParity:
    def test_projection_spans_match_search_stats(self, problem):
        sink, result = _traced(cube_incognito, problem)
        stats = result.stats
        assert stats.projections > 0
        assert sink.count("project") == stats.projections
        assert sink.count("scan") == stats.table_scans
        assert sink.count("rollup") == stats.rollups
        assert sink.count("cube.build") == 1


class TestTracingIsInert:
    def test_results_identical_with_and_without_tracing(self, problem):
        baseline = basic_incognito(problem, K)
        sink, traced = _traced(basic_incognito, problem)
        assert traced.anonymous_nodes == baseline.anonymous_nodes
        assert traced.stats.table_scans == baseline.stats.table_scans
        assert traced.stats.rollups == baseline.stats.rollups
        assert sink.spans  # and tracing actually recorded something
