"""Tests for the hierarchical CounterSet."""

from repro.obs import CounterSet


class TestRecording:
    def test_incr_creates_and_accumulates(self):
        counters = CounterSet()
        counters.incr("frequency.table_scans")
        counters.incr("frequency.table_scans", 4)
        assert counters.get("frequency.table_scans") == 5

    def test_get_default(self):
        assert CounterSet().get("missing") == 0
        assert CounterSet().get("missing", -1) == -1

    def test_set_overwrites(self):
        counters = CounterSet()
        counters.incr("a", 10)
        counters.set("a", 3)
        assert counters.get("a") == 3

    def test_note_max_keeps_high_water_mark(self):
        counters = CounterSet()
        counters.note_max("peak", 10)
        counters.note_max("peak", 4)
        counters.note_max("peak", 17)
        assert counters.get("peak") == 17

    def test_remove_drops_both_modes(self):
        counters = CounterSet()
        counters.incr("summed", 2)
        counters.note_max("peak", 9)
        counters.remove("summed")
        counters.remove("peak")
        counters.remove("never_existed")  # no-op, no raise
        assert "summed" not in counters
        assert "peak" not in counters

    def test_contains_and_len(self):
        counters = CounterSet()
        counters.incr("a.b")
        counters.note_max("m", 1)
        assert "a.b" in counters
        assert "m" in counters
        assert "a" not in counters
        assert len(counters) == 2
        assert set(counters) == {"a.b", "m"}


class TestAggregation:
    def test_total_sums_subtree(self):
        counters = CounterSet()
        counters.incr("frequency.table_scans", 3)
        counters.incr("frequency.rollups", 7)
        counters.incr("frequency.rows.scanned", 100)
        counters.incr("nodes.checked", 42)
        assert counters.total("frequency") == 110
        assert counters.total("frequency.rows") == 100
        assert counters.total("nodes") == 42
        assert counters.total("absent") == 0

    def test_total_includes_exact_name(self):
        counters = CounterSet()
        counters.incr("span.scan", 2)
        counters.incr("span", 1)
        assert counters.total("span") == 3

    def test_total_does_not_match_name_prefixes(self):
        counters = CounterSet()
        counters.incr("scans", 5)
        counters.incr("scan", 1)
        assert counters.total("scan") == 1

    def test_children_relative_names(self):
        counters = CounterSet()
        counters.incr("nodes.checked_by_size.2", 4)
        counters.incr("nodes.checked_by_size.3", 9)
        counters.incr("nodes.checked", 13)
        assert counters.children("nodes.checked_by_size") == {"2": 4, "3": 9}

    def test_as_tree_nests_dotted_names(self):
        counters = CounterSet()
        counters.incr("a.b.c", 1)
        counters.incr("a.b.d", 2)
        counters.incr("e", 3)
        assert counters.as_tree() == {"a": {"b": {"c": 1, "d": 2}}, "e": 3}

    def test_as_tree_handles_leaf_and_subtree_collision(self):
        counters = CounterSet()
        counters.incr("span", 1)
        counters.incr("span.scan", 2)
        tree = counters.as_tree()
        assert tree["span"][""] == 1
        assert tree["span"]["scan"] == 2


class TestCombination:
    def test_merge_sums_and_maxes(self):
        first = CounterSet()
        first.incr("scans", 3)
        first.note_max("peak", 10)
        second = CounterSet()
        second.incr("scans", 4)
        second.incr("rollups", 1)
        second.note_max("peak", 7)
        first.merge(second)
        assert first.get("scans") == 7
        assert first.get("rollups") == 1
        assert first.get("peak") == 10  # max, not 17

    def test_copy_is_independent(self):
        original = CounterSet()
        original.incr("a", 1)
        original.note_max("m", 5)
        duplicate = original.copy()
        duplicate.incr("a", 9)
        duplicate.note_max("m", 99)
        assert original.get("a") == 1
        assert original.get("m") == 5
        assert duplicate.get("a") == 10
        assert duplicate.get("m") == 99

    def test_equality(self):
        a = CounterSet({"x": 1})
        b = CounterSet({"x": 1})
        assert a == b
        b.note_max("m", 2)
        assert a != b

    def test_clear(self):
        counters = CounterSet({"x": 1})
        counters.note_max("m", 2)
        counters.clear()
        assert len(counters) == 0
        assert counters.as_dict() == {}

    def test_as_dict_includes_maxima(self):
        counters = CounterSet()
        counters.incr("sum", 2)
        counters.note_max("peak", 8)
        assert counters.as_dict() == {"sum": 2, "peak": 8}
