"""Sampler, SLO windows, and Prometheus exposition (repro.obs.telemetry)."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import Histogram, MetricSet
from repro.obs.telemetry import (
    Sample,
    SloPolicy,
    TelemetrySampler,
    evaluate_slo,
    parse_exposition,
    prometheus_exposition,
)


def _sample(ts, counters=None, gauges=None, latencies=()):
    metrics = MetricSet()
    for value in latencies:
        metrics.observe("latency.job_total_seconds", value)
    return Sample(
        ts=ts, counters=counters or {}, gauges=gauges or {}, metrics=metrics
    )


class TestHistogramDiff:
    def test_diff_isolates_window(self):
        earlier = Histogram()
        earlier.record(0.01)
        later = earlier.copy()
        later.record(5.0)
        later.record(6.0)
        delta = later.diff(earlier)
        assert delta.count == 2
        assert delta.sum == pytest.approx(11.0)
        assert delta.quantile(0.99) >= 5.0

    def test_diff_against_empty_is_copy(self):
        histogram = Histogram()
        histogram.record(1.0)
        delta = histogram.diff(Histogram())
        assert delta.count == 1
        assert delta.sum == pytest.approx(1.0)

    def test_diff_rejects_negative_delta(self):
        earlier = Histogram()
        earlier.record(1.0)
        with pytest.raises(ValueError):
            Histogram().diff(earlier)


class TestEvaluateSlo:
    def test_empty_or_single_sample_window_is_vacuously_ok(self):
        policy = SloPolicy(p99_latency_seconds=0.1, max_error_rate=0.1)
        assert evaluate_slo([], policy)["ok"]
        assert evaluate_slo([_sample(1.0, latencies=[9.0])], policy)["ok"]

    def test_latency_breach_uses_window_delta_only(self):
        policy = SloPolicy(p99_latency_seconds=0.5)
        slow_then = _sample(1.0, latencies=[9.0])
        # cumulative still contains the old slow job, but the window
        # delta (one 0.01s job) is clean
        now = _sample(2.0, latencies=[9.0, 0.01])
        status = evaluate_slo([slow_then, now], policy)
        assert status["ok"], status

        breach = evaluate_slo(
            [_sample(1.0), _sample(2.0, latencies=[9.0])], policy
        )
        assert not breach["ok"]
        entry = breach["breached"][0]
        assert entry["name"] == "p99_latency"
        assert entry["value"] >= 0.5
        assert "exceeds" in entry["detail"]

    def test_error_rate_breach_and_recovery(self):
        policy = SloPolicy(max_error_rate=0.25)
        t0 = _sample(1.0, counters={"service.jobs_failed": 0.0,
                                    "service.jobs_succeeded": 0.0})
        t1 = _sample(2.0, counters={"service.jobs_failed": 2.0,
                                    "service.jobs_succeeded": 2.0})
        status = evaluate_slo([t0, t1], policy)
        assert not status["ok"]
        assert status["breached"][0]["name"] == "error_rate"
        # same cumulative counts later: nothing failed inside the window
        t2 = _sample(3.0, counters={"service.jobs_failed": 2.0,
                                    "service.jobs_succeeded": 2.0})
        assert evaluate_slo([t1, t2], policy)["ok"]

    def test_queue_depth_is_instantaneous(self):
        policy = SloPolicy(max_queue_depth=3)
        deep = _sample(1.0, gauges={"queue_depth": 5.0})
        assert not evaluate_slo([deep], policy)["ok"]
        shallow = _sample(2.0, gauges={"queue_depth": 1.0})
        assert evaluate_slo([deep, shallow], policy)["ok"]

    def test_disabled_policy_never_breaches(self):
        status = evaluate_slo(
            [_sample(1.0, gauges={"queue_depth": 99.0})], SloPolicy()
        )
        assert status["ok"]


class TestTelemetrySampler:
    def _snapshot(self, counters=None, gauges=None):
        def snapshot_fn(lag):
            return {
                "counters": dict(counters or {}),
                "gauges": dict(gauges or {}),
                "metrics": MetricSet(),
            }

        return snapshot_fn

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            TelemetrySampler(self._snapshot(), interval=0)
        with pytest.raises(ValueError):
            TelemetrySampler(self._snapshot(), capacity=1)

    def test_ring_is_bounded(self):
        sampler = TelemetrySampler(
            self._snapshot(), interval=10.0, capacity=3
        )
        for _ in range(7):
            sampler.sample_now()
        history = sampler.history_document()
        assert len(history["samples"]) == 3
        assert history["capacity"] == 3
        assert sampler.slo_status()["samples"] == 3

    def test_history_reports_counter_deltas(self):
        values = iter([1.0, 4.0, 9.0])

        def snapshot_fn(lag):
            return {
                "counters": {"jobs": next(values)},
                "gauges": {"queue_depth": 0.0},
                "metrics": MetricSet(),
            }

        sampler = TelemetrySampler(snapshot_fn, interval=5.0)
        for _ in range(3):
            sampler.sample_now()
        samples = sampler.history_document()["samples"]
        assert [entry["counters"]["jobs"] for entry in samples] == [1, 4, 9]
        assert [entry["deltas"]["jobs"] for entry in samples] == [1, 3, 5]

    def test_transitions_fire_on_edges_only(self):
        depth = {"value": 0.0}

        def snapshot_fn(lag):
            return {
                "counters": {},
                "gauges": {"queue_depth": depth["value"]},
                "metrics": MetricSet(),
            }

        events = []
        sampler = TelemetrySampler(
            snapshot_fn,
            interval=5.0,
            policy=SloPolicy(max_queue_depth=2),
            transition=lambda kind, name, detail: events.append((kind, name)),
        )
        sampler.sample_now()
        assert events == []
        depth["value"] = 9.0
        sampler.sample_now()
        sampler.sample_now()  # still breached: no second event
        assert events == [("breach", "queue_depth")]
        assert not sampler.slo_status()["ok"]
        depth["value"] = 0.0
        sampler.sample_now()
        assert events == [("breach", "queue_depth"), ("recovery", "queue_depth")]
        assert sampler.slo_status()["ok"]

    def test_thread_lifecycle(self):
        sampler = TelemetrySampler(self._snapshot(), interval=0.01)
        sampler.start()
        try:
            deadline = 200
            while sampler.latest() is None and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
            assert sampler.latest() is not None
        finally:
            sampler.stop()
        assert sampler._thread is None


class TestPrometheusExposition:
    def _render(self):
        metrics = MetricSet()
        for value in (0.001, 0.5, 0.5, 120.0):
            metrics.observe("latency.job_total_seconds", value)
        return prometheus_exposition(
            {"service.jobs_submitted": 3, "telemetry.samples": 12},
            {"queue_depth": 2.0, "running": 1.0},
            metrics,
        )

    def test_round_trips_through_validator(self):
        families = parse_exposition(self._render())
        assert families["repro_service_jobs_submitted_total"]["type"] == "counter"
        assert families["repro_queue_depth"]["type"] == "gauge"
        histogram = families["repro_latency_job_total_seconds"]
        assert histogram["type"] == "histogram"
        names = {name for name, _, _ in histogram["samples"]}
        assert names == {
            "repro_latency_job_total_seconds_bucket",
            "repro_latency_job_total_seconds_sum",
            "repro_latency_job_total_seconds_count",
        }
        inf_bucket = [
            value
            for name, labels, value in histogram["samples"]
            if labels.get("le") == "+Inf"
        ]
        assert inf_bucket == [4]

    def test_counter_values_survive(self):
        families = parse_exposition(self._render())
        samples = families["repro_telemetry_samples_total"]["samples"]
        assert samples == [("repro_telemetry_samples_total", {}, 12.0)]

    def test_validator_rejects_type_after_samples(self):
        text = "repro_x_total 1\n# TYPE repro_x_total counter\n"
        with pytest.raises(ValueError, match="without # TYPE"):
            parse_exposition(text)

    def test_validator_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition("# TYPE repro_x counter\nrepro_x one\n")

    def test_validator_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            "repro_h_sum 1\n"
            "repro_h_count 1\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_exposition(text)

    def test_validator_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_exposition(text)

    def test_validator_rejects_count_mismatch(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_exposition(text)

    def test_special_values_render(self):
        text = prometheus_exposition(
            {"weird": math.inf}, {"nan_gauge": math.nan}, MetricSet()
        )
        assert "repro_weird_total +Inf" in text
        assert "repro_nan_gauge NaN" in text
        parse_exposition(text)
