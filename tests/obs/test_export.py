"""Chrome trace-event and folded-stack exporters."""

import json

from repro import obs
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    folded_stacks,
    parse_folded,
    render_trace,
)


def _record_spans():
    """A small real trace: root > (scan, rollup > groupby)."""
    sink = obs.InMemorySink()
    tracer = obs.Tracer(sink)
    with tracer.span("search"):
        with tracer.span("scan", node="<B0, Z0>"):
            pass
        with tracer.span("rollup") as sp:
            sp.incr("rows", 42)
            with tracer.span("groupby"):
                pass
    return [span.to_dict() for span in sink.spans]


class TestChromeTrace:
    def test_b_e_events_nest_properly(self):
        doc = chrome_trace(_record_spans())
        events = doc["traceEvents"]
        # Replay the events against a stack per (pid, tid): every E must
        # close the innermost open B of the same name.
        stacks = {}
        for event in events:
            assert event["ph"] in ("B", "E")
            key = (event["pid"], event["tid"])
            stack = stacks.setdefault(key, [])
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack and stack[-1] == event["name"]
                stack.pop()
        assert all(not stack for stack in stacks.values())

    def test_timestamps_rebased_and_ordered_per_span(self):
        doc = chrome_trace(_record_spans())
        events = doc["traceEvents"]
        assert min(event["ts"] for event in events) == 0.0
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 4
        # Event stream order is non-decreasing in ts within each lane.
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_attrs_and_counters_ride_in_args(self):
        doc = chrome_trace(_record_spans())
        scan_b = next(
            e for e in doc["traceEvents"]
            if e["name"] == "scan" and e["ph"] == "B"
        )
        assert scan_b["args"]["node"] == "<B0, Z0>"
        rollup_b = next(
            e for e in doc["traceEvents"]
            if e["name"] == "rollup" and e["ph"] == "B"
        )
        assert rollup_b["args"]["counters"]["rows"] == 42

    def test_json_form_parses(self):
        doc = json.loads(chrome_trace_json(_record_spans()))
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"

    def test_zero_duration_spans_stay_nested(self):
        # Hand-built records with *identical* timestamps: ts-sorting would
        # scramble these; the structural walk must not.
        records = [
            {"span_id": 1, "parent_id": None, "name": "outer",
             "started": 5.0, "ended": 5.0, "thread": 0},
            {"span_id": 2, "parent_id": 1, "name": "inner",
             "started": 5.0, "ended": 5.0, "thread": 0},
        ]
        events = chrome_trace(records)["traceEvents"]
        assert [(e["name"], e["ph"]) for e in events] == [
            ("outer", "B"), ("inner", "B"), ("inner", "E"), ("outer", "E"),
        ]

    def test_orphaned_children_promote_to_roots(self):
        records = [
            {"span_id": 2, "parent_id": 99, "name": "lost",
             "started": 1.0, "ended": 2.0, "thread": 0},
        ]
        events = chrome_trace(records)["traceEvents"]
        assert [(e["name"], e["ph"]) for e in events] == [
            ("lost", "B"), ("lost", "E"),
        ]

    def test_empty_trace(self):
        assert chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }


class TestFoldedStacks:
    def test_paths_and_self_time_round_trip_durations(self):
        records = _record_spans()
        folded = parse_folded(folded_stacks(records))
        assert set(folded) == {
            ("search",),
            ("search", "scan"),
            ("search", "rollup"),
            ("search", "rollup", "groupby"),
        }
        # Flamegraph invariant: summing every line of the tree recovers
        # the root's wall-clock duration to microsecond resolution.
        root = next(r for r in records if r["parent_id"] is None)
        total = sum(folded.values())
        expected = (root["ended"] - root["started"]) * 1e6
        assert abs(total - expected) <= len(folded)  # ±1µs rounding each

    def test_self_time_clamped_non_negative(self):
        # Child nominally outlasting its parent (clock jitter) must not
        # produce a negative self-time line.
        records = [
            {"span_id": 1, "parent_id": None, "name": "p",
             "started": 0.0, "ended": 1.0, "thread": 0},
            {"span_id": 2, "parent_id": 1, "name": "c",
             "started": 0.0, "ended": 1.5, "thread": 0},
        ]
        folded = parse_folded(folded_stacks(records))
        assert folded[("p",)] == 0
        assert folded[("p", "c")] == 1_500_000

    def test_repeated_paths_aggregate(self):
        records = [
            {"span_id": 1, "parent_id": None, "name": "scan",
             "started": 0.0, "ended": 0.001, "thread": 0},
            {"span_id": 2, "parent_id": None, "name": "scan",
             "started": 0.002, "ended": 0.004, "thread": 0},
        ]
        folded = parse_folded(folded_stacks(records))
        assert folded == {("scan",): 3000}

    def test_output_is_path_sorted(self):
        lines = folded_stacks(_record_spans()).splitlines()
        paths = [line.rpartition(" ")[0] for line in lines]
        assert paths == sorted(paths)


class TestRenderTrace:
    def test_dispatch(self):
        records = _record_spans()
        assert json.loads(render_trace(records, "chrome"))["traceEvents"]
        assert parse_folded(render_trace(records, "folded"))

    def test_unknown_format_raises(self):
        try:
            render_trace([], "svg")
        except ValueError as error:
            assert "svg" in str(error)
        else:
            raise AssertionError("expected ValueError")
