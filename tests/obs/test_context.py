"""Trace-context propagation primitives (repro.obs.context)."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs.context import (
    TRACEPARENT_ENV,
    TraceContext,
    new_span_id,
    new_trace_id,
    process_identity,
)


class TestIds:
    def test_trace_id_is_32_hex_nonzero(self):
        for _ in range(20):
            trace_id = new_trace_id()
            assert len(trace_id) == 32
            assert int(trace_id, 16) != 0

    def test_span_ids_are_64_bit_nonzero_and_distinct(self):
        ids = {new_span_id() for _ in range(200)}
        assert len(ids) == 200
        assert all(0 < value < 2**64 for value in ids)

    def test_process_identity_shape(self):
        pid, name = process_identity()
        assert isinstance(pid, int) and pid > 0
        assert isinstance(name, str) and name


class TestTraceContext:
    def test_traceparent_round_trip(self):
        context = TraceContext.root().child_of(new_span_id())
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed == context

    def test_root_has_no_parent_and_encodes_zero(self):
        root = TraceContext.root()
        assert root.span_id is None
        wire = root.to_traceparent()
        assert wire.split("-")[2] == "0" * 16
        # zero parent decodes back to "no parent"
        assert TraceContext.from_traceparent(wire).span_id is None

    def test_malformed_inputs_degrade_to_none(self):
        bad = [
            None,
            "",
            "nonsense",
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "00-" + "a" * 31 + "-" + "1" * 16 + "-01",  # short trace id
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "1" * 15 + "-01",  # short parent
        ]
        for text in bad:
            assert TraceContext.from_traceparent(text) is None

    def test_parse_tolerates_case_and_whitespace(self):
        context = TraceContext("ab" * 16, 0x1234)
        wire = "  " + context.to_traceparent().upper() + "  "
        assert TraceContext.from_traceparent(wire) == context

    def test_from_environment(self, monkeypatch):
        context = TraceContext.root().child_of(new_span_id())
        monkeypatch.setenv(TRACEPARENT_ENV, context.to_traceparent())
        assert TraceContext.from_environment() == context
        monkeypatch.delenv(TRACEPARENT_ENV)
        assert TraceContext.from_environment() is None


class TestTracerIntegration:
    def test_tracer_adopts_propagated_context(self):
        stream = io.StringIO()
        sink = obs.JsonLinesSink(stream)
        context = TraceContext.root().child_of(new_span_id())
        tracer = obs.Tracer(sink, context=context)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.flush()
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        by_name = {record["name"]: record for record in records}
        assert all(
            record["trace_id"] == context.trace_id for record in records
        )
        outer = by_name["outer"]
        # the tracer's root span links to the remote parent...
        assert outer["parent_id"] == context.span_id
        assert outer["remote"] is True
        # ...while in-process nesting stays a plain local edge.
        inner = by_name["inner"]
        assert inner["parent_id"] == outer["span_id"]
        assert not inner.get("remote")

    def test_span_records_carry_process_identity(self):
        stream = io.StringIO()
        tracer = obs.Tracer(obs.JsonLinesSink(stream))
        with tracer.span("work"):
            pass
        tracer.flush()
        record = json.loads(stream.getvalue().splitlines()[0])
        pid, name = process_identity()
        assert record["pid"] == pid
        assert record["process"] == name
        assert record["unix_started"] <= record["unix_ended"]

    def test_span_from_opens_remote_child(self):
        stream = io.StringIO()
        tracer = obs.Tracer(obs.JsonLinesSink(stream))
        remote = TraceContext("cd" * 16, 77)
        with tracer.span_from(remote, "chunk", jobs=3) as sp:
            assert sp.traceparent().startswith("00-" + "cd" * 16)
        tracer.flush()
        record = json.loads(stream.getvalue().splitlines()[0])
        assert record["trace_id"] == "cd" * 16
        assert record["parent_id"] == 77
        assert record["remote"] is True

    def test_span_from_none_context_uses_local_stack(self):
        stream = io.StringIO()
        tracer = obs.Tracer(obs.JsonLinesSink(stream))
        with tracer.span("parent"):
            with tracer.span_from(None, "child"):
                pass
        tracer.flush()
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        by_name = {record["name"]: record for record in records}
        assert (
            by_name["child"]["parent_id"] == by_name["parent"]["span_id"]
        )
        assert not by_name["child"].get("remote")

    def test_disabled_tracer_span_from_is_null(self):
        tracer = obs.Tracer(enabled=False)
        with tracer.span_from(TraceContext.root(), "nothing") as sp:
            assert not sp
            assert sp.traceparent() is None
