"""Histogram / MetricSet semantics: fixed buckets, exact order-free merge."""

import random

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    NUM_BUCKETS,
    Histogram,
    MetricSet,
    bucket_index,
)


class TestBucketLayout:
    def test_bounds_are_strictly_increasing(self):
        assert all(a < b for a, b in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]))

    def test_four_buckets_per_decade(self):
        # 10**(i/4) layout: every 4th bound is a power of ten.
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-7)
        assert BUCKET_BOUNDS[28] == pytest.approx(1.0)
        assert BUCKET_BOUNDS[-1] == pytest.approx(1e9)
        assert NUM_BUCKETS == len(BUCKET_BOUNDS) + 1

    def test_bucket_index_edges(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(BUCKET_BOUNDS[0]) == 0
        # A value exactly on a bound belongs to that bound's bucket.
        assert bucket_index(1.0) == 28
        assert bucket_index(1.0000001) == 29
        assert bucket_index(1e30) == NUM_BUCKETS - 1  # overflow bucket

    def test_same_bucket_means_identical_counts_across_jitter(self):
        # Values within one bucket land identically — the property that
        # keeps bucket state stable under sub-bucket timing jitter (only
        # the exact min/max/sum fields see the raw values).
        h1, h2 = Histogram(), Histogram()
        h1.record(0.011)
        h2.record(0.012)  # same bucket as 0.011
        assert h1.buckets == h2.buckets
        assert bucket_index(0.011) == bucket_index(0.012)


class TestHistogram:
    def test_empty_summary_and_quantile(self):
        h = Histogram()
        assert h.summary() == {"count": 0}
        assert h.quantile(0.5) == 0.0

    def test_summary_fields(self):
        h = Histogram()
        for value in (1, 2, 3, 100):
            h.record(value)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 106.0
        assert s["min"] == 1.0
        assert s["max"] == 100.0
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["max"]

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram()
        h.record(5.0)
        # Single observation: every quantile is that value's bucket bound
        # clamped into [min, max] = [5, 5].
        assert h.quantile(0.0) == 5.0
        assert h.quantile(0.5) == 5.0
        assert h.quantile(1.0) == 5.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_quantile_monotone_in_q(self):
        h = Histogram()
        rng = random.Random(7)
        for _ in range(500):
            h.record(rng.uniform(1e-6, 1e3))
        qs = [h.quantile(q / 100) for q in range(0, 101, 5)]
        assert qs == sorted(qs)

    def test_merge_matches_combined_recording(self):
        rng = random.Random(11)
        values = [rng.uniform(1e-7, 1e4) for _ in range(200)]
        combined = Histogram()
        for value in values:
            combined.record(value)
        left, right = Histogram(), Histogram()
        for value in values[:77]:
            left.record(value)
        for value in values[77:]:
            right.record(value)
        left.merge(right)
        assert left.buckets == combined.buckets
        assert left.count == combined.count
        assert left.min == combined.min
        assert left.max == combined.max

    def test_merge_commutative_and_associative_exact(self):
        # Integer observations: sums add exactly, so chunk reordering
        # yields *bit-identical* histograms, not just close ones.
        rng = random.Random(3)
        chunks = []
        for _ in range(5):
            h = Histogram()
            for _ in range(40):
                h.record(rng.randrange(1, 10_000))
            chunks.append(h)
        orders = [list(range(5)), [4, 2, 0, 3, 1], [1, 3, 0, 4, 2]]
        merged = []
        for order in orders:
            total = Histogram()
            for index in order:
                total.merge(chunks[index])
            merged.append(total)
        assert merged[0] == merged[1] == merged[2]
        # associativity: ((a+b)+c) == (a+(b+c))
        ab = chunks[0].copy()
        ab.merge(chunks[1])
        ab.merge(chunks[2])
        bc = chunks[1].copy()
        bc.merge(chunks[2])
        a_bc = chunks[0].copy()
        a_bc.merge(bc)
        assert ab == a_bc

    def test_merge_with_empty_is_identity(self):
        h = Histogram()
        h.record(3.0)
        before = h.copy()
        h.merge(Histogram())
        assert h == before
        empty = Histogram()
        empty.merge(before)
        assert empty == before

    def test_snapshot_round_trip(self):
        h = Histogram()
        for value in (1e-9, 0.5, 7, 42, 1e12):
            h.record(value)
        assert Histogram.from_snapshot(h.snapshot()) == h
        assert Histogram.from_snapshot(Histogram().snapshot()) == Histogram()

    def test_copy_is_independent(self):
        h = Histogram()
        h.record(1.0)
        c = h.copy()
        c.record(2.0)
        assert h.count == 1
        assert c.count == 2


class TestMetricSet:
    def test_observe_and_lookup(self):
        m = MetricSet()
        m.observe("dist.rows", 10)
        m.observe("dist.rows", 20)
        assert "dist.rows" in m
        assert len(m) == 1
        assert m.get("dist.rows").count == 2
        assert m.get("missing") is None

    def test_timer_records_elapsed(self):
        m = MetricSet()
        with m.timer("latency.x_seconds"):
            pass
        h = m.get("latency.x_seconds")
        assert h.count == 1
        assert h.min >= 0.0

    def test_filtered_by_prefix(self):
        m = MetricSet()
        m.observe("dist.rows", 1)
        m.observe("latency.scan_seconds", 0.1)
        m.observe("worker.chunk_jobs", 4)
        assert set(m.filtered("dist.")) == {"dist.rows"}
        assert set(m.filtered("dist.", "worker.")) == {
            "dist.rows",
            "worker.chunk_jobs",
        }

    def test_as_dict_sorted_and_json_ready(self):
        m = MetricSet()
        m.observe("b.metric", 2)
        m.observe("a.metric", 1)
        d = m.as_dict()
        assert list(d) == ["a.metric", "b.metric"]
        assert d["a.metric"]["count"] == 1

    def test_merge_under_chunk_reordering_is_bit_identical(self):
        # The parallel evaluator's contract: merging per-chunk deltas in
        # any order produces the same MetricSet.
        rng = random.Random(23)
        deltas = []
        for chunk in range(6):
            delta = MetricSet()
            for _ in range(25):
                delta.observe("dist.rows", rng.randrange(1, 1000))
            delta.observe("worker.chunk_jobs", 25)
            deltas.append(delta)
        forward = MetricSet()
        for delta in deltas:
            forward += delta
        shuffled = MetricSet()
        order = list(range(6))
        rng.shuffle(order)
        for index in order:
            shuffled += deltas[index]
        assert forward == shuffled
        assert forward.as_dict() == shuffled.as_dict()

    def test_merge_copies_foreign_histograms(self):
        a, b = MetricSet(), MetricSet()
        b.observe("dist.rows", 1)
        a.merge(b)
        b.observe("dist.rows", 2)
        assert a.get("dist.rows").count == 1  # not aliased

    def test_snapshot_round_trip(self):
        m = MetricSet()
        m.observe("dist.rows", 5)
        m.observe("latency.scan_seconds", 0.02)
        assert MetricSet.from_snapshot(m.snapshot()) == m

    def test_clear(self):
        m = MetricSet()
        m.observe("dist.rows", 1)
        m.clear()
        assert len(m) == 0
