"""Tests for trace spans, nesting, and the module-level tracer plumbing."""

import threading

from repro import obs
from repro.obs import NULL_SPAN, InMemorySink, Tracer


class TestSpanNesting:
    def test_parent_child_linkage(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.depth == 1
        assert outer.depth == 0
        assert outer.children == [inner]

    def test_children_emitted_before_parents(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in sink.spans] == ["inner", "outer"]
        assert sink.roots() == [sink.spans[1]]

    def test_siblings_share_parent(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        names = [child.name for child in outer.children]
        assert names == ["a", "b"]
        assert all(c.parent_id == outer.span_id for c in outer.children)

    def test_current_tracks_innermost(self):
        tracer = Tracer(InMemorySink())
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_timing_is_monotone(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration_seconds >= 0
        assert outer.duration_seconds >= inner.duration_seconds

    def test_span_survives_exception(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        try:
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert sink.count("doomed") == 1
        assert tracer.current is None  # stack unwound


class TestCrossThreadSpans:
    def test_parent_ids_stable_across_threads(self):
        """Concurrent threads never cross-link their span trees.

        Each thread opens ``outer > inner`` with a barrier in between, so
        every thread holds an open span while every other thread opens its
        child — the exact interleaving that would corrupt parent ids if
        the span stack were tracer-global instead of per-thread.
        """
        sink = InMemorySink()
        tracer = Tracer(sink)
        num_threads = 4
        barrier = threading.Barrier(num_threads)
        failures: list[str] = []

        def work(index: int) -> None:
            with tracer.span("outer", worker=index) as outer:
                barrier.wait()
                with tracer.span("inner", worker=index) as inner:
                    barrier.wait()
                if inner.parent_id != outer.span_id:
                    failures.append(
                        f"thread {index}: inner parented to "
                        f"{inner.parent_id}, expected {outer.span_id}"
                    )

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        assert sink.count("outer") == num_threads
        assert sink.count("inner") == num_threads
        # Every inner span links to an outer span of the *same* worker.
        outers = {span.attrs["worker"]: span for span in sink.named("outer")}
        for inner in sink.named("inner"):
            assert inner.parent_id == outers[inner.attrs["worker"]].span_id
        # Span ids are globally unique; thread lanes are dense indices.
        ids = [span.span_id for span in sink.spans]
        assert len(ids) == len(set(ids))
        lanes = {span.thread for span in sink.spans}
        assert lanes == set(range(len(lanes)))

    def test_same_thread_lane_for_outer_and_inner(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.thread == inner.thread


class TestSpanRecording:
    def test_set_attrs(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("scan", node="<B1, Z0>") as sp:
            sp.set(groups=12, dense=True)
        assert sp.attrs == {"node": "<B1, Z0>", "groups": 12, "dense": True}

    def test_counters_aggregate_into_parent(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                inner.incr("rows", 10)
            with tracer.span("inner2") as inner2:
                inner2.incr("rows", 5)
        assert outer.counters.get("rows") == 15

    def test_tracer_incr_hits_current_span_and_totals(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("outer") as outer:
            tracer.incr("widgets", 3)
        tracer.incr("widgets", 2)  # outside any span: totals only
        assert outer.counters.get("widgets") == 3
        assert tracer.totals.get("widgets") == 5

    def test_totals_count_span_closures(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("scan"):
            pass
        with tracer.span("scan"):
            pass
        assert tracer.totals.get("span.scan") == 2
        assert tracer.totals.get("span_seconds.scan") >= 0

    def test_to_dict_shape(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("scan", node="root") as sp:
            sp.incr("rows", 7)
        record = sp.to_dict()
        assert record["name"] == "scan"
        assert record["span_id"] == sp.span_id
        assert record["parent_id"] is None
        assert record["depth"] == 0
        assert record["attrs"] == {"node": "root"}
        assert record["counters"] == {"rows": 7}
        assert record["duration_seconds"] >= 0


class TestDisabledTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        sp = tracer.span("anything", expensive="attr")
        assert sp is NULL_SPAN
        assert not sp  # truthiness gate for attr construction
        with sp:
            sp.set(ignored=1)
            sp.incr("ignored")
        assert tracer.totals.as_dict() == {}

    def test_disabled_incr_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.incr("widgets", 100)
        assert tracer.totals.as_dict() == {}

    def test_enabled_span_is_truthy(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("real") as sp:
            assert sp


class TestModuleTracer:
    def test_default_is_disabled(self):
        assert not obs.enabled()
        assert obs.span("anything") is NULL_SPAN

    def test_use_tracer_installs_and_restores(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        previous = obs.get_tracer()
        with obs.use_tracer(tracer):
            assert obs.get_tracer() is tracer
            assert obs.enabled()
            with obs.span("work"):
                obs.incr("units", 2)
        assert obs.get_tracer() is previous
        assert sink.count("work") == 1
        assert tracer.totals.get("units") == 2

    def test_use_tracer_restores_on_exception(self):
        previous = obs.get_tracer()
        try:
            with obs.use_tracer(Tracer(InMemorySink())):
                raise ValueError("boom")
        except ValueError:
            pass
        assert obs.get_tracer() is previous

    def test_set_tracer_returns_previous(self):
        first = obs.get_tracer()
        replacement = Tracer(enabled=False)
        returned = obs.set_tracer(replacement)
        try:
            assert returned is first
            assert obs.get_tracer() is replacement
        finally:
            obs.set_tracer(first)
