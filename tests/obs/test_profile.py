"""Tests for the cProfile hook."""

import io

from repro.obs import profile, profile_call


def _work() -> int:
    return sum(range(1000))


class TestProfile:
    def test_context_manager_prints_report(self):
        stream = io.StringIO()
        with profile(top=5, stream=stream):
            _work()
        report = stream.getvalue()
        assert "function calls" in report
        assert "cumulative" in report

    def test_sort_key_respected(self):
        stream = io.StringIO()
        with profile(top=5, sort="tottime", stream=stream):
            _work()
        assert "tottime" in stream.getvalue()

    def test_profile_call_returns_result(self):
        stream = io.StringIO()
        result = profile_call(_work, top=3, stream=stream)
        assert result == sum(range(1000))
        assert stream.getvalue()
