"""Tests for the joining-attack simulator (Figure 1)."""

import pytest

from repro.attack.joining import joining_attack, reidentification_rate
from repro.core.generalize import apply_generalization
from repro.datasets.patients import (
    PATIENTS_QI,
    patients_hierarchies,
    patients_problem,
    patients_table,
    voter_table,
)
from repro.lattice.node import LatticeNode


class TestRawRelease:
    def test_andre_is_reidentified(self):
        """Figure 1: joining the tables pins Andre to the Flu row."""
        report = joining_attack(voter_table(), patients_table(), PATIENTS_QI)
        assert report.uniquely_linked == 1
        assert report.linked == 1
        assert report.external_rows == 5
        assert report.reidentification_rate == pytest.approx(0.2)

    def test_min_candidate_set_is_one(self):
        report = joining_attack(voter_table(), patients_table(), PATIENTS_QI)
        assert report.min_nonzero_candidates == 1

    def test_describe(self):
        report = joining_attack(voter_table(), patients_table(), PATIENTS_QI)
        assert "uniquely re-identified" in report.describe()


class TestAnonymizedRelease:
    def _release(self, levels):
        problem = patients_problem()
        node = LatticeNode(PATIENTS_QI, levels)
        return apply_generalization(problem, node).table

    def test_2_anonymous_release_defeats_unique_linkage(self):
        released = self._release((1, 1, 0))
        report = joining_attack(
            voter_table(),
            released,
            PATIENTS_QI,
            hierarchies=patients_hierarchies(),
            levels={"Birthdate": 1, "Sex": 1, "Zipcode": 0},
        )
        assert report.uniquely_linked == 0
        assert report.min_nonzero_candidates >= 2

    def test_generalized_adversary_still_links_nonuniquely(self):
        released = self._release((1, 1, 0))
        report = joining_attack(
            voter_table(),
            released,
            PATIENTS_QI,
            hierarchies=patients_hierarchies(),
            levels={"Birthdate": 1, "Sex": 1, "Zipcode": 0},
        )
        # Andre's zipcode 53715 exists in the release: he links to a class
        assert report.linked >= 1

    def test_levels_without_hierarchies_rejected(self):
        with pytest.raises(ValueError, match="hierarchies"):
            joining_attack(
                voter_table(),
                patients_table(),
                PATIENTS_QI,
                levels={"Sex": 1},
            )

    def test_rate_helper(self):
        rate = reidentification_rate(
            voter_table(), patients_table(), PATIENTS_QI
        )
        assert rate == pytest.approx(0.2)


class TestKAnonymityGuarantee:
    @pytest.mark.parametrize("k", [2, 3])
    def test_candidate_sets_at_least_k_for_any_anonymous_node(self, k):
        """For every k-anonymous release, no external row links uniquely
        (candidate sets are >= k) once the adversary matches levels."""
        from repro.core.incognito import basic_incognito

        problem = patients_problem()
        result = basic_incognito(problem, k)
        for node in result.anonymous_nodes:
            released = apply_generalization(problem, node).table
            report = joining_attack(
                voter_table(),
                released,
                PATIENTS_QI,
                hierarchies=patients_hierarchies(),
                levels=node.as_dict(),
            )
            assert report.min_nonzero_candidates >= k or report.linked == 0
            assert report.uniquely_linked == 0 or k == 1
