#!/usr/bin/env python3
"""Census microdata release: the paper's Adults workload end to end.

Anonymizes a (synthetic) census extract over the paper's 9-attribute
quasi-identifier, compares the three Incognito variants' cost profiles,
and uses the completeness of the result set to pick generalizations under
three different minimality criteria (Section 2.1's point: users want
application-specific minimality, which only a complete algorithm enables).

    python examples/census_release.py [rows] [k]
"""

import sys

from repro import (
    apply_generalization,
    basic_incognito,
    check_k_anonymity,
    cube_incognito,
    superroots_incognito,
)
from repro.datasets import adults_problem
from repro.metrics import discernibility, loss_metric, precision


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    problem = adults_problem(rows, qi_size=6)
    print(f"Problem: {problem}")
    print()

    print(f"{'algorithm':26s} {'time':>8s} {'checked':>8s} {'scans':>6s} {'rollups':>8s}")
    result = None
    for algorithm in (basic_incognito, superroots_incognito, cube_incognito):
        result = algorithm(problem, k)
        stats = result.stats
        print(
            f"{result.algorithm:26s} {stats.elapsed_seconds:7.2f}s "
            f"{stats.nodes_checked:8d} {stats.table_scans:6d} {stats.rollups:8d}"
        )
    assert result is not None
    print(f"\n{len(result.anonymous_nodes)} {k}-anonymous generalizations found")
    print()

    # --- three minimality criteria over the complete solution set -----
    by_height = result.best_node()
    by_weights = result.weighted_minimal({"age": 5.0, "gender": 0.1})
    from repro.core.minimality import best_node_by_metric

    by_dm = best_node_by_metric(
        result.minimal_height() + result.pareto_minimal(),
        lambda node: discernibility(
            apply_generalization(problem, node).table, problem.quasi_identifier
        ),
    )

    print("Minimality criterion            chosen node                 Prec    LM")
    for label, node in [
        ("minimum height", by_height),
        ("weighted (keep age specific)", by_weights),
        ("min discernibility (pareto)", by_dm),
    ]:
        print(
            f"{label:30s}  {node.label():26s} "
            f"{precision(problem, node):5.2f} {loss_metric(problem, node):5.3f}"
        )
    print()

    view = apply_generalization(problem, by_dm)
    ok = check_k_anonymity(view.table, problem.quasi_identifier, k)
    print(f"Releasing view at {by_dm} — independent check: {'PASS' if ok else 'FAIL'}")
    print()
    print("Sample of the released table:")
    print(view.table.project(list(problem.quasi_identifier)).pretty(limit=8))


if __name__ == "__main__":
    main()
