#!/usr/bin/env python3
"""The Figure 1 joining attack — and how k-anonymization defeats it.

Re-enacts the paper's motivating scenario: a public voter registration
list is joined with de-identified hospital data on ⟨Birthdate, Sex,
Zipcode⟩, re-identifying Andre's diagnosis.  Then the hospital data is
2-anonymized with Incognito and the attack is re-run.

    python examples/joining_attack.py
"""

from repro import basic_incognito
from repro.attack import joining_attack
from repro.datasets import (
    patients_hierarchies,
    patients_problem,
    patients_table,
    voter_table,
)
from repro.relational import hash_join

QI = ("Birthdate", "Sex", "Zipcode")


def main() -> None:
    voters = voter_table()
    patients = patients_table()
    print("Public voter registration data:")
    print(voters.pretty())
    print()
    print("De-identified hospital data (published):")
    print(patients.pretty())
    print()

    # --- the attack on the raw release -------------------------------
    joined = hash_join(voters, patients, on=list(QI))
    print("Voter ⋈ Patients on ⟨Birthdate, Sex, Zipcode⟩:")
    print(joined.pretty())
    report = joining_attack(voters, patients, QI)
    print(f"\nAttack on the raw release: {report.describe()}")
    print()

    # --- 2-anonymize and retry ----------------------------------------
    problem = patients_problem()
    result = basic_incognito(problem, k=2)
    view = result.apply(problem)
    print(f"2-anonymized release at {view.node}:")
    print(view.table.pretty())

    # The adversary's best move: generalize their own copy of the voter
    # list through the same (public) hierarchies before joining.
    defended = joining_attack(
        voters,
        view.table,
        QI,
        hierarchies=patients_hierarchies(),
        levels=view.node.as_dict(),
    )
    print(f"\nAttack on the 2-anonymous release: {defended.describe()}")
    assert defended.uniquely_linked == 0
    print(
        "\nNo individual links to fewer than "
        f"{defended.min_nonzero_candidates} records — the joining attack "
        "no longer identifies anyone uniquely."
    )


if __name__ == "__main__":
    main()
