#!/usr/bin/env python3
"""Research utility of an anonymized release.

The paper's introduction motivates publishing microdata "for purposes such
as public health and demographic research", and Section 2.1 argues users
need *application-specific* minimality — "it might be more important in
some applications that the Sex attribute be released intact".

This example makes that concrete for a researcher studying salary by
education: among the complete set of k-anonymous generalizations that
Incognito returns, a height-minimal node may generalize education away,
while a weighted-minimal node preserves it — and the same aggregate query
(high-salary rate by education group) drifts far less on the latter
release.

    python examples/utility_analysis.py [rows] [k]
"""

import sys

from repro import apply_generalization, basic_incognito
from repro.datasets import adults_problem
from repro.relational import Column
from repro.relational.aggregate import aggregate


def salary_rate_by_education(table) -> dict[str, float]:
    """P(salary >50K) per education group, via the relational engine."""
    with_flag = table.with_column(
        "high",
        Column.from_values(
            1 if value == ">50K" else 0
            for value in table.column("salary_class")
        ),
    )
    grouped = aggregate(with_flag, ["education"], {"high": "mean"})
    return dict(grouped.iter_rows())


def drift_against(problem, node, original: dict[str, float]) -> tuple[int, float]:
    """(education groups released, mean |rate drift|) for a chosen node."""
    view = apply_generalization(problem, node)
    released = salary_rate_by_education(view.table)
    hierarchy = problem.hierarchy("education")
    level = node.level_of("education")
    drifts = []
    for education, true_rate in original.items():
        code = problem.table.column("education").code_of(education)
        generalized = hierarchy.level_values(level)[
            hierarchy.level_lookup(level)[code]
        ]
        drifts.append(abs(released[generalized] - true_rate))
    return len(released), sum(drifts) / len(drifts)


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    problem = adults_problem(rows, qi_size=6)
    original = salary_rate_by_education(problem.table)
    result = basic_incognito(problem, k)
    print(f"Problem: {problem}, k={k}")
    print(f"{len(result.anonymous_nodes)} {k}-anonymous generalizations\n")

    choices = [
        ("height-minimal", result.best_node()),
        (
            "education-weighted",
            result.weighted_minimal({"education": 25.0}),
        ),
    ]
    print(
        f"{'minimality criterion':22s} {'education level':>16s} "
        f"{'edu groups':>11s} {'mean |rate drift|':>18s}"
    )
    for label, node in choices:
        groups, drift = drift_against(problem, node, original)
        print(
            f"{label:22s} {node.level_of('education'):>16d} "
            f"{groups:>11d} {drift:>17.3f}"
        )

    print(
        "\nBoth releases satisfy the same k-anonymity guarantee; only the\n"
        "choice among Incognito's complete solution set differs.  A\n"
        "single-answer algorithm (binary search, Datafly) cannot offer\n"
        "this choice — the practical payoff of soundness & completeness."
    )


if __name__ == "__main__":
    main()
