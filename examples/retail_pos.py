#!/usr/bin/env python3
"""Retail point-of-sale release: the paper's Lands End workload.

High-cardinality transactional data (zipcodes, prices, styles) is where
the suppression threshold earns its keep: without it, rare combinations
force heavy generalization; allowing a small number of outlier rows to be
suppressed keeps the release far more specific.

    python examples/retail_pos.py [rows] [k]
"""

import sys

from repro import basic_incognito, check_k_anonymity
from repro.datasets import landsend_problem
from repro.metrics import precision


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    problem = landsend_problem(rows, qi_size=5)
    print(f"Problem: {problem}")
    print()

    budgets = [0, rows // 1000, rows // 100]
    print(f"{'suppression budget':>20s} {'solutions':>10s} {'min height':>11s} "
          f"{'Prec of best':>13s} {'suppressed':>11s}")
    for budget in budgets:
        result = basic_incognito(problem, k, max_suppression=budget)
        if not result.found:
            print(f"{budget:>20d} {'none':>10s}")
            continue
        best = result.best_node()
        view = result.apply(problem)
        print(
            f"{budget:>20d} {len(result.anonymous_nodes):>10d} "
            f"{best.height:>11d} {precision(problem, best):>13.2f} "
            f"{view.suppressed_rows:>11d}"
        )
        assert check_k_anonymity(view.table, problem.quasi_identifier, k)

    print()
    result = basic_incognito(problem, k, max_suppression=rows // 100)
    best = result.best_node()
    view = result.apply(problem)
    print(
        f"With a 1% suppression budget the minimal release sits at {best} "
        f"(height {best.height}), dropping {view.suppressed_rows} of "
        f"{rows} rows."
    )
    print()
    print("Sample of the released transactions:")
    print(view.table.pretty(limit=8))


if __name__ == "__main__":
    main()
