#!/usr/bin/env python3
"""The Section 5 taxonomy, executed: all ten k-anonymization models.

Runs every model the paper's taxonomy names on the same census sample and
compares information loss, illustrating the taxonomy's central trade-off:
flexibility (local > multi-dimension > single-dimension; partition/subtree
> full-domain) buys utility at the cost of a harder search problem.

    python examples/model_zoo.py [rows] [k]
"""

import sys

from repro.datasets import adults_problem
from repro.metrics import average_class_size, discernibility
from repro.models import (
    AnnealingSubtreeModel,
    AttributeSuppressionModel,
    CellGeneralizationModel,
    CellSuppressionModel,
    FullDomainModel,
    GeneticSubtreeModel,
    MondrianModel,
    MultiDimSubgraphModel,
    Partition1DModel,
    SubtreeModel,
    UnrestrictedModel,
    UnrestrictedMultiDimModel,
)

MODELS = [
    FullDomainModel(),
    AttributeSuppressionModel(),
    SubtreeModel(),
    GeneticSubtreeModel(seed=3),      # §6 ref [11]: locally minimal only
    AnnealingSubtreeModel(seed=3),    # §6 ref [21]: locally minimal only
    UnrestrictedModel(),
    Partition1DModel(),
    MultiDimSubgraphModel(),
    UnrestrictedMultiDimModel(),
    MondrianModel(),
    CellSuppressionModel(),
    CellGeneralizationModel(),
]


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    problem = adults_problem(rows, qi_size=4)
    qi = problem.quasi_identifier
    print(f"Problem: {problem}, k={k}")
    print()

    header = (
        f"{'model':26s} {'axes (coding/scope/structure/dim)':42s} "
        f"{'C_DM':>10s} {'C_AVG':>7s}"
    )
    print(header)
    print("-" * len(header))
    for model in MODELS:
        result = model.anonymize(problem, k)
        descriptor = model.descriptor
        axes = "/".join(descriptor.axes())
        print(
            f"{result.model:26s} {axes:42s} "
            f"{discernibility(result.table, qi):>10d} "
            f"{average_class_size(result.table, qi, k):>7.2f}"
        )
    print()
    print(
        "Lower is better on both metrics.  The ordering reproduces the\n"
        "taxonomy's qualitative claims: multi-dimension recoding beats\n"
        "single-dimension (reference [12]), and local recoding beats\n"
        "global (Section 5.2), while full-domain — the model Incognito\n"
        "searches completely and exactly — trades utility for having a\n"
        "sound-and-complete, criterion-agnostic search."
    )


if __name__ == "__main__":
    main()
