#!/usr/bin/env python3
"""Quickstart: k-anonymize the paper's Patients table (Figure 1).

Runs Basic Incognito on the running example with k=2, shows the complete
set of k-anonymous full-domain generalizations, picks the minimal one, and
prints the anonymized view.

    python examples/quickstart.py
"""

from repro import basic_incognito, check_k_anonymity
from repro.datasets import patients_problem


def main() -> None:
    problem = patients_problem()
    print("Original microdata (Figure 1):")
    print(problem.table.pretty())
    print()

    # Incognito is sound and complete: it returns EVERY 2-anonymous
    # full-domain generalization, not just one.
    result = basic_incognito(problem, k=2)
    print(f"All {len(result.anonymous_nodes)} two-anonymous generalizations:")
    for node in result.anonymous_nodes:
        marker = "  <- minimal height" if node in result.minimal_height() else ""
        print(f"  {node}  (height {node.height}){marker}")
    print()
    print(f"Search statistics: {result.stats.summary()}")
    print()

    # Materialise the minimal-height anonymization.
    view = result.apply(problem)
    print(f"Anonymized view at {view.node}:")
    print(view.table.pretty())
    print()

    ok = check_k_anonymity(view.table, problem.quasi_identifier, 2)
    print(f"Independent 2-anonymity check: {'PASS' if ok else 'FAIL'}")


if __name__ == "__main__":
    main()
