#!/usr/bin/env python3
"""The paper's Section 7 future-work items, implemented and measured.

1. **Strategic materialization** — besides the zero-generalization cube,
   materialize count aggregates "at various points in the dimension
   hierarchies" (like Harinarayan et al. [9]) so roots roll up from small
   waypoint sets.
2. **Out-of-core operation** — block-oriented table scans bound the
   engine's working set when the original database would not fit in main
   memory.

    python examples/future_work.py [rows]
"""

import sys

from repro import basic_incognito, cube_incognito
from repro.core.materialized import materialized_incognito, waypoint_inventory
from repro.core.outofcore import chunked_incognito
from repro.datasets import adults_problem


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    problem = adults_problem(rows, qi_size=6)
    k = 5
    print(f"Problem: {problem}, k={k}")
    print()

    # --- strategic materialization ------------------------------------
    print("Waypoints strategic materialization picks (sample of subsets):")
    inventory = waypoint_inventory(problem, budget_fraction=0.25)
    for attributes, waypoints in list(inventory.items())[:5]:
        print(f"  {attributes}: {waypoints}")
    print(f"  ... ({len(inventory)} subsets total)")
    print()

    # Measure each provider's build cost separately so the table can show
    # the search-phase rollup cost (rollup cost ~ source-set rows).
    from repro.core.anonymity import FrequencyEvaluator
    from repro.core.cube import CubeRootProvider
    from repro.core.materialized import MaterializedCubeProvider

    def build_cost(factory) -> int:
        evaluator = FrequencyEvaluator(problem)
        factory(problem, evaluator)
        return evaluator.stats.rollup_source_rows

    build_rows = {
        "basic": 0,
        "cube (zero-gen only)": build_cost(CubeRootProvider),
        "materialized (waypoints)": build_cost(MaterializedCubeProvider),
    }

    print(
        f"{'variant':26s} {'time':>8s} {'scans':>6s} {'rollups':>8s} "
        f"{'search rollup rows':>19s}"
    )
    for label, run in [
        ("basic", lambda: basic_incognito(problem, k)),
        ("cube (zero-gen only)", lambda: cube_incognito(problem, k)),
        ("materialized (waypoints)", lambda: materialized_incognito(problem, k)),
    ]:
        result = run()
        stats = result.stats
        search_rows = stats.rollup_source_rows - build_rows[label]
        print(
            f"{label:26s} {stats.elapsed_seconds:7.2f}s {stats.table_scans:6d} "
            f"{stats.rollups:8d} {search_rows:19d}"
        )
    print(
        "(search rollup rows ~ per-search rollup cost: waypoints shrink the\n"
        " sets the search re-aggregates, for a one-off extra build cost)"
    )
    print()

    # --- out-of-core scans ---------------------------------------------
    print("Out-of-core (chunked) scans — identical answers, bounded memory:")
    reference = basic_incognito(problem, k)
    for chunk_rows in (2_048, 16_384):
        result = chunked_incognito(problem, k, chunk_rows=chunk_rows)
        assert result.anonymous_nodes == reference.anonymous_nodes
        print(
            f"  chunk={chunk_rows:6d}: {result.stats.elapsed_seconds:6.2f}s "
            f"(in-memory reference {reference.stats.elapsed_seconds:.2f}s) "
            f"- same {len(result.anonymous_nodes)} solutions"
        )


if __name__ == "__main__":
    main()
