"""The Incognito algorithm (paper Section 3, Figure 8).

Incognito computes the set of *all* k-anonymous full-domain generalizations
by iterating over quasi-identifier subset sizes.  Iteration i searches a
candidate graph of i-attribute generalizations with a modified bottom-up
breadth-first search that exploits:

* the **rollup property** — a non-root node's frequency set is derived from
  the frequency set of the (failed) parent it was reached from, never by
  re-scanning the table;
* the **generalization property** — when a node checks out k-anonymous, all
  of its direct generalizations are marked and skipped;

and then builds iteration i+1's candidates with the **subset property**
(a-priori join/prune/edge generation, :mod:`repro.lattice.generation`).

The search is *level-synchronous*: because a direct generalization always
sits exactly one height above its specialization, marks and rollup sources
only ever flow upward across level boundaries, so all unmarked nodes at
one height are mutually independent.  The engine therefore collects each
height's work into a batch and hands it to a
:class:`~repro.parallel.BatchMaterializer`, which executes it serially, on
threads, or on a process pool — with bit-identical results and identical
structural counters in every mode (see :mod:`repro.parallel.evaluator` for
the determinism contract).  Within a level, entries are processed in
insertion order (roots first, then children in parent order), which is
exactly the order the previous heap-based engine popped them in.

The engine is shared by the variants, which differ only in how *root*
frequency sets are obtained — a provider answers
:meth:`RootProvider.root_source` with an optional rollup source:

* **Basic** — no source: scan the base table once per root;
* **Super-roots** (Section 3.3.1) — one scan per root *family* at the
  family's greatest lower bound, roots derived by rollup;
* **Cube** (Section 3.3.2) — no scans during the search at all: roots roll
  up from pre-computed zero-generalization frequency sets.

With a :class:`~repro.core.fscache.FrequencySetCache` attached (``cache=``
or :func:`~repro.core.fscache.use_cache`), every materialisation first
consults the cache: exact hits and cached-ancestor rollups replace table
work, visible as ``cache.*`` counters instead of ``frequency.*`` ones.

One deliberate deviation from the literal Figure 8 pseudocode: when a
*marked* node is dequeued we propagate its mark to its direct
generalizations before skipping it.  Figure 8 as printed just skips, which
can re-check a node that is provably anonymous when it is reachable both
from an anonymous node (marked) and a failed one (queued); the propagation
matches the generalization property's intent and the paper's node counts.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro import obs
from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.fscache import FrequencySetCache, current_cache
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.generation import graph_generation, initial_graph
from repro.lattice.graph import CandidateGraph
from repro.lattice.node import LatticeNode
from repro.obs.counters import CounterSet
from repro.parallel import BatchMaterializer, ExecutionConfig
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    nodes_from_json,
    nodes_to_json,
    problem_fingerprint,
    resolve_checkpoint,
)


class RootProvider:
    """Strategy object supplying frequency sets for candidate-graph roots."""

    def prepare(self, evaluator: FrequencyEvaluator, graph: CandidateGraph) -> None:
        """Hook called once per iteration before the search starts."""

    def root_source(
        self, evaluator: FrequencyEvaluator, node: LatticeNode
    ) -> FrequencySet | None:
        """A rollup source for root ``node``, or None to scan the table.

        The returned set's node may equal ``node`` itself (served as-is),
        or be a specialization of it (rolled up).  This is the method
        variants override: returning a *plan input* instead of a finished
        set lets the engine route the actual work through the cache and
        the parallel batch evaluator.
        """
        return None

    def frequency_set(
        self, evaluator: FrequencyEvaluator, node: LatticeNode
    ) -> FrequencySet:
        """Materialise a root's frequency set (serial convenience path).

        Subclasses predating :meth:`root_source` may override this
        directly; the engine detects that and evaluates such roots in the
        parent process (see :func:`_uses_legacy_frequency_set`).
        """
        return evaluator.materialize(node, self.root_source(evaluator, node))


class ScanRootProvider(RootProvider):
    """Basic Incognito: every root costs one scan of the base table.

    The default :meth:`RootProvider.root_source` (no source) already means
    "scan"; the class exists so the basic variant is named in code.
    """


def _uses_legacy_frequency_set(provider: RootProvider) -> bool:
    """True when ``provider`` overrides frequency_set but not root_source.

    Such providers (e.g. the chunked out-of-core scan provider) compute
    finished frequency sets themselves, so their roots are evaluated
    serially in the parent and fed to the batch as pre-resolved results.
    """
    cls = type(provider)
    return (
        cls.frequency_set is not RootProvider.frequency_set
        and cls.root_source is RootProvider.root_source
    )


def _search_graph(
    evaluator: FrequencyEvaluator,
    graph: CandidateGraph,
    k: int,
    max_suppression: int,
    provider: RootProvider,
    pool: BatchMaterializer,
) -> list[LatticeNode]:
    """One iteration's modified BFS; returns the surviving (anonymous) nodes.

    Nodes enter their height's entry list either as roots or as direct
    generalizations of failed nodes.  Each height is evaluated as one
    batch; failed nodes cache their frequency sets so children can roll up
    from them, and a cache entry is released once all entries referencing
    it have been consumed.
    """
    stats = evaluator.stats
    survivors = set(graph.nodes)
    marked: set[LatticeNode] = set()
    freq_cache: dict[LatticeNode, FrequencySet] = {}
    pending_children: dict[LatticeNode, int] = {}
    legacy = _uses_legacy_frequency_set(provider)

    # Per-height entry lists, in insertion order.  A node's entries all
    # live at its own height, and children enter strictly above the level
    # being processed, so popping min(levels) visits nodes in exactly the
    # old heap's (height, insertion counter) order.
    levels: dict[int, list[tuple[LatticeNode, LatticeNode | None]]] = {}
    for root in graph.roots():
        levels.setdefault(root.height, []).append((root, None))

    def release(parent: LatticeNode | None) -> None:
        if parent is None:
            return
        pending_children[parent] -= 1
        if pending_children[parent] == 0:
            del pending_children[parent]
            del freq_cache[parent]

    while levels:
        height = min(levels)
        entries = levels.pop(height)
        level_started = time.perf_counter()

        # Triage the level: duplicates release their parent, marked nodes
        # propagate (all marks affecting this height were created at lower
        # heights, so membership is final here), the rest form the batch.
        batch: list[tuple[LatticeNode, LatticeNode | None]] = []
        requests: list[tuple[LatticeNode, FrequencySet | None]] = []
        seen: set[LatticeNode] = set()
        for node, parent in entries:
            if node in seen:
                release(parent)
                continue
            seen.add(node)
            if node in marked:
                # Anonymous by the generalization property; propagate.
                stats.nodes_marked += 1
                marked.update(graph.direct_generalizations(node))
                release(parent)
                continue
            batch.append((node, parent))
            if parent is not None:
                requests.append((node, freq_cache[parent]))
            elif legacy:
                requests.append((node, provider.frequency_set(evaluator, node)))
            else:
                requests.append((node, provider.root_source(evaluator, node)))

        frequency_sets = pool.materialize_batch(evaluator, requests)

        for (node, parent), frequency_set in zip(batch, frequency_sets):
            if evaluator.decide(node, frequency_set, k, max_suppression):
                marked.update(graph.direct_generalizations(node))
            else:
                survivors.discard(node)
                children = graph.direct_generalizations(node)
                if children:
                    freq_cache[node] = frequency_set
                    pending_children[node] = len(children)
                    for child in children:
                        levels.setdefault(child.height, []).append(
                            (child, node)
                        )
            release(parent)

        # One observation per BFS level: the paper's per-level cost curve.
        evaluator.stats.metrics.observe(
            "latency.level_seconds", time.perf_counter() - level_started
        )

    return sorted(survivors, key=LatticeNode.sort_key)


def run_incognito(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    provider_factory: Callable[[PreparedTable, FrequencyEvaluator], RootProvider]
    | None = None,
    algorithm: str = "basic-incognito",
    execution: ExecutionConfig | None = None,
    cache: FrequencySetCache | None = None,
    checkpoint: CheckpointStore | None = None,
    resume: bool = False,
) -> AnonymizationResult:
    """Shared driver for the Incognito variants (Figure 8's outer loop).

    ``execution`` and ``cache`` default to the region defaults installed
    via :func:`repro.parallel.use_execution` /
    :func:`repro.core.fscache.use_cache` (serial, no cache out of the
    box), so fixed-signature callers can opt in without new parameters.

    With a ``checkpoint`` store (explicit, or resolved from the
    :func:`repro.resilience.use_checkpoints` region default) the run
    persists its full progress after *every completed iteration* —
    survivors per subset size, counters, elapsed time — atomically.
    ``resume=True`` replays a matching checkpoint instead of re-searching:
    completed iterations are reconstructed by pure graph generation (zero
    table scans, zero node checks) and the search continues at the first
    incomplete subset size with restored counters, so an interrupted +
    resumed run ends with the same marked set and the same structural
    counters as an uninterrupted one.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if cache is None:
        cache = current_cache()
    qi = problem.quasi_identifier
    store = checkpoint
    if store is None:
        store, region_resume = resolve_checkpoint(algorithm, problem, k)
        resume = resume or region_resume
    header: dict | None = None
    state: dict | None = None
    if store is not None:
        header = {
            "format": CHECKPOINT_FORMAT,
            "kind": "incognito",
            "algorithm": algorithm,
            "k": k,
            "max_suppression": max_suppression,
            "fingerprint": problem_fingerprint(problem),
            "qi": list(qi),
        }
        if resume:
            state = store.load_matching(header)

    if state is not None and state.get("completed"):
        # The whole search already ran to completion: the result is the
        # checkpoint.  No evaluator, no scans, no pool.
        stats = SearchStats(CounterSet.from_snapshot(state["counters"]))
        stats.elapsed_seconds = float(state.get("elapsed_seconds", 0.0))
        final = nodes_from_json(
            state["survivors_by_size"][str(state["iterations_done"])]
        )
        return make_result(
            algorithm,
            k,
            final,
            stats,
            max_suppression=max_suppression,
            resumed_iterations=int(state["iterations_done"]),
            checkpoint_saves=0,
        )

    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats, cache=cache)
    started = time.perf_counter()
    # Provider construction may do real work (Cube Incognito's
    # pre-computation phase) so it is timed as part of the run.
    if provider_factory is None:
        provider = ScanRootProvider()
    else:
        provider = provider_factory(problem, evaluator)
    graph = initial_graph(qi, problem.heights)
    survivors: Sequence[LatticeNode] = []

    survivors_by_size: dict[str, list] = {}
    start_size = 1
    base_elapsed = 0.0
    if state is not None:
        # Restore *after* provider construction: the snapshot already
        # accounts the original run's pre-computation (e.g. Cube's build
        # scans), so the re-run's duplicate is discarded and the final
        # counters match an uninterrupted run.
        stats.counters = CounterSet.from_snapshot(state["counters"])
        survivors_by_size = dict(state["survivors_by_size"])
        start_size = int(state["iterations_done"]) + 1
        base_elapsed = float(state.get("elapsed_seconds", 0.0))
        with obs.span(
            "incognito.resume",
            algorithm=algorithm,
            iterations_done=start_size - 1,
        ):
            # Replay completed iterations as pure graph work — no scans,
            # no rollups, no node checks, no counter changes.
            for size in range(1, start_size):
                survivors = nodes_from_json(survivors_by_size[str(size)])
                if size < len(qi):
                    graph = graph_generation(survivors, graph, qi)

    pool = BatchMaterializer(problem, execution)
    try:
        for size in range(start_size, len(qi) + 1):
            # One paper iteration = one a-priori subset size (lattice level
            # of the outer search): its own phase span, so traces show
            # where the scans and rollups of each subset size land.
            with obs.span(
                "incognito.iteration",
                algorithm=algorithm,
                subset_size=size,
                candidates=len(graph),
            ) as sp:
                checked_before = stats.nodes_checked
                stats.nodes_generated += len(graph)
                provider.prepare(evaluator, graph)
                survivors = _search_graph(
                    evaluator, graph, k, max_suppression, provider, pool
                )
                if sp:
                    sp.set(
                        survivors=len(survivors),
                        nodes_checked=stats.nodes_checked - checked_before,
                    )
            if store is not None:
                survivors_by_size[str(size)] = nodes_to_json(survivors)
                store.save(
                    {
                        **header,
                        "iterations_done": size,
                        "completed": size == len(qi),
                        "survivors_by_size": survivors_by_size,
                        "counters": stats.counters.snapshot(),
                        "elapsed_seconds": base_elapsed
                        + (time.perf_counter() - started),
                    }
                )
            if size < len(qi):
                with obs.span(
                    "incognito.graph_generation", subset_size=size + 1
                ):
                    graph = graph_generation(survivors, graph, qi)
    finally:
        pool.close()
    stats.elapsed_seconds = base_elapsed + time.perf_counter() - started

    extra: dict = {}
    if store is not None:
        extra = {
            "checkpoint_saves": store.saves,
            "resumed_iterations": start_size - 1,
        }
    return make_result(
        algorithm,
        k,
        survivors,
        stats,
        max_suppression=max_suppression,
        **extra,
    )


def basic_incognito(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    execution: ExecutionConfig | None = None,
    cache: FrequencySetCache | None = None,
    checkpoint: CheckpointStore | None = None,
    resume: bool = False,
) -> AnonymizationResult:
    """Basic Incognito (Section 3.1): sound and complete full-domain search."""
    return run_incognito(
        problem,
        k,
        max_suppression=max_suppression,
        algorithm="basic-incognito",
        execution=execution,
        cache=cache,
        checkpoint=checkpoint,
        resume=resume,
    )
