"""The Incognito algorithm (paper Section 3, Figure 8).

Incognito computes the set of *all* k-anonymous full-domain generalizations
by iterating over quasi-identifier subset sizes.  Iteration i searches a
candidate graph of i-attribute generalizations with a modified bottom-up
breadth-first search that exploits:

* the **rollup property** — a non-root node's frequency set is derived from
  the frequency set of the (failed) parent it was reached from, never by
  re-scanning the table;
* the **generalization property** — when a node checks out k-anonymous, all
  of its direct generalizations are marked and skipped;

and then builds iteration i+1's candidates with the **subset property**
(a-priori join/prune/edge generation, :mod:`repro.lattice.generation`).

The engine below is shared by the three variants, which differ only in how
*root* frequency sets are obtained:

* **Basic** — scan the base table once per root;
* **Super-roots** (Section 3.3.1) — one scan per root *family* at the
  family's greatest lower bound, roots derived by rollup;
* **Cube** (Section 3.3.2) — no scans during the search at all: roots roll
  up from pre-computed zero-generalization frequency sets.

One deliberate deviation from the literal Figure 8 pseudocode: when a
*marked* node is dequeued we propagate its mark to its direct
generalizations before skipping it.  Figure 8 as printed just skips, which
can re-check a node that is provably anonymous when it is reachable both
from an anonymous node (marked) and a failed one (queued); the propagation
matches the generalization property's intent and the paper's node counts.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, Sequence

from repro import obs
from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.generation import graph_generation, initial_graph
from repro.lattice.graph import CandidateGraph
from repro.lattice.node import LatticeNode


class RootProvider:
    """Strategy object supplying frequency sets for candidate-graph roots."""

    def prepare(self, evaluator: FrequencyEvaluator, graph: CandidateGraph) -> None:
        """Hook called once per iteration before the search starts."""

    def frequency_set(
        self, evaluator: FrequencyEvaluator, node: LatticeNode
    ) -> FrequencySet:
        raise NotImplementedError


class ScanRootProvider(RootProvider):
    """Basic Incognito: every root costs one scan of the base table."""

    def frequency_set(
        self, evaluator: FrequencyEvaluator, node: LatticeNode
    ) -> FrequencySet:
        return evaluator.scan(node)


def _search_graph(
    evaluator: FrequencyEvaluator,
    graph: CandidateGraph,
    k: int,
    max_suppression: int,
    provider: RootProvider,
) -> list[LatticeNode]:
    """One iteration's modified BFS; returns the surviving (anonymous) nodes.

    Nodes enter the priority queue (ordered by height) either as roots or as
    direct generalizations of failed nodes.  Failed nodes cache their
    frequency sets so children can roll up from them; a cache entry is
    released once all queue entries referencing it have been consumed.
    """
    stats = evaluator.stats
    survivors = set(graph.nodes)
    marked: set[LatticeNode] = set()
    visited: set[LatticeNode] = set()
    freq_cache: dict[LatticeNode, FrequencySet] = {}
    pending_children: dict[LatticeNode, int] = {}

    counter = itertools.count()
    heap: list[tuple[int, int, LatticeNode, LatticeNode | None]] = []
    for root in graph.roots():
        heapq.heappush(heap, (root.height, next(counter), root, None))

    def release(parent: LatticeNode | None) -> None:
        if parent is None:
            return
        pending_children[parent] -= 1
        if pending_children[parent] == 0:
            del pending_children[parent]
            del freq_cache[parent]

    while heap:
        _, _, node, parent = heapq.heappop(heap)
        if node in visited:
            release(parent)
            continue
        visited.add(node)

        if node in marked:
            # Anonymous by the generalization property; propagate the mark.
            stats.nodes_marked += 1
            marked.update(graph.direct_generalizations(node))
            release(parent)
            continue

        if parent is None:
            frequency_set = provider.frequency_set(evaluator, node)
        else:
            frequency_set = evaluator.rollup(freq_cache[parent], node)
            release(parent)

        if evaluator.decide(node, frequency_set, k, max_suppression):
            marked.update(graph.direct_generalizations(node))
        else:
            survivors.discard(node)
            children = graph.direct_generalizations(node)
            if children:
                freq_cache[node] = frequency_set
                pending_children[node] = len(children)
                for child in children:
                    heapq.heappush(
                        heap, (child.height, next(counter), child, node)
                    )

    return sorted(survivors, key=LatticeNode.sort_key)


def run_incognito(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    provider_factory: Callable[[PreparedTable, FrequencyEvaluator], RootProvider]
    | None = None,
    algorithm: str = "basic-incognito",
) -> AnonymizationResult:
    """Shared driver for the Incognito variants (Figure 8's outer loop)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    qi = problem.quasi_identifier
    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats)
    started = time.perf_counter()
    # Provider construction may do real work (Cube Incognito's
    # pre-computation phase) so it is timed as part of the run.
    if provider_factory is None:
        provider = ScanRootProvider()
    else:
        provider = provider_factory(problem, evaluator)
    graph = initial_graph(qi, problem.heights)
    survivors: Sequence[LatticeNode] = []
    for size in range(1, len(qi) + 1):
        # One paper iteration = one a-priori subset size (lattice level of
        # the outer search): its own phase span, so traces show where the
        # scans and rollups of each subset size land.
        with obs.span(
            "incognito.iteration",
            algorithm=algorithm,
            subset_size=size,
            candidates=len(graph),
        ) as sp:
            checked_before = stats.nodes_checked
            stats.nodes_generated += len(graph)
            provider.prepare(evaluator, graph)
            survivors = _search_graph(
                evaluator, graph, k, max_suppression, provider
            )
            if sp:
                sp.set(
                    survivors=len(survivors),
                    nodes_checked=stats.nodes_checked - checked_before,
                )
        if size < len(qi):
            with obs.span("incognito.graph_generation", subset_size=size + 1):
                graph = graph_generation(survivors, graph, qi)
    stats.elapsed_seconds = time.perf_counter() - started

    return make_result(
        algorithm,
        k,
        survivors,
        stats,
        max_suppression=max_suppression,
    )


def basic_incognito(
    problem: PreparedTable, k: int, *, max_suppression: int = 0
) -> AnonymizationResult:
    """Basic Incognito (Section 3.1): sound and complete full-domain search."""
    return run_incognito(
        problem, k, max_suppression=max_suppression, algorithm="basic-incognito"
    )
