"""Cross-algorithm frequency-set cache (``repro.core.fscache``).

The paper's central cost observation is that frequency sets are expensive
to obtain from the base table and cheap to derive from one another (the
rollup property).  :class:`FrequencySetCache` turns that observation into a
memoization layer shared *across* algorithm runs: a bounded LRU store keyed
by (QI-subset, domain vector) that, on an exact miss, looks for the nearest
cached **ancestor** — a frequency set of the same attribute subset at
componentwise lower-or-equal levels — so the evaluator can roll up instead
of re-scanning the table.

Intended use:

* binary search probes the same lattice repeatedly at different heights;
  every node a failed probe scanned becomes a rollup source for every node
  of a later, higher probe;
* a figure sweep runs six algorithms over the *same* problem — the sets
  Bottom-Up materialises serve Basic Incognito's roots as exact hits.

The cache is bound to the identity of the prepared table it was filled
from (:meth:`bind`); binding a different problem clears it, so stale
frequency sets can never leak across datasets.  Entries are bounded by an
approximate byte budget (``key_codes`` + ``counts`` array sizes) with
least-recently-used eviction; an entry bigger than the whole budget is not
admitted at all rather than churning the cache.

Run-level accounting (``cache.hits`` / ``cache.misses`` /
``cache.evictions`` / ``cache.rollup_saves``) is recorded by the consuming
:class:`~repro.core.anonymity.FrequencyEvaluator` into its
:class:`~repro.core.stats.SearchStats`; the cache itself keeps lifetime
totals for inspection and tests.

A module-level *default* cache can be installed for a region
(:func:`use_cache`) so fixed-signature callers — the bench harness's
algorithm table, the CLI — can opt whole runs into caching without
threading a parameter through every layer.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.obs.counters import CounterSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.anonymity import FrequencySet
    from repro.core.problem import PreparedTable
    from repro.lattice.node import LatticeNode

#: Default byte budget (64 MiB) — roughly a few thousand Adults-sized sets.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Fixed per-entry overhead estimate added to the array payload bytes.
ENTRY_OVERHEAD_BYTES = 256


def _key(node: "LatticeNode") -> tuple[tuple[str, ...], tuple[int, ...]]:
    return (node.attributes, node.levels)


class FrequencySetCache:
    """Bounded LRU memoization of frequency sets, keyed by lattice node."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[tuple, tuple[FrequencySet, int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._fingerprint: tuple | None = None
        #: True once memory pressure demoted the cache to scan-through.
        self.degraded = False
        #: Lifetime totals in the registered ``cache.*`` counter namespace
        #: (run-level deltas live in each run's SearchStats).
        self.lifetime = CounterSet()

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, problem: "PreparedTable") -> None:
        """Tie the cache to ``problem``'s underlying data.

        Frequency sets are only valid for the exact table + compiled
        hierarchies they were computed from.  Binding a problem with a
        different fingerprint clears the cache; QI-subset views of the
        same prepared data (``with_quasi_identifier``) share a fingerprint
        and therefore share the cache.
        """
        fingerprint = problem.cache_fingerprint
        if self._fingerprint is None:
            self._fingerprint = fingerprint
        elif self._fingerprint != fingerprint:
            self.clear()
            self._fingerprint = fingerprint

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self._fingerprint = None

    def degrade(self) -> None:
        """Demote to scan-through under memory pressure.

        Drops every cached entry and refuses further admissions; lookups
        miss unconditionally.  Results stay correct — the evaluator simply
        re-derives every frequency set — but ``cache.*`` accounting and the
        scan/rollup split shift accordingly (see DESIGN.md §7).  Sticky for
        the cache's lifetime: the pressure signal means this process should
        stop holding frequency sets, not retry at the next batch.
        """
        self._entries.clear()
        self._bytes = 0
        self.degraded = True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, node: "LatticeNode") -> "FrequencySet | None":
        """Exact hit for ``node``'s frequency set, refreshing its recency."""
        if self.degraded:
            self.lifetime.incr("cache.misses")
            return None
        entry = self._entries.get(_key(node))
        if entry is None:
            self.lifetime.incr("cache.misses")
            return None
        self._entries.move_to_end(_key(node))
        self.lifetime.incr("cache.hits")
        return entry[0]

    def nearest_ancestor(self, node: "LatticeNode") -> "FrequencySet | None":
        """The highest cached strict specialization of ``node``, if any.

        "Nearest" means greatest total height (fewest levels left to roll
        up, hence the smallest re-aggregation); ties break on the level
        vector so the choice is deterministic regardless of insertion
        order.  The winner's recency is refreshed like a hit.
        """
        if self.degraded:
            return None
        best: "FrequencySet | None" = None
        for cached, _ in self._entries.values():
            cached_node = cached.node
            if cached_node.attributes != node.attributes:
                continue
            if cached_node.levels == node.levels:
                continue
            if any(
                have > want
                for have, want in zip(cached_node.levels, node.levels)
            ):
                continue
            if best is None or (
                (cached_node.height, cached_node.levels)
                > (best.node.height, best.node.levels)
            ):
                best = cached
        if best is not None:
            self._entries.move_to_end(_key(best.node))
            self.lifetime.incr("cache.ancestor_hits")
        return best

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def put(self, frequency_set: "FrequencySet") -> int:
        """Admit ``frequency_set``; returns the number of evictions caused."""
        if self.degraded:
            return 0
        key = _key(frequency_set.node)
        if key in self._entries:
            self._entries.move_to_end(key)
            return 0
        size = self.entry_bytes(frequency_set)
        if size > self.max_bytes:
            return 0  # would evict everything and still not fit
        self._entries[key] = (frequency_set, size)
        self._bytes += size
        self.lifetime.incr("cache.insertions")
        evicted = 0
        while self._bytes > self.max_bytes:
            _, (_, dropped_size) = self._entries.popitem(last=False)
            self._bytes -= dropped_size
            evicted += 1
        if evicted:
            self.lifetime.incr("cache.evictions", evicted)
        return evicted

    # ------------------------------------------------------------------
    # lifetime totals (read-only views over the dotted counter namespace)
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self.lifetime.get("cache.hits", 0))

    @property
    def ancestor_hits(self) -> int:
        return int(self.lifetime.get("cache.ancestor_hits", 0))

    @property
    def misses(self) -> int:
        return int(self.lifetime.get("cache.misses", 0))

    @property
    def evictions(self) -> int:
        return int(self.lifetime.get("cache.evictions", 0))

    @property
    def insertions(self) -> int:
        return int(self.lifetime.get("cache.insertions", 0))

    @staticmethod
    def entry_bytes(frequency_set: "FrequencySet") -> int:
        """Approximate resident size of one cached frequency set."""
        return (
            int(frequency_set.key_codes.nbytes)
            + int(frequency_set.counts.nbytes)
            + ENTRY_OVERHEAD_BYTES
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: "LatticeNode") -> bool:
        return _key(node) in self._entries

    def nodes(self) -> list["LatticeNode"]:
        """Cached nodes, least-recently-used first (the eviction order)."""
        return [cached.node for cached, _ in self._entries.values()]

    def __repr__(self) -> str:
        return (
            f"FrequencySetCache(entries={len(self)}, "
            f"bytes={self._bytes}/{self.max_bytes}, hits={self.hits}, "
            f"ancestor_hits={self.ancestor_hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


#: Region default used when algorithms are called without an explicit cache.
_default_cache: FrequencySetCache | None = None


def current_cache() -> FrequencySetCache | None:
    """The region-default cache (None means caching is off)."""
    return _default_cache


def set_default_cache(
    cache: FrequencySetCache | None,
) -> FrequencySetCache | None:
    """Install ``cache`` as the region default; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


@contextmanager
def use_cache(cache: FrequencySetCache | None) -> Iterator[FrequencySetCache | None]:
    """Temporarily install ``cache`` as the region default."""
    previous = set_default_cache(cache)
    try:
        yield cache
    finally:
        set_default_cache(previous)
