"""Frequency sets and k-anonymity checks (paper Sections 1.1 and 3).

A :class:`FrequencySet` is the paper's central data structure: the result of
``SELECT COUNT(*) ... GROUP BY`` over the table generalized to some lattice
node.  It supports the two properties the algorithms exploit:

* **Rollup property** — :meth:`FrequencySet.rollup` re-aggregates an
  existing frequency set up the hierarchy of one or more attributes without
  touching the base table.
* **Subset property** (data-cube direction) — :meth:`FrequencySet.project`
  drops attributes and re-aggregates, producing the frequency set of a
  quasi-identifier subset (used by Cube Incognito's pre-computation).

:class:`FrequencyEvaluator` wraps a :class:`~repro.core.problem.PreparedTable`
with a :class:`~repro.core.stats.SearchStats`, so every algorithm draws its
frequency sets through one instrumented chokepoint.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.problem import PreparedTable
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode
from repro.relational.groupby import group_by_codes
from repro.relational.table import Table


class FrequencySet:
    """The frequency set of a table with respect to a lattice node.

    Attributes
    ----------
    node:
        The generalization this frequency set was computed at.
    key_codes:
        ``(num_groups, node.size)`` array; column j holds codes into
        attribute j's level-``node.levels[j]`` dictionary.
    counts:
        Group sizes, int64.
    problem:
        The owning problem (supplies dictionaries for decoding).
    """

    __slots__ = ("node", "key_codes", "counts", "problem")

    def __init__(
        self,
        node: LatticeNode,
        key_codes: np.ndarray,
        counts: np.ndarray,
        problem: PreparedTable,
    ) -> None:
        self.node = node
        self.key_codes = key_codes
        self.counts = counts
        self.problem = problem

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return int(self.counts.shape[0])

    def min_count(self) -> int:
        return int(self.counts.min()) if self.counts.size else 0

    def total(self) -> int:
        return int(self.counts.sum())

    def rows_below(self, k: int) -> int:
        """Total tuples living in groups smaller than ``k`` (outliers)."""
        if not self.counts.size:
            return 0
        small = self.counts < k
        return int(self.counts[small].sum())

    def is_k_anonymous(self, k: int, max_suppression: int = 0) -> bool:
        """The k-anonymity property, with the optional suppression threshold.

        Without suppression this is simply ``min count >= k``.  With a
        threshold, a table counts as k-anonymous if removing all tuples in
        undersized groups stays within ``max_suppression`` rows (the paper's
        "up to a certain number of records may be completely excluded").

        An *empty* relation is k-anonymous for every k (vacuous truth: the
        definition quantifies over the rows, and there are none).  This also
        covers the suppression case where the remainder after dropping all
        undersized groups is empty.  Without the explicit check,
        ``min_count() == 0`` on an empty set would wrongly fail every k.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.num_groups == 0:
            return True
        if max_suppression == 0:
            return self.min_count() >= k
        return self.rows_below(k) <= max_suppression

    def group_values(self, group: int) -> tuple:
        """Decode group ``group``'s generalized value combination."""
        values = []
        for position, (attribute, level) in enumerate(self.node.items()):
            dictionary = self.problem.hierarchy(attribute).level_values(level)
            values.append(dictionary[self.key_codes[group, position]])
        return tuple(values)

    def as_dict(self) -> dict[tuple, int]:
        return {
            self.group_values(g): int(self.counts[g])
            for g in range(self.num_groups)
        }

    def to_table(self, count_name: str = "count") -> Table:
        """The relational representation (F1 of the paper's rollup example)."""
        from repro.relational.column import CODE_DTYPE, Column
        from repro.relational.schema import Schema

        columns = []
        for position, (attribute, level) in enumerate(self.node.items()):
            dictionary = self.problem.hierarchy(attribute).level_values(level)
            columns.append(
                Column(self.key_codes[:, position].astype(CODE_DTYPE), dictionary)
            )
        columns.append(Column.from_values(int(c) for c in self.counts))
        schema = Schema.of(*self.node.attributes, count_name)
        return Table(schema, columns)

    # ------------------------------------------------------------------
    # derivation (the rollup and cube primitives)
    # ------------------------------------------------------------------
    def rollup(self, target: LatticeNode) -> "FrequencySet":
        """Re-aggregate up the hierarchies to ``target`` (rollup property).

        ``target`` must share this node's attribute set with every level
        greater than or equal to the current one.  Works for multi-level,
        multi-attribute jumps (used by super-roots).
        """
        self.node.distance_vector(target)  # validates comparability
        code_arrays = []
        radices = []
        for position, attribute in enumerate(self.node.attributes):
            hierarchy = self.problem.hierarchy(attribute)
            from_level = self.node.levels[position]
            to_level = target.levels[position]
            codes = self.key_codes[:, position]
            if to_level != from_level:
                codes = hierarchy.mapping_between(from_level, to_level)[codes]
            code_arrays.append(codes)
            radices.append(hierarchy.cardinality(to_level))
        key_codes, counts = _regroup_weighted(code_arrays, radices, self.counts)
        return FrequencySet(target, key_codes, counts, self.problem)

    def project(self, attributes: Sequence[str]) -> "FrequencySet":
        """Drop attributes and re-aggregate (the data-cube/subset direction)."""
        attributes = tuple(attributes)
        if not attributes:
            raise ValueError("cannot project a frequency set to no attributes")
        positions = [self.node.attributes.index(name) for name in attributes]
        target = self.node.subset(attributes)
        code_arrays = [self.key_codes[:, position] for position in positions]
        radices = [
            self.problem.hierarchy(name).cardinality(target.levels[i])
            for i, name in enumerate(attributes)
        ]
        key_codes, counts = _regroup_weighted(code_arrays, radices, self.counts)
        return FrequencySet(target, key_codes, counts, self.problem)


def _regroup_weighted(
    code_arrays: Sequence[np.ndarray],
    radices: Sequence[int],
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Group code rows and SUM ``weights`` per group (SUM(count) GROUP BY).

    Mirrors :func:`repro.relational.groupby.group_by_codes` but aggregates a
    weight column instead of counting rows — this is the paper's
    ``SUM(count) ... GROUP BY`` rollup query.
    """
    from repro.relational.column import CODE_DTYPE

    if not code_arrays:
        raise ValueError("regroup requires at least one key column")
    num_rows = code_arrays[0].shape[0]
    if num_rows == 0:
        empty = np.empty((0, len(code_arrays)), dtype=CODE_DTYPE)
        return empty, np.empty(0, dtype=np.int64)
    regroup_started = time.perf_counter()
    with obs.span("groupby", kind="weighted", rows=num_rows) as sp:
        key_codes, counts = _regroup_weighted_nonempty(
            code_arrays, radices, weights, sp
        )
    obs.observe("latency.groupby_seconds", time.perf_counter() - regroup_started)
    return key_codes, counts


def _regroup_weighted_nonempty(
    code_arrays: Sequence[np.ndarray],
    radices: Sequence[int],
    weights: np.ndarray,
    sp,
) -> tuple[np.ndarray, np.ndarray]:
    from repro.relational.column import CODE_DTYPE

    num_rows = code_arrays[0].shape[0]

    # Dense mixed-radix keying (same fast path as group_by_codes): combine
    # the key columns into one int64 per row, aggregate with bincount over
    # the inverse index, then decode the unique keys back to code columns.
    # The cardinality product accumulates in a plain Python int — a numpy
    # integer radix would silently wrap at int64 and could sneak a
    # too-large key space past the limit check (see groupby._combine_codes).
    space = 1
    dense = True
    for radix in radices:
        space *= max(int(radix), 1)
        if space > 1 << 62:
            dense = False
            break
    if dense:
        keys = np.zeros(num_rows, dtype=np.int64)
        for codes, radix in zip(code_arrays, radices):
            keys *= max(radix, 1)
            keys += codes
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        sums = np.bincount(
            inverse, weights=weights.astype(np.float64),
            minlength=unique_keys.shape[0],
        )
        key_codes = np.empty((unique_keys.shape[0], len(code_arrays)), dtype=CODE_DTYPE)
        remaining = unique_keys.copy()
        for position in range(len(code_arrays) - 1, -1, -1):
            radix = max(radices[position], 1)
            key_codes[:, position] = remaining % radix
            remaining //= radix
        if sp:
            sp.set(dense=True, groups=int(unique_keys.shape[0]))
        return key_codes, np.round(sums).astype(np.int64)

    stacked = np.column_stack(
        [np.asarray(codes, dtype=np.int64) for codes in code_arrays]
    )
    unique_rows, inverse = np.unique(stacked, axis=0, return_inverse=True)
    sums = np.bincount(
        inverse, weights=weights.astype(np.float64), minlength=unique_rows.shape[0]
    )
    if sp:
        sp.set(dense=False, groups=int(unique_rows.shape[0]))
    return unique_rows.astype(CODE_DTYPE), np.round(sums).astype(np.int64)


def compute_frequency_set(
    problem: PreparedTable, node: LatticeNode
) -> FrequencySet:
    """Frequency set of the base table at ``node`` — one full table scan."""
    code_arrays = []
    radices = []
    for attribute, level in node.items():
        hierarchy = problem.hierarchy(attribute)
        base_codes = problem.table.column(attribute).codes
        code_arrays.append(hierarchy.generalize_codes(base_codes, level))
        radices.append(hierarchy.cardinality(level))
    key_codes, counts = group_by_codes(code_arrays, radices)
    return FrequencySet(node, key_codes, counts, problem)


def compute_frequency_set_range(
    problem: PreparedTable, node: LatticeNode, start: int, stop: int
) -> FrequencySet:
    """*Partial* frequency set of rows ``[start, stop)`` at ``node``.

    The building block of both the out-of-core chunked scan and the
    shard-parallel evaluator: because COUNT is distributive, the partial
    sets of a row partition merge exactly to the whole-table scan (see
    :func:`repro.core.outofcore.merge_partial_frequency_sets`).  The
    returned set is labelled with ``node`` like a full scan — it is the
    caller's job to remember which row range it covers.
    """
    num_rows = problem.table.num_rows
    if not 0 <= start <= stop <= num_rows:
        raise ValueError(
            f"row range [{start}, {stop}) out of bounds for {num_rows} rows"
        )
    from repro.relational.column import CODE_DTYPE

    if start == stop:
        empty = np.empty((0, node.size), dtype=CODE_DTYPE)
        return FrequencySet(node, empty, np.empty(0, dtype=np.int64), problem)
    code_arrays = []
    radices = []
    for attribute, level in node.items():
        hierarchy = problem.hierarchy(attribute)
        base_codes = problem.table.column(attribute).codes[start:stop]
        code_arrays.append(hierarchy.generalize_codes(base_codes, level))
        radices.append(hierarchy.cardinality(level))
    key_codes, counts = group_by_codes(code_arrays, radices)
    return FrequencySet(node, key_codes, counts, problem)


def check_k_anonymity(
    table: Table,
    quasi_identifier: Sequence[str],
    k: int,
    *,
    max_suppression: int = 0,
) -> bool:
    """Independent k-anonymity check on a plain table (no hierarchies).

    This is the paper's SQL definition evaluated directly —
    ``SELECT COUNT(*) GROUP BY quasi_identifier`` with every count >= k —
    used by tests and examples to validate algorithm outputs without
    trusting any algorithm machinery.
    """
    from repro.relational.groupby import group_by_count

    if table.num_rows == 0:
        # Same vacuous-truth semantics as FrequencySet.is_k_anonymous: an
        # empty relation satisfies k-anonymity for every k.
        return True
    result = group_by_count(table, list(quasi_identifier))
    if max_suppression == 0:
        return result.min_count() >= k
    small = result.counts < k
    return int(result.counts[small].sum()) <= max_suppression


class FrequencyEvaluator:
    """Instrumented frequency-set factory shared by all algorithms.

    Every frequency set the engine materialises flows through exactly one
    of :meth:`scan`, :meth:`rollup`, or :meth:`project`, each of which

    * updates the run's :class:`SearchStats` counters (the legacy view —
      these remain the ground truth the bench figures report), and
    * opens a same-named :mod:`repro.obs` trace span, so an enabled tracer
      sees one ``scan`` / ``rollup`` / ``project`` span per frequency set,
      with the underlying ``groupby`` work nested inside.

    With a :class:`~repro.core.fscache.FrequencySetCache` attached, the
    higher-level :meth:`resolve_job` / :meth:`materialize` entry points
    substitute cached results for table work: an exact cache hit costs
    nothing (``cache.hits``), and a cached *ancestor* turns a would-be
    table scan into a rollup (``cache.rollup_saves``).  The raw
    :meth:`scan` / :meth:`rollup` primitives stay cache-oblivious so the
    substitution is visible in — never hidden from — the counters.
    """

    def __init__(
        self,
        problem: PreparedTable,
        stats: SearchStats | None = None,
        *,
        cache=None,
    ) -> None:
        self.problem = problem
        self.stats = stats if stats is not None else SearchStats()
        self.cache = cache
        if cache is not None:
            cache.bind(problem)
        # Adopt the region-default delta context when it serves exactly
        # this dataset version (fingerprint equality covers QI-subset
        # views, which share table and compiled hierarchies).  Imported
        # lazily: repro.incremental sits above repro.core.
        from repro.incremental.context import current_delta_context

        delta = current_delta_context()
        self._delta = (
            delta if delta is not None and delta.matches(problem) else None
        )

    def scan(self, node: LatticeNode) -> FrequencySet:
        """Compute from the base table (counted as a table scan)."""
        with obs.span("scan") as sp:
            with self.stats.metrics.timer("latency.scan_seconds"):
                result = compute_frequency_set(self.problem, node)
            if sp:
                sp.set(
                    node=str(node),
                    rows_scanned=self.problem.num_rows,
                    groups=result.num_groups,
                )
        self.stats.table_scans += 1
        self.stats.note_frequency_set(result.num_groups)
        return result

    def scan_range(
        self, node: LatticeNode, start: int, stop: int
    ) -> FrequencySet:
        """Partial scan of rows ``[start, stop)`` (one shard of a scan).

        Deliberately does **not** touch the ``frequency.*`` counters or the
        ``dist.*`` metrics: a ranged scan produces a *partial* set, and the
        shard-mode materializer accounts one table scan (plus one
        frequency-set observation) for the *merged* result — keeping those
        surfaces bit-identical to a serial whole-table scan.  The shard
        work itself is visible under the ``shard.*`` namespace.
        """
        with obs.span("scan", kind="range") as sp:
            with self.stats.metrics.timer("shard.range_seconds"):
                result = compute_frequency_set_range(
                    self.problem, node, start, stop
                )
            if sp:
                sp.set(
                    node=str(node),
                    rows_scanned=stop - start,
                    groups=result.num_groups,
                )
        self.stats.shard_range_scans += 1
        self.stats.shard_rows_scanned += stop - start
        self.stats.metrics.observe("shard.rows_per_range", stop - start)
        return result

    def delta_scan(
        self,
        node: LatticeNode,
        base_keys: np.ndarray,
        base_counts: np.ndarray,
        start: int,
    ) -> FrequencySet:
        """Scan only rows ``[start, num_rows)`` and merge the base prefix in.

        The incremental replacement for :meth:`scan`: ``base_keys`` /
        ``base_counts`` are the node's exact frequency set over the first
        ``start`` rows (remembered from an earlier dataset version), the
        appended suffix is scanned directly, and the two partials fold with
        the exact distributive COUNT merge.  Because dictionary and level
        codes are prefix-stable under appends, the merged set — groups,
        order, and counts — is bit-identical to a whole-table scan, so this
        accounts exactly like one: ``frequency.table_scans`` plus one
        frequency-set observation.  The saved work is visible under
        ``incremental.*`` (delta rows scanned, base rows reused) and the
        ``latency.delta_*`` timers.  An empty delta (``start == num_rows``)
        still takes this path, keeping the plan — and therefore every
        counter an algorithm decision can depend on — history-independent.
        """
        from repro.core.outofcore import merge_partials

        num_rows = self.problem.num_rows
        with obs.span("scan", kind="delta") as sp:
            with self.stats.metrics.timer("latency.delta_scan_seconds"):
                partial = compute_frequency_set_range(
                    self.problem, node, start, num_rows
                )
            with self.stats.metrics.timer("latency.delta_merge_seconds"):
                radices = [
                    self.problem.hierarchy(attribute).cardinality(level)
                    for attribute, level in node.items()
                ]
                key_codes, counts = merge_partials(
                    [base_keys, partial.key_codes],
                    [base_counts, partial.counts],
                    radices,
                )
            result = FrequencySet(node, key_codes, counts, self.problem)
            if sp:
                sp.set(
                    node=str(node),
                    rows_scanned=num_rows - start,
                    rows_reused=start,
                    groups=result.num_groups,
                )
        self.stats.incremental_delta_scans += 1
        self.stats.incremental_delta_rows_scanned += num_rows - start
        self.stats.incremental_base_rows_reused += start
        self.stats.table_scans += 1
        self.stats.note_frequency_set(result.num_groups)
        return result

    def rollup(self, source: FrequencySet, target: LatticeNode) -> FrequencySet:
        """Compute by rollup from ``source`` (counted as a rollup)."""
        with obs.span("rollup") as sp:
            with self.stats.metrics.timer("latency.rollup_seconds"):
                result = source.rollup(target)
            if sp:
                sp.set(
                    source=str(source.node),
                    target=str(target),
                    source_rows=source.num_groups,
                    groups=result.num_groups,
                )
        self.stats.rollups += 1
        self.stats.note_frequency_set(result.num_groups)
        self.stats.rollup_source_rows += source.num_groups
        self.stats.metrics.observe("dist.rollup_source_rows", source.num_groups)
        return result

    def project(self, source: FrequencySet, attributes: Sequence[str]) -> FrequencySet:
        """Compute by projecting attributes out (counted as a projection)."""
        with obs.span("project") as sp:
            with self.stats.metrics.timer("latency.project_seconds"):
                result = source.project(attributes)
            if sp:
                sp.set(
                    source=str(source.node),
                    attributes=",".join(attributes),
                    source_rows=source.num_groups,
                    groups=result.num_groups,
                )
        self.stats.projections += 1
        self.stats.note_frequency_set(result.num_groups)
        return result

    def decide(
        self, node: LatticeNode, frequency_set: FrequencySet, k: int, max_suppression: int
    ) -> bool:
        """Check anonymity and record the node decision."""
        self.stats.record_check(node.size)
        return frequency_set.is_k_anonymous(k, max_suppression)

    # ------------------------------------------------------------------
    # cache-aware planning (used directly and by the parallel evaluator)
    # ------------------------------------------------------------------
    def resolve_job(
        self, node: LatticeNode, source: FrequencySet | None = None
    ) -> tuple[str, FrequencySet | None]:
        """Plan how to obtain ``node``'s frequency set.

        Returns ``(kind, payload)`` where kind is ``"use"`` (payload *is*
        the set — zero cost), ``"rollup"`` (re-aggregate payload up to
        ``node``), ``"scan"`` (payload None — scan the base table), or
        ``"delta"`` (incremental maintenance: payload is the remembered
        ``(base_keys, base_counts, covered_rows)`` prefix set; scan only
        the appended rows and merge — see :meth:`delta_scan`).
        ``source`` is an algorithm-supplied rollup source (a failed BFS
        parent, a super-root, a cube base set); it wins over the cache's
        ancestor search because it is by construction at least as close.

        Cache accounting happens here — the planning step — so serial and
        parallel execution record identical ``cache.*`` counters: an exact
        hit bumps ``cache.hits``; an ancestor substitution bumps both
        ``cache.hits`` and ``cache.rollup_saves``; only a plan that ends
        in a table scan despite consulting the cache bumps
        ``cache.misses``.  With a cache attached, the plan step is timed
        into ``latency.cache_lookup_seconds`` (lookup + ancestor search).
        """
        if self.cache is None:
            return self._plan_job(node, source)
        with self.stats.metrics.timer("latency.cache_lookup_seconds"):
            return self._plan_job(node, source)

    def _plan_job(
        self, node: LatticeNode, source: FrequencySet | None = None
    ) -> tuple[str, FrequencySet | None]:
        if source is not None and source.node == node:
            return ("use", source)
        cache = self.cache
        if cache is not None:
            hit = cache.get(node)
            if hit is not None:
                self.stats.cache_hits += 1
                return ("use", hit)
        if source is not None:
            return ("rollup", source)
        if cache is not None:
            ancestor = cache.nearest_ancestor(node)
            if ancestor is not None:
                self.stats.cache_hits += 1
                self.stats.cache_rollup_saves += 1
                return ("rollup", ancestor)
            self.stats.cache_misses += 1
        delta = self._delta
        if delta is not None:
            # Incremental maintenance: a remembered prefix set turns this
            # scan into a delta-only scan plus an exact merge.  Decided
            # here — in the parent, like all planning — so the
            # incremental.* accounting is identical across execution
            # modes.  Only a would-be *scan* is replaced: rollups are
            # already cheaper than any delta scan and keeping them keeps
            # the frequency.* counters bit-identical to from-scratch.
            piece = delta.lookup(node)
            if piece is not None:
                self.stats.incremental_base_hits += 1
                return (
                    "delta",
                    (piece.key_codes, piece.counts, piece.covered_rows),
                )
            self.stats.incremental_base_misses += 1
        return ("scan", None)

    def execute_job(
        self, node: LatticeNode, kind: str, payload: FrequencySet | None
    ) -> FrequencySet:
        """Carry out a plan from :meth:`resolve_job` (no cache admission)."""
        if kind == "use":
            assert payload is not None
            return payload
        if kind == "rollup":
            assert payload is not None
            return self.rollup(payload, node)
        if kind == "scan":
            return self.scan(node)
        if kind == "scan_range":
            # Shard-mode expansion of a "scan" plan: payload is the row
            # range.  Only ever produced by the shard materializer, never
            # by resolve_job.
            start, stop = payload  # type: ignore[misc]
            return self.scan_range(node, start, stop)
        if kind == "delta":
            # Incremental plan: payload is the remembered base prefix set
            # plus the first un-covered row (see _plan_job).
            base_keys, base_counts, start = payload  # type: ignore[misc]
            return self.delta_scan(node, base_keys, base_counts, start)
        raise ValueError(f"unknown frequency-set job kind {kind!r}")

    def cache_put(self, frequency_set: FrequencySet) -> None:
        """Admit a freshly materialised set, accounting evictions.

        With a delta context adopted, every materialised set is also
        *captured* as that node's prefix set for the next dataset version
        — any full materialisation (scan, rollup, projection, delta, or a
        shard/delta merge) covers exactly the current row count.  Capture
        happens in the parent for all execution modes (workers never see
        the context), so ``incremental.captures`` is mode-independent.
        """
        delta = self._delta
        if delta is not None:
            evicted = delta.capture(frequency_set, self.problem.num_rows)
            self.stats.incremental_captures += 1
            if evicted:
                self.stats.incremental_evictions += evicted
        if self.cache is None:
            return
        evicted = self.cache.put(frequency_set)
        if evicted:
            self.stats.cache_evictions += evicted

    def materialize(
        self, node: LatticeNode, source: FrequencySet | None = None
    ) -> FrequencySet:
        """Obtain ``node``'s frequency set the cheapest known way.

        The serial convenience wrapper over resolve → execute → admit; the
        parallel evaluator performs the same three steps with the middle
        one fanned out across workers.
        """
        kind, payload = self.resolve_job(node, source)
        result = self.execute_job(node, kind, payload)
        if kind != "use":
            self.cache_put(result)
        return result
