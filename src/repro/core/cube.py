"""Cube Incognito (paper Section 3.3.2).

Basic and Super-roots Incognito still scan the table once per root (or per
family) because the a-priori iteration order — small subsets first — is the
opposite of the data cube's: a cube would compute ⟨Sex, Zipcode⟩ first and
derive ⟨Zipcode⟩ from it by rollup.  Cube Incognito has it both ways: a
pre-computation phase builds the zero-generalization frequency sets of
*every* quasi-identifier subset, bottom-up like a data cube (one table scan
for the full QI, everything else derived by projection), and the search
phase then serves every root by rolling up from its subset's zero-level
frequency set — no table scans at all during the search.

The pre-computation cost is reported separately (``stats.cube_build_*``):
Figure 12 of the paper breaks Cube Incognito's total cost into exactly
these two parts.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.incognito import RootProvider, run_incognito
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult
from repro.lattice.node import LatticeNode


def build_zero_generalization_cube(
    problem: PreparedTable, evaluator: FrequencyEvaluator
) -> dict[tuple[str, ...], FrequencySet]:
    """All subsets' zero-generalization frequency sets, data-cube style.

    One scan materialises the full-QI frequency set; every smaller subset is
    derived from a one-attribute-larger superset by projection (summing
    counts), exactly as group-bys are ordered when computing the data cube.
    Returns a mapping keyed by attribute tuple (in QI order).
    """
    qi = problem.quasi_identifier
    stats = evaluator.stats
    started = time.perf_counter()
    scans_before = stats.table_scans

    with obs.span("cube.build", qi_size=len(qi)) as sp:
        full_node = problem.bottom_node()
        # materialize (not scan) so an attached cache can serve the full-QI
        # set from a previous run instead of re-scanning the table.
        cube: dict[tuple[str, ...], FrequencySet] = {
            qi: evaluator.materialize(full_node)
        }
        # Derive all proper subsets, largest first, each from the superset
        # that adds back the lowest-ranked missing attribute (always
        # already built).
        for size in range(len(qi) - 1, 0, -1):
            for subset in _subsets_of_size(qi, size):
                missing = next(name for name in qi if name not in subset)
                parent_attrs = tuple(
                    name for name in qi if name in subset or name == missing
                )
                parent = cube[parent_attrs]
                cube[subset] = evaluator.project(parent, subset)
                evaluator.cache_put(cube[subset])
        if sp:
            sp.set(subsets=len(cube))

    stats.cube_build_scans += stats.table_scans - scans_before
    stats.cube_build_seconds += time.perf_counter() - started
    return cube


def _subsets_of_size(qi: tuple[str, ...], size: int) -> list[tuple[str, ...]]:
    import itertools

    return [tuple(combo) for combo in itertools.combinations(qi, size)]


class CubeRootProvider(RootProvider):
    """Serve every root by rollup from its subset's zero-level set."""

    def __init__(self, problem: PreparedTable, evaluator: FrequencyEvaluator) -> None:
        self._cube = build_zero_generalization_cube(problem, evaluator)

    def root_source(
        self, evaluator: FrequencyEvaluator, node: LatticeNode
    ) -> FrequencySet | None:
        return self._cube[node.attributes]


def cube_incognito(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    execution=None,
    cache=None,
    checkpoint=None,
    resume: bool = False,
) -> AnonymizationResult:
    """Cube Incognito (Section 3.3.2).

    The returned stats carry the pre-computation cost in
    ``cube_build_scans`` / ``cube_build_seconds``; ``elapsed_seconds`` is
    the total including the build, so the Figure 12 breakdown is
    ``anonymization = elapsed - cube_build``.

    When resuming from a checkpoint the cube is rebuilt (it is derived
    state, deliberately not persisted) but the duplicate build counters
    are discarded in favor of the snapshot's, so resumed totals match an
    uninterrupted run.
    """
    return run_incognito(
        problem,
        k,
        max_suppression=max_suppression,
        provider_factory=CubeRootProvider,
        algorithm="cube-incognito",
        execution=execution,
        cache=cache,
        checkpoint=checkpoint,
        resume=resume,
    )
