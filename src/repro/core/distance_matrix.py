"""Samarati's distance-vector matrix (paper §4.1, footnote 2).

    "Samarati suggests an alternative approach whereby a matrix of
    distance vectors is constructed between unique tuples [14].  However,
    we found constructing this matrix prohibitively expensive for large
    databases."

The idea (Samarati 2001): for every pair of distinct quasi-identifier
tuples, compute the *distance vector* — per attribute, the lowest
hierarchy level at which the two values coincide.  A full-domain
generalization at node N merges tuples u, v iff N dominates their distance
vector componentwise, so the matrix answers k-anonymity for *every* node
without touching the table again: tuple u's equivalence class at N is
``{v : dv(u, v) <= N}``.

We implement it both as the k-anonymity oracle it was proposed to be
(:class:`DistanceVectorMatrix`) and as a lattice-search algorithm
(:func:`matrix_binary_search`, binary search on height like Samarati's,
but answering each height probe from the matrix).  The benchmark in
``benchmarks/test_distance_matrix.py`` reproduces the footnote's finding:
construction is Θ(d² · n_attrs) in the number d of distinct tuples, which
is quadratic-in-table-size for high-cardinality data — prohibitive long
before the group-by approach breaks a sweat.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode


class DistanceVectorMatrix:
    """All pairwise distance vectors between distinct QI tuples."""

    def __init__(self, problem: PreparedTable) -> None:
        self.problem = problem
        qi = problem.quasi_identifier
        base_columns = [
            problem.table.column(name).codes.astype(np.int64) for name in qi
        ]
        stacked = (
            np.column_stack(base_columns)
            if problem.num_rows
            else np.empty((0, len(qi)), dtype=np.int64)
        )
        #: distinct QI tuples (rows of codes) and each tuple's multiplicity
        self.tuples, counts = np.unique(stacked, axis=0, return_counts=True)
        self.counts = counts.astype(np.int64)
        d = self.tuples.shape[0]
        #: matrix[i, j, a] = lowest level of attribute a at which tuples
        #: i and j coincide (0 on the diagonal)
        self.matrix = np.zeros((d, d, len(qi)), dtype=np.int8)
        for position, name in enumerate(qi):
            hierarchy = problem.hierarchy(name)
            codes = self.tuples[:, position]
            # level-by-level: pairs still unequal at level l have dv > l
            distance = np.zeros((d, d), dtype=np.int8)
            for level in range(hierarchy.height + 1):
                lifted = hierarchy.level_lookup(level)[codes]
                unequal = lifted[:, None] != lifted[None, :]
                distance[unequal] = level + 1
            self.matrix[:, :, position] = distance

    @property
    def num_tuples(self) -> int:
        return int(self.tuples.shape[0])

    def class_sizes_at(self, node: LatticeNode) -> np.ndarray:
        """Equivalence-class size of each distinct tuple at ``node``."""
        if self.num_tuples == 0:
            return np.empty(0, dtype=np.int64)
        levels = np.asarray(node.levels, dtype=np.int8)
        merged = (self.matrix <= levels[None, None, :]).all(axis=2)
        return merged @ self.counts

    def is_k_anonymous(self, node: LatticeNode, k: int) -> bool:
        sizes = self.class_sizes_at(node)
        return bool(sizes.size == 0 or sizes.min() >= k)


def matrix_binary_search(
    problem: PreparedTable, k: int
) -> AnonymizationResult:
    """Samarati's binary search answered from the distance-vector matrix.

    Functionally identical to
    :func:`repro.core.binary_search.samarati_binary_search` (one
    minimal-height node, not complete); the cost moves from per-probe
    group-bys into the one-off matrix construction, which the stats expose
    via ``cube_build_seconds`` (reused as the generic "pre-computation
    time" slot).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    stats = SearchStats()
    started = time.perf_counter()
    matrix = DistanceVectorMatrix(problem)
    stats.cube_build_seconds = time.perf_counter() - started
    stats.table_scans = 1  # the matrix construction's single pass

    lattice = problem.lattice()
    stats.nodes_generated = lattice.size

    def first_anonymous(height: int) -> LatticeNode | None:
        for node in sorted(
            lattice.nodes_at_height(height), key=LatticeNode.sort_key
        ):
            stats.record_check(node.size)
            if matrix.is_k_anonymous(node, k):
                return node
        return None

    low, high = 0, lattice.max_height
    best: LatticeNode | None = None
    while low < high:
        middle = (low + high) // 2
        found = first_anonymous(middle)
        if found is not None:
            best = found
            high = middle
        else:
            low = middle + 1
    if best is None or best.height != low:
        found = first_anonymous(low)
        if found is not None:
            best = found

    stats.elapsed_seconds = time.perf_counter() - started
    return make_result(
        "matrix-binary-search",
        k,
        [best] if best is not None else [],
        stats,
        complete=False,
        distinct_tuples=matrix.num_tuples,
    )
