"""Algorithm results: the k-anonymous node set plus instrumentation.

Every search algorithm returns an :class:`AnonymizationResult`.  Sound and
complete algorithms (the Incognito variants, exhaustive bottom-up) populate
``anonymous_nodes`` with *every* k-anonymous full-domain generalization;
single-answer algorithms (binary search, Datafly) return a single node and
set ``complete=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.generalize import GeneralizedView, apply_generalization
from repro.core.minimality import (
    minimal_height_nodes,
    pareto_minimal_nodes,
    weighted_minimal_node,
)
from repro.core.problem import PreparedTable
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode


@dataclass
class AnonymizationResult:
    """Outcome of one k-anonymization search."""

    algorithm: str
    k: int
    anonymous_nodes: list[LatticeNode]
    stats: SearchStats
    max_suppression: int = 0
    #: True when ``anonymous_nodes`` is the complete solution set
    complete: bool = True
    #: Datafly-style single answers note actual suppressed rows here
    suppressed_rows: int = 0
    #: free-form extras (e.g. binary search's probe trace)
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.anonymous_nodes = sorted(self.anonymous_nodes, key=LatticeNode.sort_key)

    @property
    def found(self) -> bool:
        return bool(self.anonymous_nodes)

    # ------------------------------------------------------------------
    # minimality helpers
    # ------------------------------------------------------------------
    def minimal_height(self) -> list[LatticeNode]:
        return minimal_height_nodes(self.anonymous_nodes)

    def pareto_minimal(self) -> list[LatticeNode]:
        return pareto_minimal_nodes(self.anonymous_nodes)

    def weighted_minimal(self, weights: Mapping[str, float]) -> LatticeNode:
        return weighted_minimal_node(self.anonymous_nodes, weights)

    def best_node(self) -> LatticeNode:
        """A deterministic minimal-height representative."""
        minimal = self.minimal_height()
        if not minimal:
            raise ValueError(
                f"{self.algorithm}: no {self.k}-anonymous generalization found"
            )
        return minimal[0]

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def apply(
        self,
        problem: PreparedTable,
        node: LatticeNode | None = None,
    ) -> GeneralizedView:
        """Materialise the anonymized view for ``node`` (default: best node).

        Suppression honours the result's threshold: outlier tuples are
        dropped when the search ran with ``max_suppression > 0``.
        """
        chosen = node if node is not None else self.best_node()
        if node is not None and node not in self.anonymous_nodes:
            raise ValueError(f"{node} is not in this result's anonymous set")
        return apply_generalization(
            problem, chosen, k=self.k, max_suppression=self.max_suppression
        )

    def describe(self) -> str:
        lines = [
            f"{self.algorithm}: k={self.k}, "
            f"{len(self.anonymous_nodes)} anonymous generalization(s)"
            + ("" if self.complete else " (single-answer algorithm)"),
            f"  stats: {self.stats.summary()}",
        ]
        minimal = self.minimal_height()
        if minimal:
            lines.append(
                f"  minimal height {minimal[0].height}: "
                + ", ".join(str(node) for node in minimal[:6])
                + (" ..." if len(minimal) > 6 else "")
            )
        return "\n".join(lines)


def make_result(
    algorithm: str,
    k: int,
    nodes: Sequence[LatticeNode],
    stats: SearchStats,
    *,
    max_suppression: int = 0,
    complete: bool = True,
    **details,
) -> AnonymizationResult:
    """Convenience constructor used by the algorithm modules."""
    return AnonymizationResult(
        algorithm=algorithm,
        k=k,
        anonymous_nodes=list(nodes),
        stats=stats,
        max_suppression=max_suppression,
        complete=complete,
        details=dict(details),
    )
