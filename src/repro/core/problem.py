"""The anonymization problem instance: table + quasi-identifier + hierarchies.

:class:`PreparedTable` binds a relation to the domain generalization
hierarchies of its quasi-identifier attributes, compiling each hierarchy over
the column's actual value dictionary.  Every algorithm takes a
``PreparedTable`` (plus ``k``); the compiled lookups make both "scan and
group at level ℓ" and "roll a frequency set up a level" single fancy-index
operations.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.hierarchy.base import CompiledHierarchy, Hierarchy
from repro.hierarchy.dimension import dimension_table
from repro.lattice.lattice import GeneralizationLattice
from repro.lattice.node import LatticeNode
from repro.relational.star import StarSchema
from repro.relational.table import Table


class PreparedTable:
    """A table prepared for k-anonymization over a quasi-identifier.

    Parameters
    ----------
    table:
        The microdata relation T (a multiset of tuples).
    hierarchies:
        Mapping from attribute name to its generalization hierarchy.  Both
        abstract :class:`~repro.hierarchy.base.Hierarchy` objects (compiled
        here over the column dictionary) and pre-compiled hierarchies are
        accepted.
    quasi_identifier:
        The QI attribute order; defaults to ``hierarchies``' key order.  A
        subset of the hierarchy keys may be given to anonymize over fewer
        attributes (the Figure 10 sweeps do exactly this).
    """

    def __init__(
        self,
        table: Table,
        hierarchies: Mapping[str, Hierarchy | CompiledHierarchy],
        quasi_identifier: Sequence[str] | None = None,
    ) -> None:
        if quasi_identifier is None:
            quasi_identifier = list(hierarchies)
        missing = [name for name in quasi_identifier if name not in hierarchies]
        if missing:
            raise ValueError(f"no hierarchy for quasi-identifier attributes {missing}")
        self._table = table
        self._qi = tuple(quasi_identifier)
        self._compiled: dict[str, CompiledHierarchy] = {}
        for name in self._qi:
            hierarchy = hierarchies[name]
            column = table.column(name)  # raises if the attribute is missing
            if isinstance(hierarchy, CompiledHierarchy):
                if hierarchy.base_size != column.cardinality:
                    raise ValueError(
                        f"compiled hierarchy for {name!r} covers "
                        f"{hierarchy.base_size} values, column has "
                        f"{column.cardinality}"
                    )
                self._compiled[name] = hierarchy
            else:
                self._compiled[name] = hierarchy.compile(column.values)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        return self._table

    @property
    def quasi_identifier(self) -> tuple[str, ...]:
        return self._qi

    @property
    def num_rows(self) -> int:
        return self._table.num_rows

    @property
    def cache_fingerprint(self) -> tuple:
        """Identity of the prepared data, for frequency-set cache binding.

        Two problems share a fingerprint exactly when they share the same
        table object and the same compiled hierarchies — which is what
        makes their frequency sets interchangeable.  QI-subset views from
        :meth:`with_quasi_identifier` share both, so a cache filled under
        one view serves the others.
        """
        return (
            id(self._table),
            tuple(sorted((name, id(h)) for name, h in self._compiled.items())),
        )

    def hierarchy(self, attribute: str) -> CompiledHierarchy:
        try:
            return self._compiled[attribute]
        except KeyError:
            raise KeyError(
                f"{attribute!r} is not a quasi-identifier attribute "
                f"(have {list(self._qi)})"
            ) from None

    def height(self, attribute: str) -> int:
        return self.hierarchy(attribute).height

    @property
    def heights(self) -> dict[str, int]:
        return {name: self.height(name) for name in self._qi}

    def lattice(self, attributes: Sequence[str] | None = None) -> GeneralizationLattice:
        """The full generalization lattice over ``attributes`` (default: QI)."""
        attributes = tuple(attributes) if attributes is not None else self._qi
        return GeneralizationLattice(
            attributes, [self.height(name) for name in attributes]
        )

    def bottom_node(self, attributes: Sequence[str] | None = None) -> LatticeNode:
        attributes = tuple(attributes) if attributes is not None else self._qi
        return LatticeNode(attributes, (0,) * len(attributes))

    def top_node(self, attributes: Sequence[str] | None = None) -> LatticeNode:
        attributes = tuple(attributes) if attributes is not None else self._qi
        return LatticeNode(
            attributes, tuple(self.height(name) for name in attributes)
        )

    def with_quasi_identifier(self, attributes: Sequence[str]) -> "PreparedTable":
        """A view of this problem over a different QI subset (no recompile)."""
        clone = object.__new__(PreparedTable)
        clone._table = self._table
        clone._qi = tuple(attributes)
        missing = [name for name in attributes if name not in self._compiled]
        if missing:
            raise ValueError(f"no hierarchy compiled for {missing}")
        clone._compiled = self._compiled
        return clone

    def star_schema(self) -> StarSchema:
        """Materialise the Figure 4 star schema (dimension table per QI)."""
        dimensions = {
            name: dimension_table(name, self.hierarchy(name))
            for name in self._qi
        }
        return StarSchema(self._table, dimensions)

    def __repr__(self) -> str:
        heights = ", ".join(f"{name}:{self.height(name)}" for name in self._qi)
        return f"PreparedTable(rows={self.num_rows}, qi=[{heights}])"
