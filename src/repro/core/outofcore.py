"""Out-of-core frequency-set computation — the paper's second future-work
item (§7).

    "It is also important to perform a more extensive evaluation of the
    scalability of Incognito and previous algorithms in the case where
    the original database or the intermediate frequency tables do not
    fit in main memory."

This module makes the scan path block-oriented so the engine's peak
working set is bounded by a chunk of rows plus the (much smaller) running
frequency set, instead of by materialised whole-column generalization
arrays:

* :func:`compute_frequency_set_chunked` — evaluate a lattice node by
  scanning the table in ``chunk_rows`` blocks and merging partial counts
  (the classic hash-aggregation-with-spill pattern, minus the spill since
  merged frequency sets are the small side).
* :class:`ChunkedEvaluator` — a drop-in
  :class:`~repro.core.anonymity.FrequencyEvaluator` whose scans are
  chunked, so every algorithm in :mod:`repro.core` runs out-of-core
  unchanged (pass it via :func:`chunked_incognito`).

Merging partial frequency sets is correct because COUNT is distributive —
the same property the rollup proof uses.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.incognito import run_incognito
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode
from repro.relational.column import CODE_DTYPE
from repro.relational.groupby import group_by_codes


#: How many partial (keys, counts) pairs may accumulate before they are
#: folded into one.  Bounds the peak working set of a chunked scan at
#: fan-in × (running merged set + one chunk's groups) instead of letting
#: every chunk's partial live until the end of the scan.
MERGE_FAN_IN = 8


def merge_partials(
    partial_keys: list[np.ndarray],
    partial_counts: list[np.ndarray],
    radices: list[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-chunk/per-shard (keys, counts) pairs into one grouped result.

    COUNT is distributive, so re-grouping the concatenated group keys with
    count weights is exact; and because the re-group sorts by the same
    mixed-radix dense key as :func:`~repro.relational.groupby.group_by_codes`,
    the merged result is *bit-identical* to a single whole-table scan
    regardless of how the input was partitioned or in which order partials
    were folded.  Shard-parallel evaluation (:mod:`repro.shard`) relies on
    this to merge worker partials exactly.
    """
    all_keys = np.concatenate(partial_keys, axis=0)
    all_counts = np.concatenate(partial_counts)
    from repro.core.anonymity import _regroup_weighted

    columns = [all_keys[:, position] for position in range(all_keys.shape[1])]
    return _regroup_weighted(columns, radices, all_counts)


def compute_frequency_set_chunked(
    problem: PreparedTable,
    node: LatticeNode,
    *,
    chunk_rows: int = 65_536,
) -> FrequencySet:
    """Frequency set of T at ``node``, scanning ``chunk_rows`` at a time.

    Produces exactly the same result as
    :func:`repro.core.anonymity.compute_frequency_set`; peak extra memory
    is one chunk's worth of generalized codes plus at most
    :data:`MERGE_FAN_IN` pending partial results (partials are folded
    incrementally rather than all retained until the end of the scan).
    """
    if chunk_rows <= 0:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    table = problem.table
    num_rows = table.num_rows
    hierarchies = [problem.hierarchy(name) for name in node.attributes]
    radices = [
        hierarchy.cardinality(level)
        for hierarchy, level in zip(hierarchies, node.levels)
    ]
    if num_rows == 0:
        empty = np.empty((0, node.size), dtype=CODE_DTYPE)
        return FrequencySet(node, empty, np.empty(0, dtype=np.int64), problem)

    partial_keys: list[np.ndarray] = []
    partial_counts: list[np.ndarray] = []
    base_codes = [table.column(name).codes for name in node.attributes]
    for start in range(0, num_rows, chunk_rows):
        stop = min(start + chunk_rows, num_rows)
        chunk_arrays = [
            hierarchy.level_lookup(level)[codes[start:stop]]
            for hierarchy, level, codes in zip(
                hierarchies, node.levels, base_codes
            )
        ]
        keys, counts = group_by_codes(chunk_arrays, radices)
        partial_keys.append(keys)
        partial_counts.append(counts)
        if len(partial_keys) >= MERGE_FAN_IN:
            merged = merge_partials(partial_keys, partial_counts, radices)
            partial_keys = [merged[0]]
            partial_counts = [merged[1]]

    if len(partial_keys) == 1:
        return FrequencySet(node, partial_keys[0], partial_counts[0], problem)
    keys, counts = merge_partials(partial_keys, partial_counts, radices)
    return FrequencySet(node, keys, counts, problem)


class ChunkedEvaluator(FrequencyEvaluator):
    """A FrequencyEvaluator whose table scans are block-oriented."""

    def __init__(
        self,
        problem: PreparedTable,
        stats: SearchStats | None = None,
        *,
        chunk_rows: int = 65_536,
    ) -> None:
        super().__init__(problem, stats)
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        self.chunk_rows = chunk_rows

    def scan(self, node: LatticeNode) -> FrequencySet:
        with obs.span("scan", kind="chunked", chunk_rows=self.chunk_rows) as sp:
            result = compute_frequency_set_chunked(
                self.problem, node, chunk_rows=self.chunk_rows
            )
            if sp:
                sp.set(node=str(node), groups=result.num_groups)
        self.stats.table_scans += 1
        self.stats.note_frequency_set(result.num_groups)
        return result


def chunked_incognito(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    chunk_rows: int = 65_536,
) -> AnonymizationResult:
    """Basic Incognito with bounded-memory (chunked) table scans.

    Same answers as :func:`repro.core.incognito.basic_incognito`; wall
    clock pays a small per-chunk overhead, which
    ``benchmarks/test_ablation_materialized.py`` quantifies.
    """
    from repro.core import incognito as incognito_module

    # run_incognito builds its own evaluator; routing all root scans
    # through the chunked path only needs a provider override.
    class _ChunkedScanProvider(incognito_module.RootProvider):
        def frequency_set(self, evaluator, node):
            with obs.span("scan", kind="chunked", chunk_rows=chunk_rows) as sp:
                result = compute_frequency_set_chunked(
                    problem, node, chunk_rows=chunk_rows
                )
                if sp:
                    sp.set(node=str(node), groups=result.num_groups)
            evaluator.stats.table_scans += 1
            evaluator.stats.note_frequency_set(result.num_groups)
            return result

    return run_incognito(
        problem,
        k,
        max_suppression=max_suppression,
        provider_factory=lambda p, e: _ChunkedScanProvider(),
        algorithm="chunked-incognito",
    )
