"""The paper's contribution: full-domain k-anonymization algorithms.

Public surface:

* :class:`~repro.core.problem.PreparedTable` — a table, its quasi-identifier,
  and compiled hierarchies; the input every algorithm takes.
* :func:`~repro.core.incognito.basic_incognito`,
  :func:`~repro.core.superroots.superroots_incognito`,
  :func:`~repro.core.cube.cube_incognito` — the three Incognito variants
  (Sections 3.1, 3.3.1, 3.3.2).
* :func:`~repro.core.binary_search.samarati_binary_search`,
  :func:`~repro.core.bottomup.bottom_up_search`,
  :func:`~repro.core.datafly.datafly` — the prior algorithms Incognito is
  evaluated against (Sections 2.2 and 6).
* :class:`~repro.core.result.AnonymizationResult` and
  :mod:`~repro.core.minimality` — result sets and minimality criteria.
* :func:`~repro.core.generalize.apply_generalization` — produce the
  anonymized view V from a chosen lattice node.
* :func:`~repro.core.anonymity.check_k_anonymity` — the independent checker
  used by tests and examples.
* :class:`~repro.core.fscache.FrequencySetCache` /
  :func:`~repro.core.fscache.use_cache` — the cross-algorithm frequency-set
  cache (pairs with :mod:`repro.parallel` for execution backends).
"""

from repro.core.anonymity import (
    FrequencyEvaluator,
    FrequencySet,
    check_k_anonymity,
    compute_frequency_set,
)
from repro.core.binary_search import samarati_binary_search
from repro.core.bottomup import bottom_up_search
from repro.core.cube import cube_incognito
from repro.core.datafly import datafly
from repro.core.fscache import FrequencySetCache, current_cache, use_cache
from repro.core.generalize import GeneralizedView, apply_generalization
from repro.core.incognito import basic_incognito
from repro.core.materialized import materialized_incognito
from repro.core.minimality import (
    minimal_height_nodes,
    pareto_minimal_nodes,
    weighted_minimal_node,
)
from repro.core.outofcore import chunked_incognito
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult
from repro.core.stats import SearchStats
from repro.core.superroots import superroots_incognito

__all__ = [
    "AnonymizationResult",
    "FrequencyEvaluator",
    "FrequencySet",
    "FrequencySetCache",
    "GeneralizedView",
    "PreparedTable",
    "SearchStats",
    "apply_generalization",
    "basic_incognito",
    "bottom_up_search",
    "check_k_anonymity",
    "chunked_incognito",
    "compute_frequency_set",
    "cube_incognito",
    "current_cache",
    "datafly",
    "materialized_incognito",
    "minimal_height_nodes",
    "pareto_minimal_nodes",
    "samarati_binary_search",
    "superroots_incognito",
    "use_cache",
    "weighted_minimal_node",
]
