"""Producing the anonymized view V from a chosen lattice node (Section 2.1).

A full-domain generalization replaces every value of each quasi-identifier
attribute with its image at the node's level.  The fast path re-encodes each
column through the compiled hierarchy lookup; the star-schema path
(:func:`apply_with_star_schema`) evaluates the same definition by joining
dimension tables, mirroring the paper's SQL formulation — tests assert the
two agree.

With a tuple-suppression threshold, outlier tuples (those in equivalence
classes smaller than k) are removed entirely from V.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.anonymity import compute_frequency_set
from repro.core.problem import PreparedTable
from repro.lattice.node import LatticeNode
from repro.relational.column import Column
from repro.relational.table import Table


@dataclass
class GeneralizedView:
    """The anonymization V of T: the view plus suppression accounting."""

    table: Table
    node: LatticeNode
    suppressed_rows: int

    @property
    def num_rows(self) -> int:
        return self.table.num_rows


def generalize_table(problem: PreparedTable, node: LatticeNode) -> Table:
    """Replace each QI column of T with its level-``node`` generalization."""
    table = problem.table
    for attribute, level in node.items():
        if level == 0:
            continue
        hierarchy = problem.hierarchy(attribute)
        column = table.column(attribute)
        generalized = column.map_codes(
            hierarchy.level_lookup(level), hierarchy.level_values(level)
        )
        table = table.replace_column(attribute, generalized)
    return table


def apply_generalization(
    problem: PreparedTable,
    node: LatticeNode,
    *,
    k: int | None = None,
    max_suppression: int = 0,
) -> GeneralizedView:
    """Produce the full-domain generalization V of T defined by ``node``.

    When ``k`` is given, tuples in equivalence classes smaller than ``k``
    are suppressed (dropped).  If more than ``max_suppression`` rows would
    need suppressing, the node does not satisfy k-anonymity under the
    threshold and a :class:`ValueError` is raised — callers should pick
    nodes from an algorithm's result set.
    """
    view = generalize_table(problem, node)
    if k is None:
        return GeneralizedView(view, node, suppressed_rows=0)

    frequency_set = compute_frequency_set(problem, node)
    outliers = frequency_set.rows_below(k)
    if outliers > max_suppression:
        raise ValueError(
            f"{node} is not {k}-anonymous within the suppression threshold: "
            f"{outliers} outlier rows > {max_suppression} allowed"
        )
    if outliers == 0:
        return GeneralizedView(view, node, suppressed_rows=0)

    # Build the per-row group size and keep rows in groups of size >= k.
    code_arrays = []
    radices = []
    for attribute, level in node.items():
        hierarchy = problem.hierarchy(attribute)
        base_codes = problem.table.column(attribute).codes
        code_arrays.append(hierarchy.generalize_codes(base_codes, level))
        radices.append(hierarchy.cardinality(level))
    stacked = np.column_stack([codes.astype(np.int64) for codes in code_arrays])
    _, inverse, counts = np.unique(
        stacked, axis=0, return_inverse=True, return_counts=True
    )
    keep = counts[inverse] >= k
    return GeneralizedView(view.take(keep), node, suppressed_rows=outliers)


def apply_with_star_schema(problem: PreparedTable, node: LatticeNode) -> Table:
    """Evaluate the same generalization by star-schema joins (Figure 4).

    Exponentially slower than :func:`generalize_table` (it routes through
    generic hash joins) but independent of the compiled-lookup machinery —
    the validation oracle in the test suite.
    """
    star = problem.star_schema()
    return star.generalized_view(node.as_dict())


def suppress_column(
    table: Table, attribute: str, mask_value: str = "*"
) -> Table:
    """Replace an entire column with ``mask_value`` (attribute suppression)."""
    return table.replace_column(
        attribute, Column.constant(mask_value, table.num_rows)
    )
