"""Minimality criteria over sets of k-anonymous generalizations (Section 2.1).

Incognito is sound and complete: it returns *all* k-anonymous full-domain
generalizations, "from which the minimal may be chosen according to any
criteria".  This module supplies the criteria discussed in the paper:

* :func:`minimal_height_nodes` — Samarati's definition: minimum distance-
  vector height.
* :func:`pareto_minimal_nodes` — no other solution is component-wise lower
  (useful because two height-minimal solutions can generalize different
  attributes).
* :func:`weighted_minimal_node` — application-specific weights ("it might be
  more important that Sex be released intact, even at the cost of
  additional Zipcode generalization").
* :func:`best_node_by_metric` — pick by an information-loss metric from
  :mod:`repro.metrics` evaluated on the actual anonymized view.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.lattice.node import LatticeNode


def minimal_height_nodes(nodes: Sequence[LatticeNode]) -> list[LatticeNode]:
    """All nodes of minimum height (Samarati/Sweeney minimality)."""
    if not nodes:
        return []
    best = min(node.height for node in nodes)
    return sorted(
        (node for node in nodes if node.height == best),
        key=LatticeNode.sort_key,
    )


def pareto_minimal_nodes(nodes: Sequence[LatticeNode]) -> list[LatticeNode]:
    """Nodes not strictly dominated by another node in the set.

    Node a dominates b when a != b and a's level is <= b's in every
    component (so a generalizes strictly less).  All nodes must share one
    attribute set.
    """
    result = []
    for candidate in nodes:
        dominated = any(
            other != candidate and candidate.generalizes(other)
            for other in nodes
        )
        if not dominated:
            result.append(candidate)
    return sorted(result, key=LatticeNode.sort_key)


def weighted_minimal_node(
    nodes: Sequence[LatticeNode], weights: Mapping[str, float]
) -> LatticeNode:
    """The node minimising the weighted level sum Σ w_i · level_i.

    Ties break toward lower unweighted height, then lexicographic levels,
    so the choice is deterministic.
    """
    if not nodes:
        raise ValueError("no nodes to choose from")

    def cost(node: LatticeNode) -> tuple:
        weighted = sum(
            weights.get(name, 1.0) * level for name, level in node.items()
        )
        return (weighted, node.height, node.levels)

    return min(nodes, key=cost)


def best_node_by_metric(
    nodes: Sequence[LatticeNode],
    metric: Callable[[LatticeNode], float],
    *,
    lower_is_better: bool = True,
) -> LatticeNode:
    """The node optimising an arbitrary scalar metric.

    ``metric`` typically wraps an information-loss measure evaluated on the
    generalized view, e.g.::

        best_node_by_metric(
            result.anonymous_nodes,
            lambda n: discernibility(apply_generalization(problem, n).table, qi),
        )
    """
    if not nodes:
        raise ValueError("no nodes to choose from")
    ordered = sorted(nodes, key=LatticeNode.sort_key)
    if lower_is_better:
        return min(ordered, key=metric)
    return max(ordered, key=metric)
