"""Strategic materialization — the paper's first future-work item (§7).

    "We believe that the performance of Incognito can be enhanced even
    more by strategically materializing portions of the data cube,
    including count aggregates at various points in the dimension
    hierarchies, much like what was done in [9]."

Cube Incognito materializes every subset's frequency set at the *zero*
generalization.  But the search mostly evaluates nodes at *higher* levels
(after pruning, the candidate roots sit well above zero), so a
zero-generalization set is often far larger — and costlier to roll up
from — than necessary.

:class:`MaterializedIncognito` implements the suggested refinement with a
Harinarayan-Rajaraman-Ullman-style greedy selection under a row budget
(reference [9] is "Implementing data cubes efficiently"):

1. Build the zero-generalization cube (one scan + projections), as Cube
   Incognito does.
2. For each quasi-identifier subset, walk candidate generalization levels
   from the bottom and additionally materialize "waypoint" frequency sets
   whose sizes fall under ``budget_fraction`` of the subset's
   zero-generalization size — these are the high-benefit cube points: any
   root at or above a waypoint rolls up from the small set instead of the
   big one.
3. During the search, each root is served from the *largest-level*
   materialized set it is comparable with (the cheapest rollup source).

The extra build cost is a handful of rollups per subset; the payoff is
that every subsequent root derivation touches far fewer rows.  The
``benchmarks/test_ablation_materialized.py`` bench measures both sides.
"""

from __future__ import annotations

from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.cube import build_zero_generalization_cube
from repro.core.incognito import RootProvider, run_incognito
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult
from repro.lattice.node import LatticeNode


def _diagonal_levels(problem: PreparedTable, attributes: tuple[str, ...]):
    """Candidate waypoint level-vectors for a subset: the 'diagonal' of its
    lattice (all attributes advanced in lock-step), bottom to top.

    The diagonal is comparable with most of the subset's lattice, which
    maximises how many roots each waypoint can serve.
    """
    heights = [problem.height(name) for name in attributes]
    for step in range(1, max(heights) + 1):
        yield LatticeNode(
            attributes,
            tuple(min(step, height) for height in heights),
        )


class MaterializedCubeProvider(RootProvider):
    """Serve roots from the best (smallest comparable) materialized set."""

    def __init__(
        self,
        problem: PreparedTable,
        evaluator: FrequencyEvaluator,
        *,
        budget_fraction: float = 0.25,
    ) -> None:
        if not 0 < budget_fraction <= 1:
            raise ValueError(
                f"budget_fraction must be in (0, 1], got {budget_fraction}"
            )
        self._problem = problem
        #: per-subset materialized sets, most general first
        self._materialized: dict[tuple[str, ...], list[FrequencySet]] = {}
        zero_cube = build_zero_generalization_cube(problem, evaluator)
        for attributes, zero_set in zero_cube.items():
            chosen = [zero_set]
            threshold = max(1, int(zero_set.num_groups * budget_fraction))
            for waypoint in _diagonal_levels(problem, attributes):
                candidate = evaluator.rollup(chosen[-1], waypoint)
                if candidate.num_groups <= threshold:
                    chosen.append(candidate)
                    threshold = max(1, int(candidate.num_groups * budget_fraction))
            # most general first so lookup finds the cheapest source
            self._materialized[attributes] = list(reversed(chosen))

    def materialized_counts(self) -> dict[tuple[str, ...], int]:
        """How many frequency sets are materialized per subset (stats)."""
        return {
            attributes: len(sets)
            for attributes, sets in self._materialized.items()
        }

    def root_source(
        self, evaluator: FrequencyEvaluator, node: LatticeNode
    ) -> FrequencySet | None:
        for candidate in self._materialized[node.attributes]:
            if node.generalizes(candidate.node):
                return candidate
        raise AssertionError(
            f"no materialized source for {node}; the zero set always applies"
        )


def materialized_incognito(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    budget_fraction: float = 0.25,
) -> AnonymizationResult:
    """Incognito with strategically materialized cube points (§7).

    Identical results to the other variants; the stats differ — rollups
    draw from much smaller sources.  ``budget_fraction`` controls how
    aggressively waypoints are added: a waypoint is kept when it shrinks
    the previous materialized set by at least that factor.
    """
    return run_incognito(
        problem,
        k,
        max_suppression=max_suppression,
        provider_factory=lambda p, e: MaterializedCubeProvider(
            p, e, budget_fraction=budget_fraction
        ),
        algorithm="materialized-incognito",
    )


def waypoint_inventory(
    problem: PreparedTable, *, budget_fraction: float = 0.25
) -> dict[tuple[str, ...], list[str]]:
    """Report which cube points strategic materialization would pick.

    A planning helper (no search): useful for sizing the materialization
    before committing to it on a big table.
    """
    evaluator = FrequencyEvaluator(problem)
    provider = MaterializedCubeProvider(
        problem, evaluator, budget_fraction=budget_fraction
    )
    return {
        attributes: [str(fs.node) for fs in sets]
        for attributes, sets in provider._materialized.items()
    }
