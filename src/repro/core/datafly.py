"""The Datafly greedy heuristic (paper Section 6, Sweeney [17]).

Datafly is the classic pre-Incognito heuristic: repeatedly generalize the
quasi-identifier attribute with the most distinct values (one hierarchy
level at a time, full-domain) until the number of tuples in undersized
equivalence classes falls within the suppression threshold, then suppress
those outliers.  The result is guaranteed k-anonymous but carries *no*
minimality guarantee — included here as the related-work baseline and used
by the model-comparison example.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.anonymity import FrequencyEvaluator
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode


def datafly(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int | None = None,
) -> AnonymizationResult:
    """Run the Datafly heuristic; returns a single-node result.

    ``max_suppression`` defaults to ``k`` outlier rows, a common reading of
    Datafly's "more than k tuples in undersized classes → keep
    generalizing; at most k → suppress them".
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if max_suppression is None:
        max_suppression = k
    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats)
    started = time.perf_counter()

    qi = problem.quasi_identifier
    node = problem.bottom_node()
    trace: list[tuple[LatticeNode, int]] = []
    while True:
        with obs.span("datafly.step", node=str(node)) as sp:
            frequency_set = evaluator.scan(node)
            outliers = frequency_set.rows_below(k)
            if sp:
                sp.set(outliers=outliers)
        trace.append((node, outliers))
        if evaluator.decide(node, frequency_set, k, max_suppression):
            break
        # Generalize the attribute with the most distinct values among
        # those that still have headroom in their hierarchies.
        candidates = [
            (attribute, level)
            for attribute, level in node.items()
            if level < problem.height(attribute)
        ]
        if not candidates:
            # Fully generalized and still over threshold: k exceeds the
            # table size minus the allowance; suppress everything over.
            break
        def distinct_values(item: tuple[str, int]) -> int:
            attribute, level = item
            return problem.hierarchy(attribute).cardinality(level)

        chosen, current_level = max(
            candidates, key=lambda item: (distinct_values(item), item[0])
        )
        node = node.with_level(chosen, current_level + 1)

    final_set = evaluator.scan(node)
    suppressed = final_set.rows_below(k)
    stats.elapsed_seconds = time.perf_counter() - started
    achieved = final_set.is_k_anonymous(k, max_suppression)
    return make_result(
        "datafly",
        k,
        [node] if achieved else [],
        stats,
        max_suppression=max_suppression if suppressed else 0,
        complete=False,
        suppressed=suppressed,
        trace=[(str(n), outliers) for n, outliers in trace],
    )
