"""Super-roots Incognito (paper Section 3.3.1).

Because of a-priori pruning, an iteration's candidate nodes need not form
lattices, so one attribute-subset "family" can contribute several roots.
Basic Incognito scans the base table once per root; Super-roots instead
scans once per *family*, at the greatest lower bound of the family's roots
(the "super-root" — the paper's example computes ⟨B0, S0, Z0⟩ for roots
⟨B1, S1, Z0⟩, ⟨B1, S0, Z2⟩, ⟨B0, S1, Z2⟩), then derives each root's
frequency set by rollup.

Note the paper's prose says "least upper bound", but its example computes
the componentwise *minimum* — the only direction rollup can go — so we
implement the greatest lower bound, matching the example.
"""

from __future__ import annotations

from repro import obs
from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.incognito import RootProvider, run_incognito
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult
from repro.lattice.graph import CandidateGraph
from repro.lattice.node import LatticeNode


def family_meet(roots: list[LatticeNode]) -> LatticeNode:
    """Greatest lower bound of same-family nodes: componentwise min level."""
    if not roots:
        raise ValueError("empty family")
    attributes = roots[0].attributes
    for root in roots[1:]:
        if root.attributes != attributes:
            raise ValueError(
                f"mixed families: {root.attributes} vs {attributes}"
            )
    levels = tuple(
        min(root.levels[position] for root in roots)
        for position in range(len(attributes))
    )
    return LatticeNode(attributes, levels)


class SuperRootProvider(RootProvider):
    """Scan once per family at the family meet; roll up to each root."""

    def __init__(self) -> None:
        self._super_roots: dict[tuple[str, ...], FrequencySet] = {}

    def prepare(self, evaluator: FrequencyEvaluator, graph: CandidateGraph) -> None:
        self._super_roots.clear()
        families: dict[tuple[str, ...], list[LatticeNode]] = {}
        for root in graph.roots():
            families.setdefault(root.attributes, []).append(root)
        with obs.span("superroots.prepare", families=len(families)) as sp:
            for attributes, roots in families.items():
                if len(roots) <= 1:
                    continue  # a lone root gains nothing from a super-root
                # materialize (not scan) so an attached cache can serve the
                # super-root and gets to keep it for other algorithms.
                self._super_roots[attributes] = evaluator.materialize(
                    family_meet(roots)
                )
            if sp:
                sp.set(super_roots=len(self._super_roots))

    def root_source(
        self, evaluator: FrequencyEvaluator, node: LatticeNode
    ) -> FrequencySet | None:
        # None for lone-root families: the engine scans (or cache-serves).
        return self._super_roots.get(node.attributes)


def superroots_incognito(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    execution=None,
    cache=None,
    checkpoint=None,
    resume: bool = False,
) -> AnonymizationResult:
    """Super-roots Incognito (Section 3.3.1)."""
    return run_incognito(
        problem,
        k,
        max_suppression=max_suppression,
        provider_factory=lambda _problem, _evaluator: SuperRootProvider(),
        algorithm="superroots-incognito",
        execution=execution,
        cache=cache,
        checkpoint=checkpoint,
        resume=resume,
    )
