"""Bottom-up breadth-first lattice search (paper Section 2.2).

The naive complete algorithm: walk the *full* multi-attribute generalization
lattice of the whole quasi-identifier from the bottom, by height, checking
k-anonymity at every node not already implied anonymous by the
generalization property.  Run exhaustively it is sound and complete, like
Incognito, but it never benefits from subset (a-priori) pruning, so it
evaluates far more nodes (the Section 4.2.1 table).

Two variants, matching the paper's experimental lines:

* ``rollup=False`` — every checked node's frequency set is computed by
  scanning the base table;
* ``rollup=True`` — a checked node's frequency set is rolled up from a
  failed direct specialization's cached set (always available: an unmarked
  non-bottom node has only failed specializations, or it would be marked).
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode


def bottom_up_search(
    problem: PreparedTable,
    k: int,
    *,
    rollup: bool = True,
    max_suppression: int = 0,
) -> AnonymizationResult:
    """Exhaustive bottom-up BFS; returns all k-anonymous generalizations."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats)
    lattice = problem.lattice()
    started = time.perf_counter()

    anonymous: set[LatticeNode] = set()
    marked: set[LatticeNode] = set()
    freq_cache: dict[LatticeNode, FrequencySet] = {}

    for height in range(lattice.max_height + 1):
        layer = lattice.nodes_at_height(height)
        # One span per lattice level: the trace shows how the exhaustive
        # search's cost is distributed over heights.
        with obs.span(
            "bottomup.level", height=height, layer_size=len(layer)
        ) as sp:
            checked_before = stats.nodes_checked
            for node in sorted(layer, key=LatticeNode.sort_key):
                if node in marked:
                    stats.nodes_marked += 1
                    anonymous.add(node)
                    marked.update(lattice.successors(node))
                    continue
                if rollup and height > 0:
                    # Any direct specialization must have failed (else this
                    # node would be marked), so its frequency set is cached.
                    parent = next(
                        p for p in lattice.predecessors(node) if p in freq_cache
                    )
                    frequency_set = evaluator.rollup(freq_cache[parent], node)
                else:
                    frequency_set = evaluator.scan(node)
                if evaluator.decide(node, frequency_set, k, max_suppression):
                    anonymous.add(node)
                    marked.update(lattice.successors(node))
                else:
                    freq_cache[node] = frequency_set
            if sp:
                sp.set(nodes_checked=stats.nodes_checked - checked_before)
        if rollup:
            # Frequency sets two layers down can no longer be parents.
            stale = [n for n in freq_cache if n.height < height]
            for node in stale:
                del freq_cache[node]

    stats.nodes_generated = lattice.size
    stats.elapsed_seconds = time.perf_counter() - started
    algorithm = "bottom-up" + ("-rollup" if rollup else "")
    return make_result(
        algorithm,
        k,
        sorted(anonymous, key=LatticeNode.sort_key),
        stats,
        max_suppression=max_suppression,
    )
