"""Bottom-up breadth-first lattice search (paper Section 2.2).

The naive complete algorithm: walk the *full* multi-attribute generalization
lattice of the whole quasi-identifier from the bottom, by height, checking
k-anonymity at every node not already implied anonymous by the
generalization property.  Run exhaustively it is sound and complete, like
Incognito, but it never benefits from subset (a-priori) pruning, so it
evaluates far more nodes (the Section 4.2.1 table).

Two variants, matching the paper's experimental lines:

* ``rollup=False`` — every checked node's frequency set is computed by
  scanning the base table;
* ``rollup=True`` — a checked node's frequency set is rolled up from a
  failed direct specialization's cached set (always available: an unmarked
  non-bottom node has only failed specializations, or it would be marked).

Like Incognito's inner search, the walk is level-synchronous — marks and
rollup sources only flow upward — so each height's unmarked nodes form one
independent batch handed to a :class:`~repro.parallel.BatchMaterializer`
(serial, threads, or processes; identical results and structural counters
in every mode).  An attached
:class:`~repro.core.fscache.FrequencySetCache` serves repeat nodes across
runs and seeds other algorithms (this is the cross-algorithm reuse the
bench sweeps exercise).
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.fscache import FrequencySetCache, current_cache
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode
from repro.obs.counters import CounterSet
from repro.parallel import BatchMaterializer, ExecutionConfig
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    frequency_set_from_json,
    frequency_set_to_json,
    nodes_from_json,
    nodes_to_json,
    problem_fingerprint,
    resolve_checkpoint,
)


def bottom_up_search(
    problem: PreparedTable,
    k: int,
    *,
    rollup: bool = True,
    max_suppression: int = 0,
    execution: ExecutionConfig | None = None,
    cache: FrequencySetCache | None = None,
    checkpoint: CheckpointStore | None = None,
    resume: bool = False,
) -> AnonymizationResult:
    """Exhaustive bottom-up BFS; returns all k-anonymous generalizations.

    With a checkpoint store the run persists its progress after every
    completed lattice height: the anonymous/marked sets, the restored
    run's counters, and — for the rollup variant — the boundary frequency
    sets (failed nodes of the just-finished height) the next height rolls
    up from.  Resuming restarts at the first unfinished height with zero
    re-scanning of completed levels.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if cache is None:
        cache = current_cache()
    algorithm = "bottom-up" + ("-rollup" if rollup else "")
    store = checkpoint
    if store is None:
        store, region_resume = resolve_checkpoint(algorithm, problem, k)
        resume = resume or region_resume
    header: dict | None = None
    state: dict | None = None
    if store is not None:
        header = {
            "format": CHECKPOINT_FORMAT,
            "kind": "bottom-up",
            "algorithm": algorithm,
            "k": k,
            "max_suppression": max_suppression,
            "fingerprint": problem_fingerprint(problem),
        }
        if resume:
            state = store.load_matching(header)

    if state is not None and state.get("completed"):
        stats = SearchStats(CounterSet.from_snapshot(state["counters"]))
        stats.elapsed_seconds = float(state.get("elapsed_seconds", 0.0))
        return make_result(
            algorithm,
            k,
            nodes_from_json(state["anonymous"]),
            stats,
            max_suppression=max_suppression,
            resumed_heights=int(state["height_done"]) + 1,
            checkpoint_saves=0,
        )

    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats, cache=cache)
    lattice = problem.lattice()
    started = time.perf_counter()

    anonymous: set[LatticeNode] = set()
    marked: set[LatticeNode] = set()
    freq_cache: dict[LatticeNode, FrequencySet] = {}

    start_height = 0
    base_elapsed = 0.0
    if state is not None:
        stats.counters = CounterSet.from_snapshot(state["counters"])
        anonymous = set(nodes_from_json(state["anonymous"]))
        marked = set(nodes_from_json(state["marked"]))
        freq_cache = {
            fs.node: fs
            for fs in (
                frequency_set_from_json(item, problem)
                for item in state.get("boundary", [])
            )
        }
        start_height = int(state["height_done"]) + 1
        base_elapsed = float(state.get("elapsed_seconds", 0.0))
    # Known upfront and recorded by overwrite, so checkpoints taken at any
    # height (and the completed-resume shortcut) carry the final value.
    stats.nodes_generated = lattice.size

    pool = BatchMaterializer(problem, execution)
    try:
        for height in range(start_height, lattice.max_height + 1):
            layer = lattice.nodes_at_height(height)
            level_started = time.perf_counter()
            # One span per lattice level: the trace shows how the
            # exhaustive search's cost is distributed over heights.
            with obs.span(
                "bottomup.level", height=height, layer_size=len(layer)
            ) as sp:
                checked_before = stats.nodes_checked
                # Marks affecting this height were all created at lower
                # heights (successors sit one level up), so triage first,
                # then evaluate the survivors as one batch.
                batch: list[LatticeNode] = []
                requests: list[tuple[LatticeNode, FrequencySet | None]] = []
                for node in sorted(layer, key=LatticeNode.sort_key):
                    if node in marked:
                        stats.nodes_marked += 1
                        anonymous.add(node)
                        marked.update(lattice.successors(node))
                        continue
                    if rollup and height > 0:
                        # Any direct specialization must have failed (else
                        # this node would be marked), so its set is cached.
                        parent = next(
                            p
                            for p in lattice.predecessors(node)
                            if p in freq_cache
                        )
                        requests.append((node, freq_cache[parent]))
                    else:
                        requests.append((node, None))
                    batch.append(node)

                frequency_sets = pool.materialize_batch(evaluator, requests)
                for node, frequency_set in zip(batch, frequency_sets):
                    if evaluator.decide(node, frequency_set, k, max_suppression):
                        anonymous.add(node)
                        marked.update(lattice.successors(node))
                    else:
                        freq_cache[node] = frequency_set
                if sp:
                    sp.set(nodes_checked=stats.nodes_checked - checked_before)
            stats.metrics.observe(
                "latency.level_seconds", time.perf_counter() - level_started
            )
            if rollup:
                # Frequency sets two layers down can no longer be parents.
                stale = [n for n in freq_cache if n.height < height]
                for node in stale:
                    del freq_cache[node]
            if store is not None:
                store.save(
                    {
                        **header,
                        "height_done": height,
                        "completed": height == lattice.max_height,
                        "anonymous": nodes_to_json(
                            sorted(anonymous, key=LatticeNode.sort_key)
                        ),
                        "marked": nodes_to_json(
                            sorted(marked, key=LatticeNode.sort_key)
                        ),
                        "boundary": [
                            frequency_set_to_json(freq_cache[node])
                            for node in sorted(
                                freq_cache, key=LatticeNode.sort_key
                            )
                        ],
                        "counters": stats.counters.snapshot(),
                        "elapsed_seconds": base_elapsed
                        + (time.perf_counter() - started),
                    }
                )
    finally:
        pool.close()

    stats.elapsed_seconds = base_elapsed + time.perf_counter() - started
    extra: dict = {}
    if store is not None:
        extra = {
            "checkpoint_saves": store.saves,
            "resumed_heights": start_height,
        }
    return make_result(
        algorithm,
        k,
        sorted(anonymous, key=LatticeNode.sort_key),
        stats,
        max_suppression=max_suppression,
        **extra,
    )
