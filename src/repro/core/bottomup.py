"""Bottom-up breadth-first lattice search (paper Section 2.2).

The naive complete algorithm: walk the *full* multi-attribute generalization
lattice of the whole quasi-identifier from the bottom, by height, checking
k-anonymity at every node not already implied anonymous by the
generalization property.  Run exhaustively it is sound and complete, like
Incognito, but it never benefits from subset (a-priori) pruning, so it
evaluates far more nodes (the Section 4.2.1 table).

Two variants, matching the paper's experimental lines:

* ``rollup=False`` — every checked node's frequency set is computed by
  scanning the base table;
* ``rollup=True`` — a checked node's frequency set is rolled up from a
  failed direct specialization's cached set (always available: an unmarked
  non-bottom node has only failed specializations, or it would be marked).

Like Incognito's inner search, the walk is level-synchronous — marks and
rollup sources only flow upward — so each height's unmarked nodes form one
independent batch handed to a :class:`~repro.parallel.BatchMaterializer`
(serial, threads, or processes; identical results and structural counters
in every mode).  An attached
:class:`~repro.core.fscache.FrequencySetCache` serves repeat nodes across
runs and seeds other algorithms (this is the cross-algorithm reuse the
bench sweeps exercise).
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.anonymity import FrequencyEvaluator, FrequencySet
from repro.core.fscache import FrequencySetCache, current_cache
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode
from repro.parallel import BatchMaterializer, ExecutionConfig


def bottom_up_search(
    problem: PreparedTable,
    k: int,
    *,
    rollup: bool = True,
    max_suppression: int = 0,
    execution: ExecutionConfig | None = None,
    cache: FrequencySetCache | None = None,
) -> AnonymizationResult:
    """Exhaustive bottom-up BFS; returns all k-anonymous generalizations."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if cache is None:
        cache = current_cache()
    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats, cache=cache)
    lattice = problem.lattice()
    started = time.perf_counter()

    anonymous: set[LatticeNode] = set()
    marked: set[LatticeNode] = set()
    freq_cache: dict[LatticeNode, FrequencySet] = {}

    pool = BatchMaterializer(problem, execution)
    try:
        for height in range(lattice.max_height + 1):
            layer = lattice.nodes_at_height(height)
            # One span per lattice level: the trace shows how the
            # exhaustive search's cost is distributed over heights.
            with obs.span(
                "bottomup.level", height=height, layer_size=len(layer)
            ) as sp:
                checked_before = stats.nodes_checked
                # Marks affecting this height were all created at lower
                # heights (successors sit one level up), so triage first,
                # then evaluate the survivors as one batch.
                batch: list[LatticeNode] = []
                requests: list[tuple[LatticeNode, FrequencySet | None]] = []
                for node in sorted(layer, key=LatticeNode.sort_key):
                    if node in marked:
                        stats.nodes_marked += 1
                        anonymous.add(node)
                        marked.update(lattice.successors(node))
                        continue
                    if rollup and height > 0:
                        # Any direct specialization must have failed (else
                        # this node would be marked), so its set is cached.
                        parent = next(
                            p
                            for p in lattice.predecessors(node)
                            if p in freq_cache
                        )
                        requests.append((node, freq_cache[parent]))
                    else:
                        requests.append((node, None))
                    batch.append(node)

                frequency_sets = pool.materialize_batch(evaluator, requests)
                for node, frequency_set in zip(batch, frequency_sets):
                    if evaluator.decide(node, frequency_set, k, max_suppression):
                        anonymous.add(node)
                        marked.update(lattice.successors(node))
                    else:
                        freq_cache[node] = frequency_set
                if sp:
                    sp.set(nodes_checked=stats.nodes_checked - checked_before)
            if rollup:
                # Frequency sets two layers down can no longer be parents.
                stale = [n for n in freq_cache if n.height < height]
                for node in stale:
                    del freq_cache[node]
    finally:
        pool.close()

    stats.nodes_generated = lattice.size
    stats.elapsed_seconds = time.perf_counter() - started
    algorithm = "bottom-up" + ("-rollup" if rollup else "")
    return make_result(
        algorithm,
        k,
        sorted(anonymous, key=LatticeNode.sort_key),
        stats,
        max_suppression=max_suppression,
    )
