"""Instrumentation shared by every search algorithm.

The paper's evaluation compares algorithms on elapsed time, but explains the
differences through two structural counters: how many lattice nodes each
algorithm evaluates (the Section 4.2.1 in-text table) and how often each
touches the base data versus rolling up an existing frequency set.  All
algorithms in this reproduction record both, through one shared
:class:`SearchStats` object, so the numbers are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters filled in by a single algorithm run."""

    #: frequency sets computed by scanning the base table
    table_scans: int = 0
    #: frequency sets computed by rolling up another frequency set
    rollups: int = 0
    #: frequency sets computed by projecting attributes out of another set
    projections: int = 0
    #: nodes whose k-anonymity was decided by evaluating a frequency set —
    #: the paper's "number of nodes searched"
    nodes_checked: int = 0
    #: nodes skipped because the generalization property marked them
    nodes_marked: int = 0
    #: candidate nodes generated across all iterations (graph sizes)
    nodes_generated: int = 0
    #: total rows across all computed frequency sets (memory-pressure proxy)
    frequency_set_rows: int = 0
    #: total rows of the SOURCE sets fed into rollups (rollup-cost proxy —
    #: a rollup re-aggregates its source, so cost scales with this)
    rollup_source_rows: int = 0
    #: scans attributable to the Cube pre-computation phase
    cube_build_scans: int = 0
    #: wall-clock seconds of the Cube pre-computation phase
    cube_build_seconds: float = 0.0
    #: wall-clock seconds of the whole run (filled by the caller/harness)
    elapsed_seconds: float = 0.0
    #: per-iteration node-check counts, keyed by subset size
    checks_by_subset_size: dict[int, int] = field(default_factory=dict)

    @property
    def frequency_evaluations(self) -> int:
        """Total frequency sets materialised, however computed."""
        return self.table_scans + self.rollups + self.projections

    def record_check(self, subset_size: int) -> None:
        """Count one node decision at the given attribute-subset size."""
        self.nodes_checked += 1
        self.checks_by_subset_size[subset_size] = (
            self.checks_by_subset_size.get(subset_size, 0) + 1
        )

    def merge(self, other: "SearchStats") -> None:
        """Accumulate ``other`` into this object (used by multi-phase runs)."""
        self.table_scans += other.table_scans
        self.rollups += other.rollups
        self.projections += other.projections
        self.nodes_checked += other.nodes_checked
        self.nodes_marked += other.nodes_marked
        self.nodes_generated += other.nodes_generated
        self.frequency_set_rows += other.frequency_set_rows
        self.rollup_source_rows += other.rollup_source_rows
        self.cube_build_scans += other.cube_build_scans
        self.cube_build_seconds += other.cube_build_seconds
        self.elapsed_seconds += other.elapsed_seconds
        for size, count in other.checks_by_subset_size.items():
            self.checks_by_subset_size[size] = (
                self.checks_by_subset_size.get(size, 0) + count
            )

    def summary(self) -> str:
        return (
            f"checked={self.nodes_checked} marked={self.nodes_marked} "
            f"scans={self.table_scans} rollups={self.rollups} "
            f"projections={self.projections} "
            f"generated={self.nodes_generated} "
            f"elapsed={self.elapsed_seconds:.3f}s"
        )
