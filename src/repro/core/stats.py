"""Instrumentation shared by every search algorithm.

The paper's evaluation compares algorithms on elapsed time, but explains the
differences through two structural counters: how many lattice nodes each
algorithm evaluates (the Section 4.2.1 in-text table) and how often each
touches the base data versus rolling up an existing frequency set.  All
algorithms in this reproduction record both, through one shared
:class:`SearchStats` object, so the numbers are directly comparable.

Since the observability layer (:mod:`repro.obs`) landed, the numbers
actually live in a hierarchical :class:`~repro.obs.counters.CounterSet`;
``SearchStats`` is a thin, backward-compatible attribute view over it.
``stats.table_scans += 1`` still works everywhere, but the same data is
available as dotted counters (``stats.counters.total("frequency")``) and
feeds the ``BENCH_*.json`` export without any copying.
"""

from __future__ import annotations

from repro.obs.counters import CounterSet
from repro.obs.metrics import MetricSet

#: SearchStats attribute → counter name, for the summed counters.
_COUNTER_KEYS = {
    "table_scans": "frequency.table_scans",
    "rollups": "frequency.rollups",
    "projections": "frequency.projections",
    "nodes_checked": "nodes.checked",
    "nodes_marked": "nodes.marked",
    "nodes_generated": "nodes.generated",
    "frequency_set_rows": "frequency.rows",
    "rollup_source_rows": "frequency.rollup_source_rows",
    "cube_build_scans": "cube.build_scans",
    "cube_build_seconds": "cube.build_seconds",
    "elapsed_seconds": "time.elapsed_seconds",
    "cache_hits": "cache.hits",
    "cache_misses": "cache.misses",
    "cache_evictions": "cache.evictions",
    "cache_rollup_saves": "cache.rollup_saves",
    "parallel_tasks": "parallel.tasks",
    "parallel_merge_seconds": "parallel.merge_seconds",
    "shard_range_scans": "shard.range_scans",
    "shard_rows_scanned": "shard.rows_scanned",
    "shard_merges": "shard.merges",
    "shard_merge_seconds": "shard.merge_seconds",
    "incremental_base_hits": "incremental.base_hits",
    "incremental_base_misses": "incremental.base_misses",
    "incremental_delta_scans": "incremental.delta_scans",
    "incremental_delta_rows_scanned": "incremental.delta_rows_scanned",
    "incremental_base_rows_reused": "incremental.base_rows_reused",
    "incremental_captures": "incremental.captures",
    "incremental_evictions": "incremental.evictions",
    "fault_crashes": "fault.crashes",
    "fault_timeouts": "fault.timeouts",
    "fault_poisoned": "fault.poisoned",
    "fault_pool_rebuilds": "fault.pool_rebuilds",
    "fault_demotions": "fault.demotions",
    "fault_memory_pressure": "fault.memory_pressure",
    "fault_errors": "fault.errors",
    "retry_attempts": "retry.attempts",
    "retry_chunks": "retry.chunks",
    "retry_serial_fallbacks": "retry.serial_fallbacks",
    "retry_backoff_seconds": "retry.backoff_seconds",
}

#: Attributes exposed as floats; everything else is coerced to int.
_FLOAT_FIELDS = frozenset(
    {
        "cube_build_seconds",
        "elapsed_seconds",
        "parallel_merge_seconds",
        "shard_merge_seconds",
        "retry_backoff_seconds",
    }
)

#: Counter-name prefix of the per-subset-size node-check histogram.
_CHECKS_PREFIX = "nodes.checked_by_size."

#: High-water mark: the largest single frequency set materialised.
_PEAK_KEY = "frequency.peak_rows"


def _counter_view(field: str, key: str) -> property:
    cast = float if field in _FLOAT_FIELDS else int

    def fget(self: "SearchStats"):
        return cast(self.counters.get(key, 0))

    def fset(self: "SearchStats", value) -> None:
        self.counters.set(key, cast(value))

    return property(fget, fset, doc=f"View of counter {key!r}.")


class SearchStats:
    """Counters filled in by a single algorithm run.

    Semantics of the individual fields (unchanged from the original
    dataclass):

    * ``table_scans`` — frequency sets computed by scanning the base table
    * ``rollups`` — frequency sets computed by rolling up another set
    * ``projections`` — frequency sets computed by projecting attributes out
    * ``nodes_checked`` — nodes decided by evaluating a frequency set (the
      paper's "number of nodes searched")
    * ``nodes_marked`` — nodes skipped via the generalization property
    * ``nodes_generated`` — candidate nodes generated across all iterations
    * ``frequency_set_rows`` — total rows across all computed frequency sets
    * ``rollup_source_rows`` — total rows of the source sets fed to rollups
    * ``cube_build_scans`` / ``cube_build_seconds`` — Cube pre-computation
    * ``elapsed_seconds`` — whole-run wall clock (filled by the caller)

    Alongside the counters, each run carries a
    :class:`~repro.obs.metrics.MetricSet` of distribution instruments
    (``latency.*`` timings, ``dist.*`` data distributions, ``worker.*``
    pool telemetry).  Metrics ride the same merge path as counters —
    per-chunk deltas from pool workers fold in with
    ``stats += delta`` — but equality (:meth:`__eq__`) intentionally
    compares counters only: wall-clock histograms differ between otherwise
    identical runs, and the differential suite compares the deterministic
    ``dist.*`` family explicitly instead.
    """

    __slots__ = ("counters", "metrics")

    def __init__(
        self,
        counters: CounterSet | None = None,
        metrics: MetricSet | None = None,
        **initial,
    ) -> None:
        self.counters = counters if counters is not None else CounterSet()
        self.metrics = metrics if metrics is not None else MetricSet()
        for field, value in initial.items():
            if field == "checks_by_subset_size":
                for size, count in value.items():
                    self.counters.set(f"{_CHECKS_PREFIX}{int(size)}", count)
                continue
            if field not in _COUNTER_KEYS and field != "peak_frequency_set_rows":
                raise TypeError(f"SearchStats has no field {field!r}")
            setattr(self, field, value)

    # Summed counters, exposed as plain read/write attributes.
    table_scans = _counter_view("table_scans", _COUNTER_KEYS["table_scans"])
    rollups = _counter_view("rollups", _COUNTER_KEYS["rollups"])
    projections = _counter_view("projections", _COUNTER_KEYS["projections"])
    nodes_checked = _counter_view("nodes_checked", _COUNTER_KEYS["nodes_checked"])
    nodes_marked = _counter_view("nodes_marked", _COUNTER_KEYS["nodes_marked"])
    nodes_generated = _counter_view(
        "nodes_generated", _COUNTER_KEYS["nodes_generated"]
    )
    frequency_set_rows = _counter_view(
        "frequency_set_rows", _COUNTER_KEYS["frequency_set_rows"]
    )
    rollup_source_rows = _counter_view(
        "rollup_source_rows", _COUNTER_KEYS["rollup_source_rows"]
    )
    cube_build_scans = _counter_view(
        "cube_build_scans", _COUNTER_KEYS["cube_build_scans"]
    )
    cube_build_seconds = _counter_view(
        "cube_build_seconds", _COUNTER_KEYS["cube_build_seconds"]
    )
    elapsed_seconds = _counter_view(
        "elapsed_seconds", _COUNTER_KEYS["elapsed_seconds"]
    )
    cache_hits = _counter_view("cache_hits", _COUNTER_KEYS["cache_hits"])
    cache_misses = _counter_view("cache_misses", _COUNTER_KEYS["cache_misses"])
    cache_evictions = _counter_view(
        "cache_evictions", _COUNTER_KEYS["cache_evictions"]
    )
    cache_rollup_saves = _counter_view(
        "cache_rollup_saves", _COUNTER_KEYS["cache_rollup_saves"]
    )
    parallel_tasks = _counter_view(
        "parallel_tasks", _COUNTER_KEYS["parallel_tasks"]
    )
    parallel_merge_seconds = _counter_view(
        "parallel_merge_seconds", _COUNTER_KEYS["parallel_merge_seconds"]
    )
    # Shard-mode accounting (see repro.shard): ranged partial scans and the
    # parent-side exact merges that fold them.  Kept in their own namespace
    # so the frequency.* counters stay bit-identical to a serial run — one
    # merged shard scan still accounts exactly one frequency.table_scans.
    shard_range_scans = _counter_view(
        "shard_range_scans", _COUNTER_KEYS["shard_range_scans"]
    )
    shard_rows_scanned = _counter_view(
        "shard_rows_scanned", _COUNTER_KEYS["shard_rows_scanned"]
    )
    shard_merges = _counter_view("shard_merges", _COUNTER_KEYS["shard_merges"])
    shard_merge_seconds = _counter_view(
        "shard_merge_seconds", _COUNTER_KEYS["shard_merge_seconds"]
    )
    # Incremental-maintenance accounting (see repro.incremental): delta-only
    # scans over appended rows and the base sets they were merged into.
    # Strictly integer by design — SearchStats equality compares *all*
    # counters, and the append-differential suite asserts incremental runs
    # bit-identical to from-scratch runs; wall-clock lives in the
    # latency.delta_* metric family instead.
    incremental_base_hits = _counter_view(
        "incremental_base_hits", _COUNTER_KEYS["incremental_base_hits"]
    )
    incremental_base_misses = _counter_view(
        "incremental_base_misses", _COUNTER_KEYS["incremental_base_misses"]
    )
    incremental_delta_scans = _counter_view(
        "incremental_delta_scans", _COUNTER_KEYS["incremental_delta_scans"]
    )
    incremental_delta_rows_scanned = _counter_view(
        "incremental_delta_rows_scanned",
        _COUNTER_KEYS["incremental_delta_rows_scanned"],
    )
    incremental_base_rows_reused = _counter_view(
        "incremental_base_rows_reused",
        _COUNTER_KEYS["incremental_base_rows_reused"],
    )
    incremental_captures = _counter_view(
        "incremental_captures", _COUNTER_KEYS["incremental_captures"]
    )
    incremental_evictions = _counter_view(
        "incremental_evictions", _COUNTER_KEYS["incremental_evictions"]
    )
    # Failure supervision (see repro.resilience): observed faults and the
    # retry/degradation work they caused.  Real or injected, these never
    # perturb the frequency.* counters above — failed attempts contribute
    # no deltas; only the one successful execution per chunk is merged.
    fault_crashes = _counter_view("fault_crashes", _COUNTER_KEYS["fault_crashes"])
    fault_timeouts = _counter_view(
        "fault_timeouts", _COUNTER_KEYS["fault_timeouts"]
    )
    fault_poisoned = _counter_view(
        "fault_poisoned", _COUNTER_KEYS["fault_poisoned"]
    )
    fault_pool_rebuilds = _counter_view(
        "fault_pool_rebuilds", _COUNTER_KEYS["fault_pool_rebuilds"]
    )
    fault_demotions = _counter_view(
        "fault_demotions", _COUNTER_KEYS["fault_demotions"]
    )
    fault_memory_pressure = _counter_view(
        "fault_memory_pressure", _COUNTER_KEYS["fault_memory_pressure"]
    )
    fault_errors = _counter_view("fault_errors", _COUNTER_KEYS["fault_errors"])
    retry_attempts = _counter_view(
        "retry_attempts", _COUNTER_KEYS["retry_attempts"]
    )
    retry_chunks = _counter_view("retry_chunks", _COUNTER_KEYS["retry_chunks"])
    retry_serial_fallbacks = _counter_view(
        "retry_serial_fallbacks", _COUNTER_KEYS["retry_serial_fallbacks"]
    )
    retry_backoff_seconds = _counter_view(
        "retry_backoff_seconds", _COUNTER_KEYS["retry_backoff_seconds"]
    )

    @property
    def parallel_workers(self) -> int:
        """Largest worker pool used by any parallel batch (high-water)."""
        return int(self.counters.get("parallel.workers", 0))

    @parallel_workers.setter
    def parallel_workers(self, value: int) -> None:
        self.counters.note_max("parallel.workers", int(value))

    @property
    def peak_frequency_set_rows(self) -> int:
        """Largest single frequency set materialised (memory high-water)."""
        return int(self.counters.get(_PEAK_KEY, 0))

    @peak_frequency_set_rows.setter
    def peak_frequency_set_rows(self, value: int) -> None:
        self.counters.note_max(_PEAK_KEY, int(value))

    def note_frequency_set(self, num_groups: int) -> None:
        """Account one materialised frequency set of ``num_groups`` rows."""
        self.counters.incr(_COUNTER_KEYS["frequency_set_rows"], num_groups)
        self.counters.note_max(_PEAK_KEY, num_groups)
        # Data-valued distribution: integer observations, identical across
        # serial/thread/process execution of the same plan.
        self.metrics.observe("dist.frequency_set_rows", num_groups)

    @property
    def checks_by_subset_size(self) -> dict[int, int]:
        """Per-iteration node-check counts, keyed by subset size."""
        out: dict[int, int] = {}
        for name in self.counters:
            if name.startswith(_CHECKS_PREFIX):
                out[int(name[len(_CHECKS_PREFIX):])] = int(
                    self.counters.get(name)
                )
        return out

    @checks_by_subset_size.setter
    def checks_by_subset_size(self, mapping: dict[int, int]) -> None:
        for name in [n for n in self.counters if n.startswith(_CHECKS_PREFIX)]:
            self.counters.remove(name)
        for size, count in mapping.items():
            self.counters.set(f"{_CHECKS_PREFIX}{int(size)}", count)

    @property
    def frequency_evaluations(self) -> int:
        """Total frequency sets materialised, however computed."""
        return self.table_scans + self.rollups + self.projections

    def record_check(self, subset_size: int) -> None:
        """Count one node decision at the given attribute-subset size."""
        self.counters.incr(_COUNTER_KEYS["nodes_checked"])
        self.counters.incr(f"{_CHECKS_PREFIX}{subset_size}")

    def merge(self, other: "SearchStats") -> None:
        """Accumulate ``other`` into this object (used by multi-phase runs).

        Summed counters add; high-water marks (peak frequency-set rows)
        take the maximum of the two runs; metric histograms fold
        bucket-wise.  All three operations are associative and commutative,
        so per-shard deltas from parallel workers can be folded in any
        order without changing the totals.
        """
        self.counters.merge(other.counters)
        self.metrics.merge(other.metrics)

    def __iadd__(self, other: "SearchStats") -> "SearchStats":
        """``stats += delta`` — in-place :meth:`merge`, returning self."""
        if not isinstance(other, SearchStats):
            return NotImplemented
        self.merge(other)
        return self

    def as_dict(self) -> dict[str, float]:
        """Flat counter snapshot (the ``BENCH_*.json`` payload)."""
        return self.counters.as_dict()

    def summary(self) -> str:
        return (
            f"checked={self.nodes_checked} marked={self.nodes_marked} "
            f"scans={self.table_scans} rollups={self.rollups} "
            f"projections={self.projections} "
            f"generated={self.nodes_generated} "
            f"elapsed={self.elapsed_seconds:.3f}s"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchStats):
            return NotImplemented
        return self.counters == other.counters

    def __repr__(self) -> str:
        return f"SearchStats({self.summary()})"
