"""The µ-Argus-style limited-combination heuristic (paper §6).

    "The µ-Argus system was also implemented to anonymize microdata [10],
    but considered attribute combinations of only a limited size, so the
    results were not always guaranteed to be k-anonymous."

µ-Argus (Hundepool & Willenborg) checks combinations of at most
``max_combination_size`` quasi-identifier attributes, generalizing and/or
locally suppressing until every *checked* combination is safe.  Because
unchecked larger combinations can still isolate individuals, the output is
not guaranteed k-anonymous over the full quasi-identifier — exactly the
flaw the paper points out, and which
``tests/core/test_muargus.py::test_unsoundness_is_real`` demonstrates on a
concrete instance.

The implementation follows the system's published outline: greedy
full-domain generalization driven by the worst undersized checked
combination, then local suppression of cells in the remaining unsafe
combinations.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.core.anonymity import compute_frequency_set
from repro.core.generalize import generalize_table
from repro.core.problem import PreparedTable
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode
from repro.relational.column import Column
from repro.relational.table import Table

#: the suppression token used for locally suppressed cells
SUPPRESSED = "*"


@dataclass
class MuArgusResult:
    """Outcome of a µ-Argus run (NOT an AnonymizationResult: no guarantee)."""

    table: Table
    node: LatticeNode
    suppressed_cells: int
    checked_combination_size: int
    stats: SearchStats = field(default_factory=SearchStats)


def _unsafe_combinations(
    problem: PreparedTable,
    node: LatticeNode,
    k: int,
    max_size: int,
    stats: SearchStats,
) -> list[tuple[tuple[str, ...], int]]:
    """Checked combinations that violate k, with their outlier row counts."""
    qi = problem.quasi_identifier
    unsafe = []
    for size in range(1, min(max_size, len(qi)) + 1):
        for attributes in itertools.combinations(qi, size):
            subset_node = node.subset(attributes)
            frequency_set = compute_frequency_set(problem, subset_node)
            stats.table_scans += 1
            stats.record_check(size)
            outliers = frequency_set.rows_below(k)
            if outliers:
                unsafe.append((attributes, outliers))
    return unsafe


def mu_argus(
    problem: PreparedTable,
    k: int,
    *,
    max_combination_size: int = 2,
) -> MuArgusResult:
    """Run the limited-combination heuristic.

    Phase 1 generalizes (full-domain, one level at a time on the attribute
    appearing in the most unsafe checked combinations) until generalizing
    no longer helps; phase 2 locally suppresses the cells of rows that
    still sit in undersized *checked* combinations.  Combinations larger
    than ``max_combination_size`` are never examined — the documented
    unsoundness.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if max_combination_size < 1:
        raise ValueError("max_combination_size must be >= 1")
    stats = SearchStats()
    started = time.perf_counter()
    qi = problem.quasi_identifier
    node = problem.bottom_node()

    while True:
        unsafe = _unsafe_combinations(
            problem, node, k, max_combination_size, stats
        )
        if not unsafe:
            break
        # attribute appearing in the most unsafe combos, with headroom
        appearances: dict[str, int] = {}
        for attributes, outliers in unsafe:
            for name in attributes:
                if node.level_of(name) < problem.height(name):
                    appearances[name] = appearances.get(name, 0) + outliers
        if not appearances:
            break  # no headroom left: fall through to local suppression
        chosen = max(sorted(appearances), key=lambda name: appearances[name])
        node = node.with_level(chosen, node.level_of(chosen) + 1)

    table = generalize_table(problem, node)
    suppressed_cells = 0
    unsafe = _unsafe_combinations(problem, node, k, max_combination_size, stats)
    if unsafe:
        # Local suppression: blank the offending attributes of rows in
        # undersized checked combinations.
        values = {name: table.column(name).to_list() for name in qi}
        for attributes, _ in unsafe:
            subset_node = node.subset(attributes)
            frequency_set = compute_frequency_set(problem, subset_node)
            stats.table_scans += 1
            small_groups = {
                frequency_set.group_values(g)
                for g in range(frequency_set.num_groups)
                if frequency_set.counts[g] < k
            }
            rows = [
                row
                for row in range(table.num_rows)
                if tuple(values[name][row] for name in attributes)
                in small_groups
            ]
            for row in rows:
                for name in attributes:
                    if values[name][row] != SUPPRESSED:
                        values[name][row] = SUPPRESSED
                        suppressed_cells += 1
        for name in qi:
            table = table.replace_column(name, Column.from_values(values[name]))

    stats.elapsed_seconds = time.perf_counter() - started
    return MuArgusResult(
        table=table,
        node=node,
        suppressed_cells=suppressed_cells,
        checked_combination_size=max_combination_size,
        stats=stats,
    )
