"""Samarati's binary search on generalization height (paper Section 2.2).

Samarati [14] observed that, under the height-based definition of
minimality, if no generalization of height h satisfies k-anonymity then no
generalization of any lower height does.  The algorithm therefore binary
searches the height range of the full lattice: check the heights' midpoint;
if some node at that height is k-anonymous, recurse into the lower half,
otherwise the upper half.  It finds *one* minimal-height k-anonymous
full-domain generalization — unlike Incognito it is not complete, and its
notion of minimality is fixed.

Following the paper's experimental setup, each node check is a group-by
query over the table (the distance-vector-matrix alternative described by
Samarati was found "prohibitively expensive for large databases").  Within
a height, nodes are checked in deterministic order and the scan of a height
stops at the first anonymous node.

Two of this module's costs respond to the shared infrastructure:

* a :class:`~repro.core.fscache.FrequencySetCache` turns repeat probes
  into exact hits and — after any *failed* probe, which evaluates an
  entire height — later higher probes into cached-ancestor rollups
  instead of fresh table scans (every node above a fully-evaluated height
  has a cached ancestor there);
* a parallel :class:`~repro.parallel.BatchMaterializer` evaluates probe
  heights in blocks of ``workers`` nodes.  The found node is identical to
  the serial run (decisions stay in sorted order), but up to
  ``workers - 1`` nodes after the first anonymous one in its block are
  materialised speculatively, so a *parallel* binary search may record a
  few more ``frequency.table_scans`` than a serial one — the one
  documented counter divergence in the parallel subsystem (serial runs
  are always exactly the classic algorithm).
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.anonymity import FrequencyEvaluator
from repro.core.fscache import FrequencySetCache, current_cache
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode
from repro.parallel import BatchMaterializer, ExecutionConfig


def _first_anonymous_at_height(
    evaluator: FrequencyEvaluator,
    lattice,
    height: int,
    k: int,
    max_suppression: int,
    pool: BatchMaterializer,
) -> LatticeNode | None:
    with obs.span("binary_search.probe", height=height) as sp:
        nodes = sorted(
            lattice.nodes_at_height(height), key=LatticeNode.sort_key
        )
        block_size = max(1, pool.execution.workers)
        for start in range(0, len(nodes), block_size):
            block = nodes[start : start + block_size]
            frequency_sets = pool.materialize_batch(
                evaluator, [(node, None) for node in block]
            )
            for node, frequency_set in zip(block, frequency_sets):
                if evaluator.decide(node, frequency_set, k, max_suppression):
                    if sp:
                        sp.set(found=str(node))
                    return node
        if sp:
            sp.set(found=None)
    return None


def samarati_binary_search(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    execution: ExecutionConfig | None = None,
    cache: FrequencySetCache | None = None,
) -> AnonymizationResult:
    """Find one minimal-height k-anonymous generalization by binary search.

    Returns a result with a single node (``complete=False``), or an empty
    node list when even the top of the lattice is not k-anonymous (k larger
    than the table, with no suppression allowance).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if cache is None:
        cache = current_cache()
    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats, cache=cache)
    lattice = problem.lattice()
    stats.nodes_generated = lattice.size
    started = time.perf_counter()

    probes: list[tuple[int, bool]] = []
    low, high = 0, lattice.max_height
    best: LatticeNode | None = None
    pool = BatchMaterializer(problem, execution)
    try:
        while low < high:
            middle = (low + high) // 2
            found = _first_anonymous_at_height(
                evaluator, lattice, middle, k, max_suppression, pool
            )
            probes.append((middle, found is not None))
            if found is not None:
                best = found
                high = middle
            else:
                low = middle + 1
        if best is None or best.height != low:
            # Haven't actually verified height ``low`` yet (or only a
            # higher height succeeded): check it, falling back to the
            # recorded best.
            found = _first_anonymous_at_height(
                evaluator, lattice, low, k, max_suppression, pool
            )
            probes.append((low, found is not None))
            if found is not None:
                best = found
    finally:
        pool.close()

    stats.elapsed_seconds = time.perf_counter() - started
    return make_result(
        "binary-search",
        k,
        [best] if best is not None else [],
        stats,
        max_suppression=max_suppression,
        complete=False,
        probes=probes,
    )
