"""Samarati's binary search on generalization height (paper Section 2.2).

Samarati [14] observed that, under the height-based definition of
minimality, if no generalization of height h satisfies k-anonymity then no
generalization of any lower height does.  The algorithm therefore binary
searches the height range of the full lattice: check the heights' midpoint;
if some node at that height is k-anonymous, recurse into the lower half,
otherwise the upper half.  It finds *one* minimal-height k-anonymous
full-domain generalization — unlike Incognito it is not complete, and its
notion of minimality is fixed.

Following the paper's experimental setup, each node check is a group-by
query over the table (the distance-vector-matrix alternative described by
Samarati was found "prohibitively expensive for large databases").  Within
a height, nodes are checked in deterministic order and the scan of a height
stops at the first anonymous node.

Two of this module's costs respond to the shared infrastructure:

* a :class:`~repro.core.fscache.FrequencySetCache` turns repeat probes
  into exact hits and — after any *failed* probe, which evaluates an
  entire height — later higher probes into cached-ancestor rollups
  instead of fresh table scans (every node above a fully-evaluated height
  has a cached ancestor there);
* a parallel :class:`~repro.parallel.BatchMaterializer` evaluates probe
  heights in blocks of ``workers`` nodes.  The found node is identical to
  the serial run (decisions stay in sorted order), but up to
  ``workers - 1`` nodes after the first anonymous one in its block are
  materialised speculatively, so a *parallel* binary search may record a
  few more ``frequency.table_scans`` than a serial one — the one
  documented counter divergence in the parallel subsystem (serial runs
  are always exactly the classic algorithm).
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.anonymity import FrequencyEvaluator
from repro.core.fscache import FrequencySetCache, current_cache
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode
from repro.obs.counters import CounterSet
from repro.parallel import BatchMaterializer, ExecutionConfig
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    node_from_json,
    node_to_json,
    problem_fingerprint,
    resolve_checkpoint,
)


def _first_anonymous_at_height(
    evaluator: FrequencyEvaluator,
    lattice,
    height: int,
    k: int,
    max_suppression: int,
    pool: BatchMaterializer,
) -> LatticeNode | None:
    probe_started = time.perf_counter()
    with obs.span("binary_search.probe", height=height) as sp:
        nodes = sorted(
            lattice.nodes_at_height(height), key=LatticeNode.sort_key
        )
        block_size = max(1, pool.execution.workers)
        for start in range(0, len(nodes), block_size):
            block = nodes[start : start + block_size]
            frequency_sets = pool.materialize_batch(
                evaluator, [(node, None) for node in block]
            )
            for node, frequency_set in zip(block, frequency_sets):
                if evaluator.decide(node, frequency_set, k, max_suppression):
                    if sp:
                        sp.set(found=str(node))
                    evaluator.stats.metrics.observe(
                        "latency.probe_seconds",
                        time.perf_counter() - probe_started,
                    )
                    return node
        if sp:
            sp.set(found=None)
    evaluator.stats.metrics.observe(
        "latency.probe_seconds", time.perf_counter() - probe_started
    )
    return None


def samarati_binary_search(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
    execution: ExecutionConfig | None = None,
    cache: FrequencySetCache | None = None,
    checkpoint: CheckpointStore | None = None,
    resume: bool = False,
) -> AnonymizationResult:
    """Find one minimal-height k-anonymous generalization by binary search.

    Returns a result with a single node (``complete=False``), or an empty
    node list when even the top of the lattice is not k-anonymous (k larger
    than the table, with no suppression allowance).

    Checkpointing is per *probe* (one fully-evaluated height): each probe's
    height and outcome is persisted with the run's counters, and a resumed
    run replays recorded outcomes through the bisection logic — zero table
    work — before probing live again.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if cache is None:
        cache = current_cache()
    store = checkpoint
    if store is None:
        store, region_resume = resolve_checkpoint(
            "binary-search", problem, k
        )
        resume = resume or region_resume
    header: dict | None = None
    state: dict | None = None
    if store is not None:
        header = {
            "format": CHECKPOINT_FORMAT,
            "kind": "binary-search",
            "algorithm": "binary-search",
            "k": k,
            "max_suppression": max_suppression,
            "fingerprint": problem_fingerprint(problem),
        }
        if resume:
            state = store.load_matching(header)

    if state is not None and state.get("completed"):
        stats = SearchStats(CounterSet.from_snapshot(state["counters"]))
        stats.elapsed_seconds = float(state.get("elapsed_seconds", 0.0))
        best = (
            node_from_json(state["best"])
            if state.get("best") is not None
            else None
        )
        return make_result(
            "binary-search",
            k,
            [best] if best is not None else [],
            stats,
            max_suppression=max_suppression,
            complete=False,
            probes=[
                (int(p["h"]), p["f"] is not None) for p in state["probes"]
            ],
            resumed_probes=len(state["probes"]),
            checkpoint_saves=0,
        )

    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats, cache=cache)
    lattice = problem.lattice()
    stats.nodes_generated = lattice.size
    started = time.perf_counter()

    #: Each probe as {"h": height, "f": found-node JSON or None}.
    record: list[dict] = []
    replayed = 0
    base_elapsed = 0.0
    if state is not None:
        stats.counters = CounterSet.from_snapshot(state["counters"])
        stats.nodes_generated = lattice.size
        record = list(state["probes"])
        base_elapsed = float(state.get("elapsed_seconds", 0.0))
    #: Unconsumed recorded probes, replayed in order instead of evaluated.
    replay = list(record)

    pool = BatchMaterializer(problem, execution)

    def probe(height: int) -> LatticeNode | None:
        nonlocal replayed
        if replay and int(replay[0]["h"]) == height:
            item = replay.pop(0)
            replayed += 1
            return (
                node_from_json(item["f"]) if item["f"] is not None else None
            )
        found = _first_anonymous_at_height(
            evaluator, lattice, height, k, max_suppression, pool
        )
        record.append(
            {
                "h": height,
                "f": node_to_json(found) if found is not None else None,
            }
        )
        if store is not None:
            store.save(
                {
                    **header,
                    "completed": False,
                    "probes": record,
                    "counters": stats.counters.snapshot(),
                    "elapsed_seconds": base_elapsed
                    + (time.perf_counter() - started),
                }
            )
        return found

    low, high = 0, lattice.max_height
    best: LatticeNode | None = None
    try:
        while low < high:
            middle = (low + high) // 2
            found = probe(middle)
            if found is not None:
                best = found
                high = middle
            else:
                low = middle + 1
        if best is None or best.height != low:
            # Haven't actually verified height ``low`` yet (or only a
            # higher height succeeded): check it, falling back to the
            # recorded best.
            found = probe(low)
            if found is not None:
                best = found
    finally:
        pool.close()

    stats.elapsed_seconds = base_elapsed + time.perf_counter() - started
    extra: dict = {}
    if store is not None:
        store.save(
            {
                **header,
                "completed": True,
                "probes": record,
                "best": node_to_json(best) if best is not None else None,
                "counters": stats.counters.snapshot(),
                "elapsed_seconds": stats.elapsed_seconds,
            }
        )
        extra = {
            "checkpoint_saves": store.saves,
            "resumed_probes": replayed,
        }
    return make_result(
        "binary-search",
        k,
        [best] if best is not None else [],
        stats,
        max_suppression=max_suppression,
        complete=False,
        probes=[(int(p["h"]), p["f"] is not None) for p in record],
        **extra,
    )
