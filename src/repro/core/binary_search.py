"""Samarati's binary search on generalization height (paper Section 2.2).

Samarati [14] observed that, under the height-based definition of
minimality, if no generalization of height h satisfies k-anonymity then no
generalization of any lower height does.  The algorithm therefore binary
searches the height range of the full lattice: check the heights' midpoint;
if some node at that height is k-anonymous, recurse into the lower half,
otherwise the upper half.  It finds *one* minimal-height k-anonymous
full-domain generalization — unlike Incognito it is not complete, and its
notion of minimality is fixed.

Following the paper's experimental setup, each node check is a group-by
query over the table (the distance-vector-matrix alternative described by
Samarati was found "prohibitively expensive for large databases").  Within
a height, nodes are checked in deterministic order and the scan of a height
stops at the first anonymous node.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.anonymity import FrequencyEvaluator
from repro.core.problem import PreparedTable
from repro.core.result import AnonymizationResult, make_result
from repro.core.stats import SearchStats
from repro.lattice.node import LatticeNode


def _first_anonymous_at_height(
    evaluator: FrequencyEvaluator,
    lattice,
    height: int,
    k: int,
    max_suppression: int,
) -> LatticeNode | None:
    with obs.span("binary_search.probe", height=height) as sp:
        for node in sorted(
            lattice.nodes_at_height(height), key=LatticeNode.sort_key
        ):
            frequency_set = evaluator.scan(node)
            if evaluator.decide(node, frequency_set, k, max_suppression):
                if sp:
                    sp.set(found=str(node))
                return node
        if sp:
            sp.set(found=None)
    return None


def samarati_binary_search(
    problem: PreparedTable,
    k: int,
    *,
    max_suppression: int = 0,
) -> AnonymizationResult:
    """Find one minimal-height k-anonymous generalization by binary search.

    Returns a result with a single node (``complete=False``), or an empty
    node list when even the top of the lattice is not k-anonymous (k larger
    than the table, with no suppression allowance).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    stats = SearchStats()
    evaluator = FrequencyEvaluator(problem, stats)
    lattice = problem.lattice()
    stats.nodes_generated = lattice.size
    started = time.perf_counter()

    probes: list[tuple[int, bool]] = []
    low, high = 0, lattice.max_height
    best: LatticeNode | None = None
    while low < high:
        middle = (low + high) // 2
        found = _first_anonymous_at_height(
            evaluator, lattice, middle, k, max_suppression
        )
        probes.append((middle, found is not None))
        if found is not None:
            best = found
            high = middle
        else:
            low = middle + 1
    if best is None or best.height != low:
        # Haven't actually verified height ``low`` yet (or only a higher
        # height succeeded): check it, falling back to the recorded best.
        found = _first_anonymous_at_height(
            evaluator, lattice, low, k, max_suppression
        )
        probes.append((low, found is not None))
        if found is not None:
            best = found

    stats.elapsed_seconds = time.perf_counter() - started
    return make_result(
        "binary-search",
        k,
        [best] if best is not None else [],
        stats,
        max_suppression=max_suppression,
        complete=False,
        probes=probes,
    )
