"""Command-line interface: anonymize, check, and attack CSV files.

Subcommands
-----------

``anonymize``
    K-anonymize a CSV with a JSON hierarchy spec::

        python -m repro anonymize people.csv --hierarchies spec.json \\
            --k 5 --algorithm basic --output released.csv

    The spec file maps quasi-identifier attribute names to hierarchy
    specs (see :mod:`repro.hierarchy.spec` for the format).

``check``
    Verify a CSV satisfies k-anonymity over a quasi-identifier::

        python -m repro check released.csv --qi age,sex,zip --k 5

``attack``
    Run the Figure 1 joining attack of an external CSV against a
    released CSV::

        python -m repro attack voters.csv released.csv --qi birth,sex,zip

``model``
    Anonymize with any Section 5 taxonomy model::

        python -m repro model mondrian people.csv --qi age,sex,zip --k 5 \\
            --output released.csv

    Hierarchy-based models need ``--hierarchies``; partition-based models
    (mondrian, partition-1d, k-optimize) order the raw domains and need
    none (absent spec entries default to one-step suppression).

The figure/table benchmarks have their own entry point:
``python -m repro.bench.run_figures``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro import obs
from repro.attack.joining import joining_attack
from repro.core.anonymity import check_k_anonymity
from repro.core.binary_search import samarati_binary_search
from repro.core.bottomup import bottom_up_search
from repro.core.cube import cube_incognito
from repro.core.datafly import datafly
from repro.core.fscache import FrequencySetCache, use_cache
from repro.core.incognito import basic_incognito
from repro.core.problem import PreparedTable
from repro.core.superroots import superroots_incognito
from repro.parallel import ExecutionConfig, use_execution
from repro.resilience import CheckpointStore, FaultPlan, atomic_write_text
from repro.hierarchy.spec import hierarchies_from_spec
from repro.relational.csvio import read_csv, write_csv
from repro.relational.groupby import group_by_count

ALGORITHMS: dict[str, Callable] = {
    "basic": basic_incognito,
    "superroots": superroots_incognito,
    "cube": cube_incognito,
    "binary": samarati_binary_search,
    "bottomup": bottom_up_search,
    "datafly": datafly,
}


def _parse_weights(text: str) -> dict[str, float]:
    """Parse ``attr=weight,attr=weight`` pairs."""
    weights = {}
    for pair in text.split(","):
        if not pair:
            continue
        name, _, value = pair.partition("=")
        if not value:
            raise argparse.ArgumentTypeError(
                f"weights must be attr=number pairs, got {pair!r}"
            )
        weights[name] = float(value)
    return weights


def _comma_list(text: str) -> list[str]:
    return [item for item in text.split(",") if item]


def _fault_plan(text: str) -> FaultPlan:
    """argparse type for ``--inject-faults``; clean errors on bad specs."""
    try:
        return FaultPlan.from_spec(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def cmd_anonymize(args: argparse.Namespace) -> int:
    table = read_csv(args.input)
    spec = json.loads(Path(args.hierarchies).read_text())
    hierarchies = hierarchies_from_spec(spec)
    qi = args.qi if args.qi else list(hierarchies)
    problem = PreparedTable(table, hierarchies, qi)

    if args.append or args.base_checkpoint:
        # Incremental path: anonymize the base plus every appended delta,
        # reusing frequency sets remembered (and, with --base-checkpoint,
        # persisted with a version-fingerprint chain) from earlier runs.
        from repro.incremental import IncrementalSession

        session = IncrementalSession(
            problem,
            args.k,
            algorithm=args.algorithm,
            max_suppression=args.max_suppression,
            checkpoint_dir=args.base_checkpoint,
        )
        for path in args.append or []:
            delta = read_csv(path)
            session.append(delta)
            print(
                f"appended {delta.num_rows} row(s) from {path} "
                f"(dataset version {session.version})",
                file=sys.stderr,
            )
        result = session.run(resume=args.resume)
        problem = session.dataset.problem
    else:
        algorithm = ALGORITHMS[args.algorithm]
        extra = {}
        if args.checkpoint:
            extra["checkpoint"] = CheckpointStore(args.checkpoint)
            extra["resume"] = args.resume
        result = algorithm(
            problem, args.k, max_suppression=args.max_suppression, **extra
        )
    if not result.found:
        print(
            f"no {args.k}-anonymous full-domain generalization exists "
            f"(suppression budget {args.max_suppression})",
            file=sys.stderr,
        )
        return 1

    print(result.describe())
    if args.show_all:
        for node in result.anonymous_nodes:
            print(f"  {node.label()}  (height {node.height})")

    if args.weights:
        node = result.weighted_minimal(args.weights)
    else:
        node = result.best_node()
    view = result.apply(problem, node)
    print(f"selected generalization: {node.label()}")
    if view.suppressed_rows:
        print(f"suppressed {view.suppressed_rows} outlier row(s)")

    if args.output:
        write_csv(view.table, args.output)
        print(f"wrote {view.table.num_rows} rows to {args.output}")
    else:
        print(view.table.pretty(limit=args.preview))
    return 0


def _model_registry() -> dict[str, Callable]:
    from repro.models import (
        AnnealingSubtreeModel,
        AttributeSuppressionModel,
        CellGeneralizationModel,
        CellSuppressionModel,
        FullDomainModel,
        GeneticSubtreeModel,
        KOptimizeModel,
        MondrianModel,
        MultiDimSubgraphModel,
        Partition1DModel,
        SubtreeModel,
        UnrestrictedModel,
        UnrestrictedMultiDimModel,
    )

    return {
        "full-domain": FullDomainModel,
        "attribute-suppression": AttributeSuppressionModel,
        "subtree": SubtreeModel,
        "genetic": GeneticSubtreeModel,
        "annealing": AnnealingSubtreeModel,
        "unrestricted": UnrestrictedModel,
        "partition-1d": Partition1DModel,
        "k-optimize": KOptimizeModel,
        "multidim-subgraph": MultiDimSubgraphModel,
        "multidim-unrestricted": UnrestrictedMultiDimModel,
        "mondrian": MondrianModel,
        "cell-suppression": CellSuppressionModel,
        "cell-generalization": CellGeneralizationModel,
    }


def cmd_model(args: argparse.Namespace) -> int:
    from repro.hierarchy import SuppressionHierarchy
    from repro.metrics import average_class_size, discernibility

    table = read_csv(args.input)
    if args.hierarchies:
        spec = json.loads(Path(args.hierarchies).read_text())
        hierarchies = hierarchies_from_spec(spec)
    else:
        hierarchies = {}
    qi = args.qi if args.qi else list(hierarchies)
    if not qi:
        print("--qi (or a hierarchy spec) is required", file=sys.stderr)
        return 2
    for name in qi:  # partition models don't need real hierarchies
        hierarchies.setdefault(name, SuppressionHierarchy())
    problem = PreparedTable(table, hierarchies, qi)

    model = _model_registry()[args.model]()
    result = model.anonymize(problem, args.k)
    print(
        f"{result.model}: C_DM={discernibility(result.table, qi)} "
        f"C_AVG={average_class_size(result.table, qi, args.k):.2f}"
        + (
            f" suppressed_rows={result.suppressed_rows}"
            if result.suppressed_rows
            else ""
        )
    )
    if args.output:
        write_csv(result.table, args.output)
        print(f"wrote {result.table.num_rows} rows to {args.output}")
    else:
        print(result.table.pretty(limit=args.preview))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    table = read_csv(args.input)
    result = group_by_count(table, args.qi)
    anonymous = check_k_anonymity(table, args.qi, args.k)
    smallest = result.min_count()
    print(
        f"{args.input}: {table.num_rows} rows, {result.num_groups} "
        f"equivalence classes over {args.qi}; smallest class {smallest}"
    )
    print(f"{args.k}-anonymous: {'YES' if anonymous else 'NO'}")
    if not anonymous:
        exposed = result.counts < args.k
        print(
            f"{int(result.counts[exposed].sum())} row(s) live in classes "
            f"smaller than {args.k}"
        )
    return 0 if anonymous else 1


def cmd_attack(args: argparse.Namespace) -> int:
    external = read_csv(args.external)
    released = read_csv(args.released)
    report = joining_attack(external, released, args.qi)
    print(report.describe())
    return 0 if report.uniquely_linked == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_server

    print(
        f"serving anonymization jobs from {args.data_dir} "
        f"on {args.host}:{args.port or '<ephemeral>'} "
        f"(SIGTERM drains gracefully)"
    )
    run_server(
        args.data_dir,
        host=args.host,
        port=args.port,
        max_running=args.max_running,
        max_queue=args.max_queue,
        tenant_budget=args.tenant_budget,
        heartbeat_timeout=args.heartbeat_timeout,
        max_attempts=args.max_attempts,
        fault_spec=args.inject_job_faults,
        slo_p99_seconds=args.slo_p99_seconds,
        slo_error_rate=args.slo_error_rate,
        slo_queue_depth=args.slo_queue_depth,
        sample_interval=args.sample_interval,
    )
    return 0


def cmd_trace_tool(args: argparse.Namespace) -> int:
    """``repro trace stitch``: merge a job's per-process trace files."""
    from repro.obs.stitch import stitch_directory, validate_chrome

    chrome, summary = stitch_directory(args.job_dir)
    validate_chrome(chrome)
    rendered = json.dumps(chrome) + "\n"
    if args.output:
        atomic_write_text(Path(args.output), rendered)
    else:
        sys.stdout.write(rendered)
    print(
        f"stitched {summary['spans']} span(s) from "
        f"{len(summary['processes'])} process(es); "
        f"trace ids: {', '.join(summary['trace_ids']) or '<none>'}; "
        f"{summary['resolved_links']}/{summary['remote_links']} "
        f"cross-process link(s) resolved"
        + (f"; wrote {args.output}" if args.output else ""),
        file=sys.stderr,
    )
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service.status import render_status_from_info

    print(render_status_from_info(args.server_info, timeout=args.timeout))
    return 0


def cmd_gc_shm(args: argparse.Namespace) -> int:
    from repro.shard.manifest import manifest_dir, sweep_orphans

    report = sweep_orphans()
    print(f"swept {manifest_dir()}:")
    print(json.dumps(report.as_dict(), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Full-domain k-anonymization (Incognito reproduction)",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="record obs trace spans (scans, rollups, group-bys, joins) as "
        "JSON lines to FILE (default stderr)",
    )
    parser.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome", "folded"],
        default="jsonl",
        help="trace output format: raw JSON lines (default), Chrome "
        "trace-event JSON (Perfetto-loadable), or folded-stack "
        "flamegraph text",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run's metric histogram summaries "
        "(count/sum/min/max/p50/p90/p99 per instrument) as JSON to PATH",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the command under cProfile and print the top hotspots",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="evaluate each lattice level's nodes on this many workers "
        "(1 = serial; results are identical either way)",
    )
    parser.add_argument(
        "--parallel-mode",
        choices=["threads", "processes", "shards"],
        default="processes",
        help="worker backend when --workers > 1 (default: processes; "
        "threads avoid process start-up cost on small tables; shards "
        "fan each table scan out over shared-memory row shards)",
    )
    parser.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        metavar="N",
        help="rows per shard under --parallel-mode shards (default: the "
        "package default width; affects execution granularity only, "
        "never the results)",
    )
    parser.add_argument(
        "--cache-mb",
        type=int,
        default=0,
        metavar="MB",
        help="enable the frequency-set cache with this byte budget "
        "(0 = off); repeat probes become cache hits instead of table scans",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervision timeout per parallel chunk; a chunk exceeding it "
        "is abandoned and retried (default: wait forever)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="failed-chunk retries before falling back to serial execution "
        "of that chunk in the parent (default: 3)",
    )
    parser.add_argument(
        "--inject-faults",
        type=_fault_plan,
        default=None,
        metavar="SPEC",
        help="deterministically inject worker failures for resilience "
        "testing, e.g. 'crash=0.2,timeout=0.1,seed=7' "
        "(keys: crash, timeout, slow, poison, memory, seed, hold, delay); "
        "results are bit-identical to a fault-free run",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    anonymize = commands.add_parser(
        "anonymize", help="k-anonymize a CSV file"
    )
    anonymize.add_argument("input", help="input CSV (with header row)")
    anonymize.add_argument(
        "--hierarchies", required=True,
        help="JSON file mapping QI attributes to hierarchy specs",
    )
    anonymize.add_argument("--k", type=int, required=True)
    anonymize.add_argument(
        "--qi", type=_comma_list, default=None,
        help="comma-separated QI attributes (default: all spec keys)",
    )
    anonymize.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="basic"
    )
    anonymize.add_argument("--max-suppression", type=int, default=0)
    anonymize.add_argument(
        "--weights", type=_parse_weights, default=None,
        help="minimality weights, e.g. age=5,sex=0.1",
    )
    anonymize.add_argument("--output", default=None, help="output CSV path")
    anonymize.add_argument("--preview", type=int, default=10)
    anonymize.add_argument(
        "--show-all", action="store_true",
        help="list every k-anonymous generalization found",
    )
    anonymize.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="persist search progress to PATH after every completed "
        "level/probe (atomic writes), enabling --resume after a kill",
    )
    anonymize.add_argument(
        "--resume", action="store_true",
        help="resume from a matching --checkpoint file instead of "
        "re-searching completed levels (with --base-checkpoint, resumes "
        "the incremental run's own checkpoint)",
    )
    anonymize.add_argument(
        "--append", action="append", default=None, metavar="CSV",
        help="append this delta CSV (same columns as the input) before "
        "anonymizing; repeatable, applied in order — the run then scans "
        "only rows not covered by remembered frequency sets",
    )
    anonymize.add_argument(
        "--base-checkpoint", default=None, metavar="DIR",
        help="directory holding the incremental session state (per-node "
        "frequency sets + the dataset's version-fingerprint chain); "
        "reused across invocations so re-anonymizing after --append "
        "touches only the new rows",
    )
    anonymize.set_defaults(run=cmd_anonymize)

    check = commands.add_parser("check", help="verify k-anonymity of a CSV")
    check.add_argument("input")
    check.add_argument("--qi", type=_comma_list, required=True)
    check.add_argument("--k", type=int, required=True)
    check.set_defaults(run=cmd_check)

    attack = commands.add_parser(
        "attack", help="joining attack: external CSV vs released CSV"
    )
    attack.add_argument("external")
    attack.add_argument("released")
    attack.add_argument("--qi", type=_comma_list, required=True)
    attack.set_defaults(run=cmd_attack)

    model = commands.add_parser(
        "model", help="anonymize with a Section 5 taxonomy model"
    )
    model.add_argument("model", choices=sorted(_model_registry()))
    model.add_argument("input")
    model.add_argument("--k", type=int, required=True)
    model.add_argument("--qi", type=_comma_list, default=None)
    model.add_argument(
        "--hierarchies", default=None,
        help="JSON hierarchy spec (needed by hierarchy-based models)",
    )
    model.add_argument("--output", default=None)
    model.add_argument("--preview", type=int, default=10)
    model.set_defaults(run=cmd_model)

    serve = commands.add_parser(
        "serve",
        help="run the anonymization job server (asyncio HTTP/JSON; "
        "crash-safe WAL, deadlines, admission control, graceful drain)",
    )
    serve.add_argument(
        "data_dir",
        help="service state directory (WAL, snapshots, per-job dirs); "
        "jobs found here are recovered and resumed on start",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = OS-assigned; the bound port is "
        "recorded in <data_dir>/server.json)",
    )
    serve.add_argument(
        "--max-running", type=int, default=2,
        help="concurrent job subprocesses (default: 2)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16,
        help="queued-job bound; submissions beyond it get HTTP 429 "
        "(default: 16)",
    )
    serve.add_argument(
        "--tenant-budget", type=int, default=4,
        help="active (queued+running) jobs allowed per tenant before "
        "429 (default: 4)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="execution attempts per job before a crash/hang becomes a "
        "terminal failure (default: 3)",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="a runner whose heartbeat is staler than this is killed and "
        "retried with backoff (default: 5s)",
    )
    serve.add_argument(
        "--inject-job-faults", default=None, metavar="SPEC",
        help="seeded job-level fault injection for chaos testing, e.g. "
        "'crash=0.3,timeout=0.2,seed=7' (crash kills the runner after "
        "its first checkpoint; timeout hangs it until the watchdog fires)",
    )
    serve.add_argument(
        "--slo-p99-seconds", type=float, default=None, metavar="SECONDS",
        help="SLO: rolling p99 job latency above this degrades /healthz "
        "to 503 (default: no latency SLO)",
    )
    serve.add_argument(
        "--slo-error-rate", type=float, default=None, metavar="FRACTION",
        help="SLO: job failure fraction over the rolling window above "
        "this degrades /healthz to 503 (default: no error-rate SLO)",
    )
    serve.add_argument(
        "--slo-queue-depth", type=int, default=None, metavar="N",
        help="SLO: queue depth above this degrades /healthz to 503 "
        "(default: no queue-depth SLO)",
    )
    serve.add_argument(
        "--sample-interval", type=float, default=2.0, metavar="SECONDS",
        help="telemetry sampler tick: how often the server snapshots its "
        "metrics into the /metrics/history ring and re-evaluates SLO "
        "windows (default: 2.0)",
    )
    serve.set_defaults(run=cmd_serve)

    trace_tool = commands.add_parser(
        "trace",
        help="work with recorded trace files (trace stitch: merge one "
        "job's per-process JSON-lines traces into a single validated "
        "Chrome trace with cross-process flow links)",
    )
    trace_tool.add_argument(
        "action", choices=("stitch",),
        help="stitch: merge trace*.jsonl files under JOB_DIR",
    )
    trace_tool.add_argument(
        "job_dir",
        help="job directory (or any directory searched recursively for "
        "trace*.jsonl files, e.g. a whole service data dir)",
    )
    trace_tool.add_argument(
        "--output", "-o", default=None, metavar="FILE",
        help="write the Chrome trace JSON here (default: stdout)",
    )
    trace_tool.set_defaults(run=cmd_trace_tool)

    status = commands.add_parser(
        "status",
        help="live one-screen operational view of a running server "
        "(active jobs, tenant budgets, SLO state, top latency metrics)",
    )
    status.add_argument(
        "server_info",
        help="path to the server's server.json (or its data directory)",
    )
    status.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="HTTP timeout per request (default: 5.0)",
    )
    status.set_defaults(run=cmd_status)

    gc_shm = commands.add_parser(
        "gc-shm",
        help="sweep shared-memory segments orphaned by SIGKILLed owners "
        "(reads the on-disk segment manifest; safe while servers run)",
    )
    gc_shm.set_defaults(run=cmd_gc_shm)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if getattr(args, "resume", False) and not (
        getattr(args, "checkpoint", None)
        or getattr(args, "base_checkpoint", None)
    ):
        parser.error(
            "--resume requires --checkpoint PATH or --base-checkpoint DIR"
        )
    if getattr(args, "checkpoint", None) and args.algorithm == "datafly":
        parser.error(
            "--checkpoint is not supported by the datafly heuristic "
            "(it has no level-synchronous structure to checkpoint)"
        )
    incremental = getattr(args, "append", None) or getattr(
        args, "base_checkpoint", None
    )
    if incremental:
        if args.algorithm not in ("basic", "bottomup", "binary"):
            parser.error(
                "incremental runs (--append/--base-checkpoint) support "
                "--algorithm basic, bottomup, or binary"
            )
        if getattr(args, "checkpoint", None):
            parser.error(
                "--checkpoint conflicts with incremental runs; the "
                "--base-checkpoint directory manages its own run checkpoint"
            )

    if args.trace_format != "jsonl" and args.trace is None:
        parser.error("--trace-format requires --trace FILE")

    trace_sink = None
    if args.trace is not None:
        if args.trace_format != "jsonl":
            # chrome/folded render from the complete span set at the end.
            trace_sink = obs.InMemorySink()
        elif args.trace == "-":
            trace_sink = obs.JsonLinesSink(sys.stderr)
        else:
            trace_sink = obs.JsonLinesSink.open(args.trace)
    tracer = (
        obs.Tracer(trace_sink)
        if trace_sink is not None or args.metrics_out is not None
        else obs.get_tracer()
    )
    try:
        execution = ExecutionConfig.from_workers(
            args.workers, args.parallel_mode
        )
        if (
            args.chunk_timeout is not None
            or args.max_retries != 3
            or args.inject_faults is not None
            or args.shard_rows is not None
        ):
            execution = ExecutionConfig(
                mode=execution.mode,
                workers=execution.workers,
                chunk_timeout=args.chunk_timeout,
                max_retries=args.max_retries,
                faults=args.inject_faults,
                shard_rows=args.shard_rows,
            )
        cache = (
            FrequencySetCache(args.cache_mb * 1024 * 1024)
            if args.cache_mb > 0
            else None
        )
    except ValueError as error:
        parser.error(str(error))
    try:
        with obs.use_tracer(tracer), use_execution(execution), use_cache(cache):
            if args.profile:
                with obs.profile():
                    return args.run(args)
            return args.run(args)
    finally:
        if isinstance(trace_sink, obs.InMemorySink):
            rendered = obs.render_trace(
                [span.to_dict() for span in trace_sink.spans],
                args.trace_format,
            )
            if args.trace == "-":
                sys.stderr.write(rendered)
            else:
                atomic_write_text(Path(args.trace), rendered)
        elif trace_sink is not None:
            trace_sink.close()
        if args.metrics_out is not None:
            atomic_write_text(
                args.metrics_out,
                json.dumps(
                    tracer.metrics.as_dict(), indent=2, sort_keys=True
                )
                + "\n",
            )


if __name__ == "__main__":
    raise SystemExit(main())
