"""repro — a reproduction of *Incognito: Efficient Full-Domain K-Anonymity*
(Kristen LeFevre, David J. DeWitt, Raghu Ramakrishnan, SIGMOD 2005).

Quick start::

    from repro import PreparedTable, basic_incognito
    from repro.datasets import patients_table, patients_hierarchies

    problem = PreparedTable(patients_table(), patients_hierarchies())
    result = basic_incognito(problem, k=2)
    view = result.apply(problem)
    print(view.table.pretty())

Package map:

* :mod:`repro.relational` — in-memory columnar relational engine (the DB2
  substitute): tables, group-by, joins, star schema.
* :mod:`repro.hierarchy`  — domain/value generalization hierarchies.
* :mod:`repro.lattice`    — generalization lattices and a-priori candidate
  graph generation.
* :mod:`repro.core`       — the Incognito variants and every baseline.
* :mod:`repro.models`     — the Section 5 taxonomy of k-anonymization models.
* :mod:`repro.metrics`    — information-loss metrics.
* :mod:`repro.datasets`   — the paper's running example plus synthetic
  Adults / Lands End generators.
* :mod:`repro.attack`     — the joining (linkage) attack of Figure 1.
* :mod:`repro.bench`      — the experiment harness regenerating the paper's
  figures and tables.
"""

from repro.core import (
    AnonymizationResult,
    PreparedTable,
    apply_generalization,
    basic_incognito,
    bottom_up_search,
    check_k_anonymity,
    cube_incognito,
    datafly,
    samarati_binary_search,
    superroots_incognito,
)
from repro.lattice import GeneralizationLattice, LatticeNode
from repro.relational import Table

__version__ = "1.0.0"

__all__ = [
    "AnonymizationResult",
    "GeneralizationLattice",
    "LatticeNode",
    "PreparedTable",
    "Table",
    "apply_generalization",
    "basic_incognito",
    "bottom_up_search",
    "check_k_anonymity",
    "cube_incognito",
    "datafly",
    "samarati_binary_search",
    "superroots_incognito",
    "__version__",
]
