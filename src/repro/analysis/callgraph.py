"""Interprocedural call graph and blocking-call detection.

The concurrency rules (RA006-RA009) need one thing the per-module AST
walks of RA001-RA005 cannot give them: *reachability through calls*.  A
lock held in ``JobManager._tick`` is dangerous not because of what
``_tick`` does directly but because of what ``_enforce_watchdogs`` →
``_kill`` → ``process.join(...)`` does three frames down; a coroutine in
the asyncio server is unsafe because of file IO two synchronous calls
away.  This module builds that bridge over the existing
:class:`~repro.analysis.core.Project` layer.

Resolution is deliberately *typed and conservative* — an edge exists only
when the target is provable from the source text:

* ``name(...)`` where ``name`` is defined in, or imported into, the
  calling module;
* ``self.method(...)`` inside a class body;
* ``alias.func(...)`` through a module-object import alias;
* ``self.attr.method(...)`` where ``self.attr`` was assigned in a method
  of the class from an annotated parameter or a direct construction of a
  project class (``self.store = JobStore(...)``).

Anything dynamic resolves to nothing rather than to a guess: a missed
edge costs recall, a fabricated edge costs a false finding, and for a
lint gate the second is the expensive one.  ``loop.run_in_executor(None,
fn, ...)`` is the one special form: the target is recorded as an
*executor edge*, excluded from ordinary traversal, because the callable
runs on a worker thread — it is exactly the sanctioned way to do blocking
work from a coroutine.

The blocking-call scanner lives here too (shared by RA006 and RA007):
a syntactic classifier for calls that park the calling thread —
subprocess waits, ``.join``/``.wait``, queue gets, socket reads,
``time.sleep`` — with an opt-in wider profile (sync file IO, lock
acquisition) for the async-safety rule, where *any* of it stalls the
event loop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import ModuleUnit, Project

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition indexed by the call graph."""

    qualname: str  #: ``module.func`` or ``module.Class.method``
    unit: ModuleUnit
    node: FunctionNode
    class_qual: str | None  #: ``module.Class`` for methods, else None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


def _symbol_imports(unit: ModuleUnit, project: Project) -> dict[str, str]:
    """Local name → dotted target for ``from x import y`` style imports.

    Unlike :meth:`Project.import_aliases` (module objects only) this also
    resolves imported *functions and classes* — ``from repro.service.wal
    import JobStore`` binds ``JobStore`` → ``repro.service.wal.JobStore``.
    """
    symbols: dict[str, str] = {}
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.ImportFrom):
            base = project._import_from_base(unit, node)
            if base is None:
                continue
            for alias in node.names:
                symbols[alias.asname or alias.name] = f"{base}.{alias.name}"
    return symbols


class CallGraph:
    """Function index + resolvable call edges over one project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: qualname → definition.
        self.functions: dict[str, FunctionInfo] = {}
        #: ``module.Class`` → class definition unit (for attr typing).
        self._classes: dict[str, tuple[ModuleUnit, ast.ClassDef]] = {}
        #: ``module.Class.attr`` → ``module.Class`` (inferred object type).
        self.attr_types: dict[str, str] = {}
        #: caller qualname → callee qualnames (ordinary call edges).
        self.edges: dict[str, set[str]] = {}
        #: caller qualname → callables dispatched via ``run_in_executor``.
        self.executor_edges: dict[str, set[str]] = {}
        #: call-site lines: (caller, callee) → first line in the caller.
        self.call_lines: dict[tuple[str, str], int] = {}
        self._symbols_cache: dict[str, dict[str, str]] = {}
        self._aliases_cache: dict[str, dict[str, str]] = {}
        self._index()
        self._infer_attr_types()
        for info in self.functions.values():
            self._resolve_edges(info)

    def _symbols_for(self, unit: ModuleUnit) -> dict[str, str]:
        cached = self._symbols_cache.get(unit.module)
        if cached is None:
            cached = _symbol_imports(unit, self.project)
            self._symbols_cache[unit.module] = cached
        return cached

    def _aliases_for(self, unit: ModuleUnit) -> dict[str, str]:
        cached = self._aliases_cache.get(unit.module)
        if cached is None:
            cached = self.project.import_aliases(unit)
            self._aliases_cache[unit.module] = cached
        return cached

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index(self) -> None:
        for unit in self.project.units:
            for stmt in unit.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add(unit, stmt, None)
                elif isinstance(stmt, ast.ClassDef):
                    class_qual = f"{unit.module}.{stmt.name}"
                    self._classes[class_qual] = (unit, stmt)
                    for member in stmt.body:
                        if isinstance(
                            member, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._add(unit, member, class_qual)

    def _add(
        self, unit: ModuleUnit, node: FunctionNode, class_qual: str | None
    ) -> None:
        owner = class_qual if class_qual is not None else unit.module
        info = FunctionInfo(f"{owner}.{node.name}", unit, node, class_qual)
        self.functions[info.qualname] = info

    def _infer_attr_types(self) -> None:
        """Type ``self.attr`` from annotated-parameter or constructor
        assignments in any method of the class."""
        for class_qual, (unit, _) in self._classes.items():
            symbols = self._symbols_for(unit)
            for info in self.functions.values():
                if info.class_qual != class_qual:
                    continue
                annotations = {
                    arg.arg: arg.annotation
                    for arg in (
                        info.node.args.args + info.node.args.kwonlyargs
                    )
                    if arg.annotation is not None
                }
                for stmt in ast.walk(info.node):
                    if not (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                    ):
                        continue
                    target = stmt.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    inferred = self._value_class(
                        unit, symbols, stmt.value, annotations
                    )
                    if inferred is not None:
                        self.attr_types[f"{class_qual}.{target.attr}"] = (
                            inferred
                        )

    def _value_class(
        self,
        unit: ModuleUnit,
        symbols: dict[str, str],
        value: ast.expr,
        annotations: dict[str, ast.expr | None],
    ) -> str | None:
        # ``self.x = param`` where ``param: SomeProjectClass``.
        if isinstance(value, ast.Name) and value.id in annotations:
            annotation = annotations[value.id]
            if isinstance(annotation, ast.Name):
                return self._class_named(unit, symbols, annotation.id)
            return None
        # ``self.x = SomeProjectClass(...)``.
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return self._class_named(unit, symbols, value.func.id)
        return None

    def _class_named(
        self, unit: ModuleUnit, symbols: dict[str, str], name: str
    ) -> str | None:
        local = f"{unit.module}.{name}"
        if local in self._classes:
            return local
        dotted = symbols.get(name)
        if dotted is not None and dotted in self._classes:
            return dotted
        return None

    # ------------------------------------------------------------------
    # edge resolution
    # ------------------------------------------------------------------
    def _resolve_edges(self, info: FunctionInfo) -> None:
        for call in ast.walk(info.node):
            if not isinstance(call, ast.Call):
                continue
            if self._is_run_in_executor(call):
                target = self._resolve_ref(info, call.args[1])
                if target is not None:
                    self.executor_edges.setdefault(info.qualname, set()).add(
                        target
                    )
                continue
            target = self.resolve_call(info, call)
            if target is not None:
                self.edges.setdefault(info.qualname, set()).add(target)
                self.call_lines.setdefault(
                    (info.qualname, target), call.lineno
                )

    def resolve_call(self, info: FunctionInfo, call: ast.Call) -> str | None:
        """The indexed qualname one call site dispatches to, if provable.

        ``run_in_executor`` dispatch resolves to ``None`` here — its
        target is an executor edge, not a same-thread call.
        """
        if self._is_run_in_executor(call):
            return None
        return self._resolve_ref(info, call.func)

    @staticmethod
    def _is_run_in_executor(call: ast.Call) -> bool:
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "run_in_executor"
            and len(call.args) >= 2
        )

    def _resolve_ref(self, info: FunctionInfo, ref: ast.expr) -> str | None:
        """A function reference expression → indexed qualname, or None."""
        unit = info.unit
        symbols = self._symbols_for(unit)
        module_aliases = self._aliases_for(unit)
        if isinstance(ref, ast.Name):
            local = f"{unit.module}.{ref.id}"
            if local in self.functions:
                return local
            if local in self._classes:
                init = f"{local}.__init__"
                return init if init in self.functions else None
            dotted = symbols.get(ref.id)
            if dotted is not None:
                if dotted in self.functions:
                    return dotted
                if dotted in self._classes:
                    init = f"{dotted}.__init__"
                    return init if init in self.functions else None
            return None
        if not isinstance(ref, ast.Attribute):
            return None
        value = ref.value
        # self.method(...)
        if (
            isinstance(value, ast.Name)
            and value.id == "self"
            and info.class_qual is not None
        ):
            qual = f"{info.class_qual}.{ref.attr}"
            if qual in self.functions:
                return qual
            # self.attr where attr is a typed object: fall through below.
            typed = self.attr_types.get(f"{info.class_qual}.{ref.attr}")
            if typed is not None:
                return None  # a bare object reference, not a call target
            return None
        # alias.func(...) through a module-object import.
        if isinstance(value, ast.Name):
            module = module_aliases.get(value.id)
            if module is not None:
                qual = f"{module}.{ref.attr}"
                if qual in self.functions:
                    return qual
            # ClassName.classmethod(...) through a symbol import or a
            # same-module class.
            class_qual = self._class_named(info.unit, symbols, value.id)
            if class_qual is not None:
                qual = f"{class_qual}.{ref.attr}"
                if qual in self.functions:
                    return qual
            return None
        # self.attr.method(...) where self.attr has an inferred class.
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and info.class_qual is not None
        ):
            typed = self.attr_types.get(f"{info.class_qual}.{value.attr}")
            if typed is not None:
                qual = f"{typed}.{ref.attr}"
                if qual in self.functions:
                    return qual
        return None

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def reachable(self, seed: str) -> set[str]:
        """Qualnames reachable from ``seed`` through ordinary edges
        (executor edges excluded; seed included)."""
        reached = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for target in self.edges.get(current, ()):
                if target not in reached:
                    reached.add(target)
                    frontier.append(target)
        return reached

    def chain(self, start: str, end: str) -> list[str]:
        """One shortest ``start → ... → end`` call path (for messages)."""
        if start == end:
            return [start]
        parents: dict[str, str] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            next_frontier: list[str] = []
            for current in frontier:
                for target in self.edges.get(current, ()):
                    if target in seen:
                        continue
                    seen.add(target)
                    parents[target] = current
                    if target == end:
                        path = [end]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(target)
            frontier = next_frontier
        return []


# ----------------------------------------------------------------------
# blocking-call detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlockingCall:
    """One syntactically-recognised thread-parking call."""

    line: int
    description: str


#: ``subprocess.<fn>`` entry points that wait on a child.
_SUBPROCESS_WAITS = {"run", "call", "check_call", "check_output"}

#: Socket operations that park the calling thread.
_SOCKET_OPS = {"recv", "recv_into", "accept", "sendall"}

#: Path/file read-write methods counted as sync file IO (wide profile).
_FILE_IO_METHODS = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
}


def _is_numeric(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    )


def _receiver_name(func: ast.Attribute) -> str | None:
    """Trailing attribute name of the receiver, for heuristics."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _awaited_calls(node: ast.AST) -> set[int]:
    """ids of Call nodes directly under an ``await`` (not blocking)."""
    awaited: set[int] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Call):
            awaited.add(id(sub.value))
    return awaited


def blocking_calls(
    node: ast.AST,
    *,
    file_io: bool = False,
    lock_acquire: bool = False,
    exclude_receivers: frozenset[str] = frozenset(),
) -> list[BlockingCall]:
    """Syntactic blocking calls in ``node``'s body.

    The base profile covers calls that park a thread indefinitely:
    ``time.sleep``, subprocess waits (``subprocess.run`` et al,
    ``.communicate``), thread/process ``.join`` (argument shapes that
    exclude ``str.join``), ``.wait``, queue ``.get`` (receiver named like
    a queue), and socket reads.  ``file_io=True`` adds ``open()`` and
    Path read/write methods; ``lock_acquire=True`` adds ``.acquire()``
    without a timeout and ``with self.<*lock*>:`` acquisitions — the
    wide profile for code that must never stall an event loop.

    ``exclude_receivers`` drops matches whose receiver attribute is one
    of the given names (RA006 uses it so ``self._cond.wait()`` under
    ``with self._cond:`` is not double-reported against its own lock).
    """
    found: list[BlockingCall] = []
    awaited = _awaited_calls(node)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.With, ast.AsyncWith)) and lock_acquire:
            for item in sub.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and "lock" in expr.attr.lower()
                ):
                    found.append(
                        BlockingCall(
                            sub.lineno,
                            f"acquires {expr.attr!r} (no timeout) via "
                            "'with'",
                        )
                    )
            continue
        if not isinstance(sub, ast.Call) or id(sub) in awaited:
            continue
        func = sub.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                found.append(BlockingCall(sub.lineno, "time.sleep(...)"))
            elif file_io and func.id == "open":
                found.append(BlockingCall(sub.lineno, "open(...) file IO"))
            continue
        if not isinstance(func, ast.Attribute):
            continue
        receiver = _receiver_name(func)
        if receiver in exclude_receivers:
            continue
        attr = func.attr
        if attr == "sleep" and receiver == "time":
            found.append(BlockingCall(sub.lineno, "time.sleep(...)"))
        elif attr in _SUBPROCESS_WAITS and receiver == "subprocess":
            found.append(
                BlockingCall(sub.lineno, f"subprocess.{attr}(...)")
            )
        elif attr == "communicate":
            found.append(
                BlockingCall(sub.lineno, ".communicate() subprocess wait")
            )
        elif attr == "join" and _is_process_join(sub):
            found.append(
                BlockingCall(sub.lineno, ".join(...) process/thread wait")
            )
        elif attr == "wait":
            found.append(BlockingCall(sub.lineno, ".wait(...)"))
        elif attr == "get" and receiver and "queue" in receiver.lower():
            found.append(BlockingCall(sub.lineno, "queue .get(...)"))
        elif attr in _SOCKET_OPS:
            found.append(BlockingCall(sub.lineno, f"socket .{attr}(...)"))
        elif file_io and attr == "open":
            found.append(BlockingCall(sub.lineno, ".open(...) file IO"))
        elif file_io and attr in _FILE_IO_METHODS:
            found.append(BlockingCall(sub.lineno, f".{attr}(...) file IO"))
        elif (
            lock_acquire
            and attr == "acquire"
            and not any(kw.arg == "timeout" for kw in sub.keywords)
            and len(sub.args) < 2
        ):
            found.append(
                BlockingCall(sub.lineno, ".acquire() without timeout")
            )
    return found


def _is_process_join(call: ast.Call) -> bool:
    """``.join`` shapes that are waits, not ``str.join``: no arguments,
    a numeric timeout, or a ``timeout=`` keyword."""
    if any(kw.arg == "timeout" for kw in call.keywords):
        return True
    if not call.args and not call.keywords:
        return True
    return len(call.args) == 1 and _is_numeric(call.args[0])
