"""Entry point: ``python -m repro.analysis [paths] [--strict]``.

Exit status: 0 when no *active* (non-suppressed) findings, or when run
without ``--strict`` (advisory mode); 1 when ``--strict`` and any active
finding exists.  Parse failures are active RA000 findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.core import Project, active, run_analysis
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import all_rules, rules_by_id


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific invariant linter (rules RA001-RA009)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PREFIX",
        help="path prefix to skip (repeatable); lets the gate cover "
        "tests/ without linting the deliberately-broken rule fixtures",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any non-suppressed finding exists "
        "(the CI gate mode)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all), "
        "e.g. RA001,RA004",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print suppressed findings with their justifications",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0

    try:
        rules = (
            rules_by_id([r.strip() for r in args.rules.split(",") if r.strip()])
            if args.rules
            else all_rules()
        )
    except ValueError as error:
        parser.error(str(error))

    project = Project.load(args.paths)
    if args.exclude:
        prefixes = tuple(prefix.rstrip("/") for prefix in args.exclude)
        project = Project(
            [
                unit
                for unit in project.units
                if not str(unit.path).startswith(prefixes)
            ]
        )
    if not project.units:
        print(f"no Python files under {args.paths}", file=sys.stderr)
        return 2
    findings = run_analysis(project, rules)

    if args.format == "json":
        render_json(findings, sys.stdout)
    else:
        render_text(findings, sys.stdout, verbose=args.verbose)

    if args.strict and active(findings):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
