"""AST-visitor core of :mod:`repro.analysis`.

Three layers:

* :class:`ModuleUnit` — one parsed source file: path, dotted module name
  (derived from the ``src/`` layout when present), AST, source lines, and
  the suppression comments found in it.
* :class:`Project` — the set of units under analysis plus the shared
  resolution machinery rules need: the project-internal import graph
  (for reachability questions), import-alias resolution, and module-level
  string-constant resolution (so ``counters.incr(_PEAK_KEY)`` and
  ``f"{_CHECKS_PREFIX}{size}"`` resolve to checkable names).
* :class:`Rule` + :func:`run_analysis` — the rule protocol and the driver
  that runs every rule, applies suppressions, and returns findings.

A finding is *active* unless a justified suppression comment covers its
line (see :mod:`repro.analysis.suppress`); ``--strict`` turns active
findings into a non-zero exit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.suppress import Suppression, parse_suppressions


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def render(self) -> str:
        mark = " [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}{mark}"

    def as_document(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


class Rule:
    """A named invariant check over a :class:`Project`.

    Subclasses set ``rule_id`` / ``title`` / ``rationale`` and implement
    :meth:`run`.  Findings are emitted *without* suppression state — the
    driver applies the unit's suppression comments afterwards, so rules
    never need to know the mechanism exists.
    """

    rule_id: str = "RA000"
    title: str = ""
    rationale: str = ""

    def run(self, project: "Project") -> list[Finding]:
        raise NotImplementedError

    def finding(self, unit: "ModuleUnit", line: int, message: str) -> Finding:
        return Finding(self.rule_id, str(unit.path), line, message)


@dataclass
class ModuleUnit:
    """One parsed source file under analysis."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: dict[int, list[Suppression]] = field(default_factory=dict)
    #: Parse failure, if the file could not be analysed at all.
    error: str | None = None

    @classmethod
    def load(cls, path: Path, root: Path | None = None) -> "ModuleUnit":
        source = path.read_text()
        module = module_name_for(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return cls(
                path=path,
                module=module,
                source=source,
                tree=ast.Module(body=[], type_ignores=[]),
                error=f"syntax error: {exc.msg} (line {exc.lineno})",
            )
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    def suppression_for(self, line: int, rule_id: str) -> Suppression | None:
        for suppression in self.suppressions.get(line, []):
            if suppression.rule_id == rule_id:
                return suppression
        return None


def module_name_for(path: Path) -> str:
    """Dotted module name from a file path.

    Uses the ``src/`` layout when the path contains a ``src`` component
    (``src/repro/core/stats.py`` → ``repro.core.stats``); otherwise the
    bare stem, which is what fixture files analysed in isolation get.
    ``__init__.py`` names the package itself.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    else:
        parts = [path.name]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def _iter_source_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


class Project:
    """The analysed module set plus shared cross-module resolution."""

    def __init__(self, units: Sequence[ModuleUnit]) -> None:
        self.units = list(units)
        self.by_module: dict[str, ModuleUnit] = {
            unit.module: unit for unit in self.units
        }
        self._constants: dict[str, dict[str, object]] = {}

    @classmethod
    def load(cls, paths: Sequence[str | Path]) -> "Project":
        files = _iter_source_files([Path(p) for p in paths])
        return cls([ModuleUnit.load(path) for path in files])

    # ------------------------------------------------------------------
    # project layout
    # ------------------------------------------------------------------
    def root(self) -> Path | None:
        """Nearest ancestor directory holding a ``pyproject.toml``."""
        for unit in self.units:
            probe = unit.path.resolve().parent
            while True:
                if (probe / "pyproject.toml").exists():
                    return probe
                if probe.parent == probe:
                    break
                probe = probe.parent
        return None

    # ------------------------------------------------------------------
    # imports and reachability
    # ------------------------------------------------------------------
    def imported_modules(self, unit: ModuleUnit) -> set[str]:
        """Project-internal modules ``unit`` imports, anywhere in its tree."""
        found: set[str] = set()
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._note_module(alias.name, found)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_from_base(unit, node)
                if base is None:
                    continue
                self._note_module(base, found)
                for alias in node.names:
                    self._note_module(f"{base}.{alias.name}", found)
        return found

    def _import_from_base(
        self, unit: ModuleUnit, node: ast.ImportFrom
    ) -> str | None:
        if node.level == 0:
            return node.module
        # Relative import: resolve against the unit's package.
        package = unit.module.rsplit(".", node.level)[0] if "." in unit.module else ""
        if node.module:
            return f"{package}.{node.module}" if package else node.module
        return package or None

    def _note_module(self, name: str | None, found: set[str]) -> None:
        if not name:
            return
        if name in self.by_module:
            found.add(name)
        # ``import x.y.z`` also initialises x and x.y.
        while "." in name:
            name = name.rsplit(".", 1)[0]
            if name in self.by_module:
                found.add(name)

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """Modules transitively imported from ``seeds`` (seeds included)."""
        frontier = [seed for seed in seeds if seed in self.by_module]
        reached = set(frontier)
        while frontier:
            unit = self.by_module[frontier.pop()]
            for imported in self.imported_modules(unit):
                if imported not in reached:
                    reached.add(imported)
                    frontier.append(imported)
        return reached

    def import_aliases(self, unit: ModuleUnit) -> dict[str, str]:
        """Local name → project module for module-object imports.

        Covers ``import repro.parallel.worker as w`` and
        ``from repro.parallel import worker as worker_module`` — the forms
        that put a *module object* in the unit's namespace, which rules
        need to resolve attribute references like ``worker_module.run_chunk``.
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self.by_module:
                        aliases[alias.asname or alias.name.split(".")[0]] = (
                            alias.name
                            if alias.asname
                            else alias.name.split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                base = self._import_from_base(unit, node)
                if base is None:
                    continue
                for alias in node.names:
                    dotted = f"{base}.{alias.name}"
                    if dotted in self.by_module:
                        aliases[alias.asname or alias.name] = dotted
        return aliases

    # ------------------------------------------------------------------
    # constant resolution
    # ------------------------------------------------------------------
    def module_constants(self, unit: ModuleUnit) -> dict[str, object]:
        """Module-level ``NAME = <literal>`` bindings (str and dict-of-str).

        Only simple, single-target assignments whose value is a string
        constant or a dict literal with constant keys and values — enough
        to resolve the counter-name constants the engine actually uses.
        """
        cached = self._constants.get(unit.module)
        if cached is not None:
            return cached
        constants: dict[str, object] = {}
        for stmt in unit.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                constants[target.id] = value.value
            elif isinstance(value, ast.Dict):
                entries: dict[str, str] = {}
                for key, item in zip(value.keys, value.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(item, ast.Constant)
                        and isinstance(item.value, str)
                    ):
                        entries[key.value] = item.value
                if entries:
                    constants[target.id] = entries
        self._constants[unit.module] = constants
        return constants

    def resolve_string(
        self, unit: ModuleUnit, node: ast.expr
    ) -> tuple[str, str] | None:
        """Resolve an expression to ``("exact", s)`` or ``("prefix", s)``.

        * string constant → exact;
        * ``NAME`` bound to a module-level string constant → exact;
        * ``NAME[<str>]`` into a module-level dict constant → exact;
        * f-string → the concatenation of its leading resolvable pieces as
          a prefix (exact if every piece resolves);
        * anything else → None (dynamic; rules skip it).
        """
        constants = self.module_constants(unit)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return ("exact", node.value)
        if isinstance(node, ast.Name):
            value = constants.get(node.id)
            if isinstance(value, str):
                return ("exact", value)
            return None
        if isinstance(node, ast.Subscript):
            base = node.value
            key = node.slice
            if (
                isinstance(base, ast.Name)
                and isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            ):
                table = constants.get(base.id)
                if isinstance(table, dict):
                    resolved = table.get(key.value)
                    if isinstance(resolved, str):
                        return ("exact", resolved)
            return None
        if isinstance(node, ast.JoinedStr):
            prefix = ""
            for piece in node.values:
                if isinstance(piece, ast.Constant) and isinstance(
                    piece.value, str
                ):
                    prefix += piece.value
                    continue
                if isinstance(piece, ast.FormattedValue):
                    inner = self.resolve_string(unit, piece.value)
                    if inner is not None and inner[0] == "exact":
                        prefix += inner[1]
                        continue
                return ("prefix", prefix) if prefix else None
            return ("exact", prefix)
        return None


def run_analysis(
    project: Project, rules: Sequence[Rule]
) -> list[Finding]:
    """Run every rule, apply suppressions, and return all findings.

    A justified suppression comment (``# ra: RA003 -- why``) on a
    finding's line marks it suppressed.  A suppression *without* a
    justification does not suppress — the finding stays active with a
    note, so lint-clean can never be bought with a bare mute.  A
    suppression for a rule that *ran* but produced no finding on its
    line is stale — the code it once excused has moved or been fixed —
    and surfaces as an active finding of that rule, so dead mutes cannot
    accumulate and silently swallow a future regression on that line.
    (Suppressions for rules not in this run are left alone: their
    staleness is unknowable.)  Unparseable files surface as active
    ``RA000`` findings.
    """
    findings: list[Finding] = []
    for unit in project.units:
        if unit.error is not None:
            findings.append(
                Finding("RA000", str(unit.path), 1, unit.error)
            )
    matched: set[tuple[str, int, str]] = set()
    for rule in rules:
        for finding in rule.run(project):
            unit = next(
                (u for u in project.units if str(u.path) == finding.path),
                None,
            )
            if unit is not None:
                suppression = unit.suppression_for(finding.line, finding.rule)
                if suppression is not None:
                    matched.add((finding.path, finding.line, finding.rule))
                    if suppression.justification:
                        finding = replace(
                            finding,
                            suppressed=True,
                            justification=suppression.justification,
                        )
                    else:
                        finding = replace(
                            finding,
                            message=finding.message
                            + " (suppression ignored: missing justification;"
                            " use '# ra: "
                            + finding.rule
                            + " -- <why>')",
                        )
            findings.append(finding)
    ran = {rule.rule_id for rule in rules}
    for unit in project.units:
        for line, suppressions in unit.suppressions.items():
            for suppression in suppressions:
                if suppression.rule_id not in ran:
                    continue
                if (str(unit.path), line, suppression.rule_id) in matched:
                    continue
                findings.append(
                    Finding(
                        suppression.rule_id,
                        str(unit.path),
                        line,
                        f"stale suppression: {suppression.rule_id} ran "
                        "but produced no finding on this line; remove "
                        "the comment",
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def active(findings: Iterable[Finding]) -> list[Finding]:
    """The findings that count against ``--strict`` (not suppressed)."""
    return [finding for finding in findings if not finding.suppressed]
