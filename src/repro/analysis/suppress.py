"""Per-rule suppression comments for :mod:`repro.analysis`.

Syntax (one comment can carry several, separated by ``;``)::

    risky_line()  # ra: RA003 -- worker-resident problem, installed once

    # ra: RA004 -- this IS the atomic-replace primitive
    with open(tmp, "w") as handle:

A suppression names exactly one rule ID and *must* carry a justification
after ``--`` — the driver refuses to honour a bare mute (the finding stays
active, annotated).  A comment on its own line applies to the next *code*
line (intervening comment/blank lines are skipped, so a justification may
span several comment lines); a trailing comment applies to its own line.  Suppressions are deliberately
line-scoped: a module- or file-wide mute would defeat the point of
machine-checked invariants.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: ``# ra: <RULE-ID> -- justification`` (justification optional at parse
#: time; the driver penalises its absence).
_PATTERN = re.compile(
    r"ra:\s*(?P<rule>RA\d{3})\s*(?:--\s*(?P<why>[^;]*))?"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression: the rule it mutes and why."""

    rule_id: str
    justification: str
    line: int


def parse_suppressions(source: str) -> dict[int, list[Suppression]]:
    """Map line number → suppressions applying to that line.

    Uses :mod:`tokenize` rather than a regex over raw lines so that
    ``# ra: ...`` text inside string literals is never misread as a
    suppression.
    """
    by_line: dict[int, list[Suppression]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return by_line
    lines = source.splitlines()
    # Lines carrying actual code, so an own-line suppression can skip past
    # the rest of its comment block (and blank lines) to the code it guards.
    non_code = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
    code_lines = sorted(
        {token.start[0] for token in tokens if token.type not in non_code}
    )
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment_line = token.start[0]
        found = [
            Suppression(
                rule_id=match.group("rule"),
                justification=(match.group("why") or "").strip(),
                line=comment_line,
            )
            for match in _PATTERN.finditer(token.string)
        ]
        if not found:
            continue
        # A comment alone on its line covers the next code line instead.
        text_before = lines[comment_line - 1][: token.start[1]].strip()
        if text_before:
            target = comment_line
        else:
            target = next(
                (line for line in code_lines if line > comment_line), -1
            )
            if target < 0:
                continue
        by_line.setdefault(target, []).extend(found)
    return by_line
