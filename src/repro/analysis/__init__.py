"""``repro.analysis`` — project-specific static analysis.

The paper's correctness argument rests on predicate invariants
(generalization and rollup properties); the engine mirrors them as *code*
invariants — bit-identical frequency sets under threads/processes/faults,
seeded-only randomness, the closed dotted counter namespace, atomic
durability writes, documented CLI contracts.  The chaos/differential
suites enforce those contracts at test time, expensively; this package
enforces their statically-checkable shadow at lint time:

========  ============================================================
RA001     worker-reachable code must be deterministic (no wall clock,
          OS entropy, unseeded RNGs, or set-order-dependent returns)
RA002     counter/span name literals must match the registry exported
          by :mod:`repro.obs.registry`
RA003     pool-dispatched functions must not touch module-level mutable
          state (the plan-in-parent contract)
RA004     checkpoint/bench/export writes must route through
          :mod:`repro.resilience.atomicio`
RA005     argparse flags in the CLI surface must appear in README or
          DESIGN
RA006     the static lock-acquisition graph (service/parallel/obs) must
          be acyclic and no lock may be held across a blocking call
RA007     coroutines in the asyncio server must not reach blocking
          calls (sleep, sync IO, subprocess waits, un-timed acquire)
RA008     SharedMemory/heartbeat/tempfile acquisitions must reach
          cleanup on every exception path
RA009     atomic publishes must order write → fsync → rename; a rename
          not dominated by fsync is a zero-fill crash window
========  ============================================================

RA006-RA009 share the interprocedural call graph in
:mod:`repro.analysis.callgraph`; the static lock graph is additionally
cross-checked at test time by the runtime recorder in
:mod:`repro.analysis.runtime` (DESIGN.md §13).

Run it::

    python -m repro.analysis src/ --strict

Suppress one finding, with a mandatory justification::

    risky()  # ra: RA003 -- worker-resident problem, installed once

See DESIGN.md §8 for the rule ↔ contract mapping.
"""

from __future__ import annotations

from repro.analysis.core import (
    Finding,
    ModuleUnit,
    Project,
    Rule,
    active,
    run_analysis,
)
from repro.analysis.rules import all_rules, rules_by_id

__all__ = [
    "Finding",
    "ModuleUnit",
    "Project",
    "Rule",
    "active",
    "all_rules",
    "rules_by_id",
    "run_analysis",
]


def analyze_paths(paths, rules=None) -> list[Finding]:
    """Convenience one-shot: load ``paths``, run ``rules`` (default all)."""
    project = Project.load(list(paths))
    return run_analysis(project, rules if rules is not None else all_rules())
