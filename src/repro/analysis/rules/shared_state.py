"""RA003 — module-level mutable state in pool-dispatched functions.

The plan-in-parent contract (DESIGN.md §6) is what makes ``--workers N``
trustworthy: the parent plans every job and merges every delta; workers
execute plans into *private* state.  A worker function that reads or
writes module-level mutable state re-introduces scheduling dependence —
under threads it is a data race, under processes it is silent divergence
between parent and worker copies of the module.

This rule finds every function dispatched to a pool — passed to
``<executor>.submit(fn, ...)`` or installed as a pool ``initializer=`` —
resolving through project-internal import aliases (so
``executor.submit(worker_module.run_chunk, ...)`` marks ``run_chunk`` in
its defining module).  Inside each dispatched function it flags, once per
(function, name) pair:

* ``global NAME`` rebinding of a module-level name;
* reads of module-level *mutable* bindings — names assigned a
  dict/list/set (display, comprehension, or constructor call) at module
  level, or rebound via ``global`` anywhere in the module.

Reads of module-level constants, functions, classes, and imports are
fine and ignored.  The sanctioned exception — the worker-resident problem
installed once by the pool initializer — is exactly what the justified
suppression comment is for (see ``repro/parallel/worker.py``).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleUnit, Project, Rule


def _mutable_module_bindings(tree: ast.Module) -> set[str]:
    """Names bound to mutable containers at module level, or rebound
    via ``global`` anywhere in the module."""
    mutable: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            if targets and _is_mutable_value(stmt.value):
                mutable.update(t.id for t in targets)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if stmt.value is not None and _is_mutable_value(stmt.value):
                mutable.add(stmt.target.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            mutable.update(node.names)
    return mutable


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in (
            "dict",
            "list",
            "set",
            "OrderedDict",
            "defaultdict",
            "deque",
        )
    return False


def _dispatch_targets(
    project: Project, unit: ModuleUnit
) -> set[tuple[str, str]]:
    """(module, function) pairs this unit dispatches to a pool."""
    aliases = project.import_aliases(unit)
    targets: set[tuple[str, str]] = set()

    def resolve(expr: ast.expr) -> tuple[str, str] | None:
        if isinstance(expr, ast.Name):
            return (unit.module, expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            module = aliases.get(expr.value.id)
            if module is not None:
                return (module, expr.attr)
        return None

    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            resolved = resolve(node.args[0])
            if resolved is not None:
                targets.add(resolved)
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                resolved = resolve(keyword.value)
                if resolved is not None:
                    targets.add(resolved)
    return targets


class SharedStateRule(Rule):
    rule_id = "RA003"
    title = "pool-dispatched functions must not touch module-level mutables"
    rationale = (
        "the determinism contract plans in the parent and executes in "
        "workers against private state; shared module state is a race "
        "under threads and silent divergence under processes"
    )

    def run(self, project: Project) -> list[Finding]:
        dispatched: set[tuple[str, str]] = set()
        for unit in project.units:
            dispatched.update(_dispatch_targets(project, unit))
        findings: list[Finding] = []
        for module, function in sorted(dispatched):
            unit = project.by_module.get(module)
            if unit is None:
                continue
            findings.extend(self._check_function(unit, function))
        return findings

    def _check_function(
        self, unit: ModuleUnit, function: str
    ) -> list[Finding]:
        definition = None
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == function
            ):
                definition = node
                break
        if definition is None:
            return []
        mutable = _mutable_module_bindings(unit.tree)
        if not mutable:
            return []
        local = _local_names(definition)
        findings: list[Finding] = []
        seen: set[tuple[str, str]] = set()  # (name, kind), once per function
        for node in ast.walk(definition):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if ("w:" + name, function) not in seen:
                        seen.add(("w:" + name, function))
                        findings.append(
                            self.finding(
                                unit,
                                node.lineno,
                                f"pool-dispatched {function}() rebinds "
                                f"module global {name!r}; workers must "
                                "write only their private result/delta",
                            )
                        )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable
                and node.id not in local
            ):
                if ("r:" + node.id, function) not in seen:
                    seen.add(("r:" + node.id, function))
                    findings.append(
                        self.finding(
                            unit,
                            node.lineno,
                            f"pool-dispatched {function}() reads "
                            f"module-level mutable {node.id!r} outside "
                            "the plan-in-parent contract",
                        )
                    )
        return findings


def _local_names(definition: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter and locally-assigned names (shadowing module state)."""
    names = {arg.arg for arg in definition.args.args}
    names.update(arg.arg for arg in definition.args.kwonlyargs)
    if definition.args.vararg:
        names.add(definition.args.vararg.arg)
    if definition.args.kwarg:
        names.add(definition.args.kwarg.arg)
    globals_declared: set[str] = set()
    for node in ast.walk(definition):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
    for node in ast.walk(definition):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, ast.Store
        ):
            if node.id not in globals_declared:
                names.add(node.id)
    return names
