"""RA001 — determinism of worker-reachable code.

The parallel/resilience determinism contract (DESIGN.md §6–§7) promises
bit-identical frequency sets and ``frequency.*`` counters no matter how
chunks are scheduled, retried, or degraded.  That only holds if the code
that executes *inside workers* is a pure function of its inputs plus
seeded state.  This rule walks every module transitively imported from
the worker entry points — :mod:`repro.parallel.worker` and
:mod:`repro.resilience.faults` — and flags the classic entropy leaks:

* wall-clock reads: ``time.time(...)``, ``datetime.now/utcnow/today``
  (monotonic ``time.perf_counter`` / ``time.sleep`` stay legal);
* OS randomness: ``os.urandom(...)``, ``uuid.uuid4()``;
* unseeded RNGs: module-level ``random.random()`` & friends,
  ``random.Random()`` / ``numpy.random.default_rng()`` with no seed
  argument (seeded construction is the sanctioned pattern — see
  :class:`repro.resilience.faults.FaultPlan`);
* set-order dependence: returning a ``set`` display/comprehension, or
  materialising one through ``list(...)`` / ``tuple(...)``, whose
  iteration order is hash-dependent and would leak into results.

When the analysed project contains neither seed module (e.g. linting a
fixture directory in isolation), every module is treated as
worker-reachable so the rule stays testable standalone.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleUnit, Project, Rule

#: Reachability roots: the code that runs inside pool workers.
SEED_MODULES = ("repro.parallel.worker", "repro.resilience.faults")

#: ``module attr`` calls that read wall-clock or OS entropy.
_BANNED_ATTR_CALLS = {
    ("time", "time"),
    ("os", "urandom"),
    ("uuid", "uuid4"),
    ("uuid", "uuid1"),
}

#: ``datetime``-ish receivers whose now/today/utcnow is wall-clock.
_CLOCK_ATTRS = {"now", "utcnow", "today"}

#: Functions of :mod:`random`'s hidden global RNG.
_GLOBAL_RNG_FUNCS = {
    "random",
    "randint",
    "randrange",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "getrandbits",
}


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expression(node: ast.expr) -> bool:
    return isinstance(node, (ast.Set, ast.SetComp)) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class DeterminismRule(Rule):
    rule_id = "RA001"
    title = "worker-reachable code must be deterministic"
    rationale = (
        "frequency sets and frequency.* counters are contractually "
        "bit-identical across serial/threads/processes and under faults; "
        "wall-clock, OS entropy, unseeded RNGs, and set iteration order "
        "in worker-reachable modules break that silently"
    )

    def __init__(self, seeds: tuple[str, ...] = SEED_MODULES) -> None:
        self.seeds = seeds

    def run(self, project: Project) -> list[Finding]:
        in_scope = project.reachable_from(self.seeds)
        units = (
            [project.by_module[name] for name in sorted(in_scope)]
            if in_scope
            else project.units  # standalone mode: no seeds present
        )
        findings: list[Finding] = []
        for unit in units:
            findings.extend(self._check_unit(unit))
        return findings

    def _check_unit(self, unit: ModuleUnit) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(unit, node))
            elif isinstance(node, ast.Return) and node.value is not None:
                if _is_set_expression(node.value):
                    findings.append(
                        self.finding(
                            unit,
                            node.lineno,
                            "returns a set, whose iteration order is "
                            "hash-dependent; return a sorted sequence "
                            "instead",
                        )
                    )
        return findings

    def _check_call(self, unit: ModuleUnit, call: ast.Call) -> list[Finding]:
        findings: list[Finding] = []
        dotted = _dotted(call.func)
        if dotted is not None:
            parts = tuple(dotted.split("."))
            head, tail = parts[0], parts[-1]
            if (head, tail) in _BANNED_ATTR_CALLS and len(parts) == 2:
                findings.append(
                    self.finding(
                        unit,
                        call.lineno,
                        f"call to {dotted}() is non-deterministic in "
                        "worker-reachable code",
                    )
                )
            elif (
                tail in _CLOCK_ATTRS
                and len(parts) >= 2
                and parts[-2] in ("datetime", "date")
            ):
                findings.append(
                    self.finding(
                        unit,
                        call.lineno,
                        f"wall-clock read {dotted}() in worker-reachable "
                        "code; results must not depend on when a chunk ran",
                    )
                )
            elif (
                len(parts) == 2
                and head == "random"
                and tail in _GLOBAL_RNG_FUNCS
            ):
                findings.append(
                    self.finding(
                        unit,
                        call.lineno,
                        f"{dotted}() draws from the unseeded global RNG; "
                        "use random.Random(seed) so replays are exact",
                    )
                )
            elif (
                tail in ("Random", "default_rng")
                and not call.args
                and not call.keywords
            ):
                findings.append(
                    self.finding(
                        unit,
                        call.lineno,
                        f"{dotted}() constructed without a seed in "
                        "worker-reachable code",
                    )
                )
        elif isinstance(call.func, ast.Name) and call.func.id in (
            "list",
            "tuple",
            "sorted",
        ):
            # list(set(...)) / tuple({...}) fix the hash order into a
            # sequence; sorted(...) is the deterministic spelling.
            if (
                call.func.id != "sorted"
                and call.args
                and _is_set_expression(call.args[0])
            ):
                findings.append(
                    self.finding(
                        unit,
                        call.lineno,
                        f"{call.func.id}() over a set freezes "
                        "hash-dependent iteration order; use sorted(...)",
                    )
                )
        return findings
