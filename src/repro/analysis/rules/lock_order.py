"""RA006 — static lock-order and lock-hold analysis.

The service stack is one scheduler thread, one asyncio shim, and N job
subprocesses coordinating through a handful of ``threading`` locks.  Two
statically-checkable ways that goes wrong:

* **ordering cycles** — thread A holds lock X and wants Y while thread B
  holds Y and wants X: a deadlock that no test reliably reproduces.  The
  rule extracts every cross-lock nesting (``with self._a: ... with
  self._b:`` — directly or through any provable call chain) into a
  lock-acquisition graph and reports cycles.  A self-edge on a
  non-reentrant ``Lock`` (reacquired while held) is the one-lock special
  case of the same bug; reentrant ``RLock`` self-edges are legal.
* **a lock held across a blocking call** — a ``.join``/``.wait`` on a
  subprocess, a queue ``get``, socket IO, or ``time.sleep`` inside a
  ``with self._lock:`` body stalls every other thread that needs the
  lock for as long as the wait takes (the manager's API calls all take
  the same lock the scheduler holds).  Reachability runs through the
  interprocedural call graph, so the join three calls down from the
  ``with`` body is still found.

File IO and ``os.fsync`` are deliberately *not* in the blocking set:
the write-ahead contract (DESIGN.md §12) commits the WAL line under the
manager lock on purpose — bounded-latency IO under a lock is a design
decision, unbounded waits are a bug.

Scope: ``repro.service.manager``, ``repro.parallel``, ``repro.obs``
(the lock-owning layers); all modules when none of those are present
(fixtures linted standalone).

:func:`analyze_lock_order` exposes the lock table and acquisition-order
edges so the *runtime* lock-order recorder
(:mod:`repro.analysis.runtime`) can cross-check observed acquisition
orders against this static graph — see DESIGN.md §13.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    blocking_calls,
)
from repro.analysis.core import Finding, ModuleUnit, Project, Rule

#: Module families that own thread coordination.
SCOPE_PREFIXES = ("repro.service.manager", "repro.parallel", "repro.obs")

#: ``threading`` factory names that create a lock-like object.
LOCK_FACTORIES = ("Lock", "RLock", "Condition")


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock: identity, kind, and creation site."""

    qual: str  #: ``module.Class.attr``
    attr: str  #: the ``self.<attr>`` name
    kind: str  #: ``Lock`` | ``RLock`` | ``Condition``
    path: str
    line: int  #: line of the factory call (== runtime creation site)


@dataclass(frozen=True)
class LockEdge:
    """``held`` acquired first, ``acquired`` taken while holding it."""

    held: str
    acquired: str
    path: str
    line: int


@dataclass
class LockAnalysis:
    """The static lock graph plus hold-across-blocking violations."""

    locks: dict[str, LockInfo] = field(default_factory=dict)
    edges: list[LockEdge] = field(default_factory=list)
    #: (unit, line, message) for blocking calls under a held lock.
    held_blocking: list[tuple[ModuleUnit, int, str]] = field(
        default_factory=list
    )

    def edge_pairs(self) -> set[tuple[str, str]]:
        return {(edge.held, edge.acquired) for edge in self.edges}


def _scoped_units(
    project: Project, prefixes: tuple[str, ...]
) -> list[ModuleUnit]:
    scoped = [
        unit for unit in project.units if unit.module.startswith(prefixes)
    ]
    return scoped if scoped else list(project.units)


def _lock_factory_kind(unit_symbols: dict[str, str], call: ast.Call) -> str | None:
    """``Lock`` / ``RLock`` / ``Condition`` when the call is a
    ``threading`` lock factory, else None."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
        and func.attr in LOCK_FACTORIES
    ):
        return func.attr
    if isinstance(func, ast.Name) and func.id in LOCK_FACTORIES:
        if unit_symbols.get(func.id) == f"threading.{func.id}":
            return func.id
    return None


def _unit_symbols(unit: ModuleUnit) -> dict[str, str]:
    symbols: dict[str, str] = {}
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                symbols[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return symbols


def discover_locks(units: list[ModuleUnit]) -> dict[str, LockInfo]:
    """``self.<attr> = threading.Lock()``-style creations in ``units``."""
    locks: dict[str, LockInfo] = {}
    for unit in units:
        symbols = _unit_symbols(unit)
        for stmt in unit.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            class_qual = f"{unit.module}.{stmt.name}"
            for node in ast.walk(stmt):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                kind = _lock_factory_kind(symbols, node.value)
                if kind is None:
                    continue
                qual = f"{class_qual}.{target.attr}"
                locks[qual] = LockInfo(
                    qual=qual,
                    attr=target.attr,
                    kind=kind,
                    path=str(unit.path),
                    line=node.value.lineno,
                )
    return locks


def _lock_for(
    locks: dict[str, LockInfo], info: FunctionInfo, expr: ast.expr
) -> LockInfo | None:
    """The discovered lock a ``with``-item context expression names."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and info.class_qual is not None
    ):
        return locks.get(f"{info.class_qual}.{expr.attr}")
    return None


def _direct_acquisitions(
    locks: dict[str, LockInfo], info: FunctionInfo
) -> list[tuple[LockInfo, ast.With | ast.AsyncWith]]:
    found = []
    for node in ast.walk(info.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                lock = _lock_for(locks, info, item.context_expr)
                if lock is not None:
                    found.append((lock, node))
    return found


def _short(qual: str) -> str:
    """``module.Class.attr`` → ``Class.attr`` for messages."""
    return ".".join(qual.split(".")[-2:])


def analyze_lock_order(
    project: Project, prefixes: tuple[str, ...] = SCOPE_PREFIXES
) -> LockAnalysis:
    """Build the static lock graph and the held-across-blocking list.

    Edges come from two shapes: a ``with self._b:`` lexically nested in
    a ``with self._a:`` body, and a call under ``with self._a:`` whose
    provable callees (transitively) acquire ``self._b``.  Blocking calls
    are likewise collected both directly from the held body and from
    every function reachable through calls made while the lock is held.
    """
    units = _scoped_units(project, prefixes)
    unit_set = {id(unit) for unit in units}
    analysis = LockAnalysis(locks=discover_locks(units))
    if not analysis.locks:
        return analysis
    graph = CallGraph(project)

    # Per-function direct lock acquisitions, for transitive edges.
    acquired_in: dict[str, list[LockInfo]] = {}
    for qualname, info in graph.functions.items():
        direct = _direct_acquisitions(analysis.locks, info)
        if direct:
            acquired_in[qualname] = [lock for lock, _ in direct]

    seen_edges: set[tuple[str, str, str, int]] = set()
    seen_blocking: set[tuple[str, int, str]] = set()

    def add_edge(held: LockInfo, acquired: LockInfo, path: str, line: int):
        key = (held.qual, acquired.qual, path, line)
        if key not in seen_edges:
            seen_edges.add(key)
            analysis.edges.append(
                LockEdge(held.qual, acquired.qual, path, line)
            )

    def add_blocking(unit: ModuleUnit, line: int, message: str) -> None:
        key = (str(unit.path), line, message)
        if key not in seen_blocking:
            seen_blocking.add(key)
            analysis.held_blocking.append((unit, line, message))

    for info in graph.functions.values():
        if id(info.unit) not in unit_set:
            continue
        for held, with_node in _direct_acquisitions(analysis.locks, info):
            path = str(info.unit.path)
            # (a) lexically nested acquisitions → direct order edges.
            for nested in ast.walk(with_node):
                if nested is with_node or not isinstance(
                    nested, (ast.With, ast.AsyncWith)
                ):
                    continue
                for item in nested.items:
                    lock = _lock_for(analysis.locks, info, item.context_expr)
                    if lock is not None:
                        add_edge(held, lock, path, nested.lineno)
            # (b) blocking calls directly in the held body.
            for block in blocking_calls(
                with_node, exclude_receivers=frozenset({held.attr})
            ):
                add_blocking(
                    info.unit,
                    block.line,
                    f"{_short(held.qual)} ({held.kind}) held across "
                    f"{block.description}",
                )
            # (c) calls made while holding the lock: transitive lock
            # acquisitions and transitive blocking in provable callees.
            for call in ast.walk(with_node):
                if not isinstance(call, ast.Call):
                    continue
                target = graph.resolve_call(info, call)
                if target is None:
                    continue
                for reached in graph.reachable(target):
                    for lock in acquired_in.get(reached, ()):
                        add_edge(held, lock, path, call.lineno)
                    reached_info = graph.functions.get(reached)
                    if reached_info is None:
                        continue
                    blocks = blocking_calls(reached_info.node)
                    if blocks:
                        route = " -> ".join(
                            _short(q) for q in graph.chain(target, reached)
                        )
                        add_blocking(
                            info.unit,
                            call.lineno,
                            f"{_short(held.qual)} ({held.kind}) held "
                            f"across {blocks[0].description} in {route} "
                            f"(line {blocks[0].line})",
                        )
    return analysis


def _cycles(pairs: set[tuple[str, str]]) -> list[list[str]]:
    """Distinct multi-node cycles in the lock-order graph, each as a
    closed path ``[a, b, ..., a]`` (self-edges handled separately)."""
    adjacency: dict[str, set[str]] = {}
    for held, acquired in pairs:
        if held != acquired:
            adjacency.setdefault(held, set()).add(acquired)
    cycles: list[list[str]] = []
    reported: set[frozenset[str]] = set()
    for held, acquired in sorted(pairs):
        if held == acquired:
            continue
        # A cycle through this edge exists iff ``held`` is reachable
        # back from ``acquired``.
        parents: dict[str, str] = {}
        frontier = [acquired]
        seen = {acquired}
        found = False
        while frontier and not found:
            current = frontier.pop()
            for nxt in adjacency.get(current, ()):
                if nxt in seen:
                    continue
                parents[nxt] = current
                if nxt == held:
                    found = True
                    break
                seen.add(nxt)
                frontier.append(nxt)
        if not found:
            continue
        # Walk parents held → ... → acquired, reverse, close the loop:
        # the cycle reads held → acquired → ... → held.
        walk = [held]
        while walk[-1] != acquired:
            walk.append(parents[walk[-1]])
        cycle = [held, *reversed(walk)]
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        cycles.append(cycle)
    return cycles


class LockOrderRule(Rule):
    rule_id = "RA006"
    title = "lock graph must be acyclic and never held across blocking"
    rationale = (
        "a cycle in the static lock-acquisition graph is a latent "
        "deadlock, and a lock held across a subprocess/queue/socket "
        "wait stalls every thread contending for it — both survive "
        "code review far more often than they survive this graph walk"
    )

    def __init__(self, prefixes: tuple[str, ...] = SCOPE_PREFIXES) -> None:
        self.prefixes = prefixes

    def run(self, project: Project) -> list[Finding]:
        analysis = analyze_lock_order(project, self.prefixes)
        units_by_path = {str(unit.path): unit for unit in project.units}
        findings: list[Finding] = []
        for unit, line, message in analysis.held_blocking:
            findings.append(self.finding(unit, line, message))
        pairs = analysis.edge_pairs()
        for edge in analysis.edges:
            if edge.held != edge.acquired:
                continue
            lock = analysis.locks[edge.held]
            if lock.kind != "Lock":
                continue  # RLock/Condition reacquisition is reentrant
            findings.append(
                self.finding(
                    units_by_path[edge.path],
                    edge.line,
                    f"non-reentrant Lock {_short(lock.qual)} reacquired "
                    "while already held (self-deadlock)",
                )
            )
        edge_sites = {
            (edge.held, edge.acquired): edge for edge in analysis.edges
        }
        for cycle in _cycles(pairs):
            edge = edge_sites[(cycle[0], cycle[1])]
            route = " -> ".join(_short(qual) for qual in cycle)
            findings.append(
                self.finding(
                    units_by_path[edge.path],
                    edge.line,
                    f"lock-order cycle (potential deadlock): {route}",
                )
            )
        return findings
