"""RA007 — no blocking calls reachable from event-loop coroutines.

The service front end (:mod:`repro.service.server`) is a single-threaded
asyncio loop.  One synchronous stall — a file write, ``time.sleep``, a
``subprocess.run``, or a lock ``.acquire()`` contending with the
scheduler thread — freezes *every* connected client for the duration,
including health checks, which is how a busy manager turns into a
flapping deployment.

The rule scans every coroutine in scope with the *wide* blocking
profile (base thread-parking calls plus sync file IO plus un-timed lock
acquisition), then follows each provably-resolved call into synchronous
callees through the interprocedural call graph and applies the same
profile there, reporting the call site in the coroutine with the chain
to the offending line.  ``await``-ed expressions and
``loop.run_in_executor(...)`` dispatch are exempt by construction — the
executor is exactly the sanctioned escape hatch, and routing manager
calls through it is the expected fix.

Scope: ``repro.service.server``; all modules when absent (fixtures).
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, blocking_calls
from repro.analysis.core import Finding, ModuleUnit, Project, Rule

#: The event-loop module family.
SCOPE_PREFIXES = ("repro.service.server",)


def _short(qual: str) -> str:
    return ".".join(qual.split(".")[-2:])


class AsyncSafetyRule(Rule):
    rule_id = "RA007"
    title = "coroutines must not reach blocking calls"
    rationale = (
        "one synchronous stall inside the asyncio server freezes every "
        "client and health probe at once; blocking work belongs behind "
        "run_in_executor, never on the event loop"
    )

    def __init__(self, prefixes: tuple[str, ...] = SCOPE_PREFIXES) -> None:
        self.prefixes = prefixes

    def _in_scope(self, project: Project) -> list[ModuleUnit]:
        scoped = [
            unit
            for unit in project.units
            if unit.module.startswith(self.prefixes)
        ]
        return scoped if scoped else list(project.units)

    def run(self, project: Project) -> list[Finding]:
        units = {id(unit) for unit in self._in_scope(project)}
        graph = CallGraph(project)
        findings: list[Finding] = []
        seen: set[tuple[str, int, str]] = set()

        def add(unit: ModuleUnit, line: int, message: str) -> None:
            key = (str(unit.path), line, message)
            if key not in seen:
                seen.add(key)
                findings.append(self.finding(unit, line, message))

        for info in graph.functions.values():
            if not info.is_async or id(info.unit) not in units:
                continue
            # Direct blocking in the coroutine body (await-ed calls are
            # excluded by the scanner).
            for block in blocking_calls(
                info.node, file_io=True, lock_acquire=True
            ):
                add(
                    info.unit,
                    block.line,
                    f"coroutine {_short(info.qualname)} performs "
                    f"{block.description} on the event loop",
                )
            # Blocking reachable through provable synchronous callees.
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                target = graph.resolve_call(info, call)
                if target is None:
                    continue
                target_info = graph.functions.get(target)
                if target_info is None or target_info.is_async:
                    continue
                for reached in sorted(graph.reachable(target)):
                    reached_info = graph.functions.get(reached)
                    if reached_info is None or reached_info.is_async:
                        continue
                    blocks = blocking_calls(
                        reached_info.node, file_io=True, lock_acquire=True
                    )
                    if not blocks:
                        continue
                    route = " -> ".join(
                        _short(qual) for qual in graph.chain(target, reached)
                    )
                    add(
                        info.unit,
                        call.lineno,
                        f"coroutine {_short(info.qualname)} reaches "
                        f"{blocks[0].description} via {route} (line "
                        f"{blocks[0].line}); route it through "
                        "run_in_executor",
                    )
        return findings
