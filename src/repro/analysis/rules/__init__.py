"""Rule registry for :mod:`repro.analysis`.

Each rule lives in its own module; :func:`all_rules` instantiates the
full set in rule-ID order, and :func:`rules_by_id` selects a subset for
``--rules RA001,RA004`` style invocations.
"""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.async_safety import AsyncSafetyRule
from repro.analysis.rules.atomic_io import AtomicIORule
from repro.analysis.rules.atomic_protocol import AtomicProtocolRule
from repro.analysis.rules.cli_docs import CliDocRule
from repro.analysis.rules.counter_names import CounterRegistryRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.resource_lifecycle import ResourceLifecycleRule
from repro.analysis.rules.shared_state import SharedStateRule

__all__ = [
    "AsyncSafetyRule",
    "AtomicIORule",
    "AtomicProtocolRule",
    "CliDocRule",
    "CounterRegistryRule",
    "DeterminismRule",
    "LockOrderRule",
    "ResourceLifecycleRule",
    "SharedStateRule",
    "all_rules",
    "rules_by_id",
]

_RULE_CLASSES = (
    DeterminismRule,
    CounterRegistryRule,
    SharedStateRule,
    AtomicIORule,
    CliDocRule,
    LockOrderRule,
    AsyncSafetyRule,
    ResourceLifecycleRule,
    AtomicProtocolRule,
)


def all_rules() -> list[Rule]:
    """One fresh instance of every registered rule, in rule-ID order."""
    return [cls() for cls in _RULE_CLASSES]


def rules_by_id(ids: list[str]) -> list[Rule]:
    """Instances for the requested rule IDs; unknown IDs raise ValueError."""
    known = {cls.rule_id: cls for cls in _RULE_CLASSES}
    unknown = [rule_id for rule_id in ids if rule_id not in known]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [known[rule_id]() for rule_id in ids]
