"""RA004 — checkpoint/bench/export writes must go through atomicio.

The failure model (DESIGN.md §7) guarantees a reader of a checkpoint or
``BENCH_*.json`` only ever observes a complete previous file or a
complete new file.  That guarantee lives in exactly one place —
:func:`repro.resilience.atomicio.atomic_write_text`'s
write-temp-fsync-rename — and it evaporates the moment any code on those
paths opens the destination for writing directly.

Within the configured module families (``repro.resilience`` and
``repro.bench``) this rule flags:

* ``open(path, "w"/"a"/"x")`` — positional or ``mode=`` keyword;
* ``<path>.open("w"...)`` (the :class:`pathlib.Path` spelling);
* ``<path>.write_text(...)`` / ``<path>.write_bytes(...)``.

The one legitimate direct write — inside the atomic primitive itself —
carries a justified suppression.  When the analysed project contains no
module under the configured prefixes (fixtures linted in isolation), all
modules are in scope.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleUnit, Project, Rule

#: Module families whose writes are durability-critical.
SCOPE_PREFIXES = ("repro.resilience", "repro.bench")

_WRITE_METHODS = {"write_text", "write_bytes"}


def _write_mode(call: ast.Call, mode_position: int) -> str | None:
    """The constant write-ish mode string of an open() call, if any."""
    mode: ast.expr | None = None
    if len(call.args) > mode_position:
        mode = call.args[mode_position]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(flag in mode.value for flag in ("w", "a", "x", "+"))
    ):
        return mode.value
    return None


class AtomicIORule(Rule):
    rule_id = "RA004"
    title = "durability-critical writes must route through atomicio"
    rationale = (
        "checkpoint/bench/export files are contractually never torn; "
        "only atomicio's write-temp-fsync-rename provides that, so any "
        "direct open-for-write on those paths is a crash-window bug"
    )

    def __init__(self, prefixes: tuple[str, ...] = SCOPE_PREFIXES) -> None:
        self.prefixes = prefixes

    def _in_scope(self, project: Project) -> list[ModuleUnit]:
        scoped = [
            unit
            for unit in project.units
            if unit.module.startswith(self.prefixes)
        ]
        return scoped if scoped else list(project.units)

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for unit in self._in_scope(project):
            for node in ast.walk(unit.tree):
                if not isinstance(node, ast.Call):
                    continue
                finding = self._check_call(unit, node)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _check_call(
        self, unit: ModuleUnit, call: ast.Call
    ) -> Finding | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _write_mode(call, mode_position=1)
            if mode is not None:
                return self.finding(
                    unit,
                    call.lineno,
                    f"open(..., {mode!r}) writes directly; route through "
                    "repro.resilience.atomicio so a kill cannot tear the "
                    "file",
                )
        elif isinstance(func, ast.Attribute):
            if func.attr == "open":
                mode = _write_mode(call, mode_position=0)
                if mode is not None:
                    return self.finding(
                        unit,
                        call.lineno,
                        f".open({mode!r}) writes directly; route through "
                        "repro.resilience.atomicio",
                    )
            elif func.attr in _WRITE_METHODS:
                return self.finding(
                    unit,
                    call.lineno,
                    f".{func.attr}(...) bypasses atomicio; use "
                    "atomic_write_text/atomic_write_json instead",
                )
        return None
