"""RA009 — atomic-publish protocol: every rename dominated by fsync.

The crash-safety story (DESIGN.md §7/§12) hinges on one three-beat
protocol: write the new bytes to a sidecar, ``os.fsync`` them to the
platter, *then* rename over the destination.  Skip the fsync and the
rename can hit disk before the data does — after a power cut the reader
finds a complete-looking file full of zeros, which is strictly worse
than the torn write the protocol exists to prevent.

The rule replays each function's IO statements in line order as an
abstract protocol machine: opening a path for writing (``open(p, "w")``,
``p.open("w")``, ``p.write_text`` / ``p.write_bytes``) marks that path
expression *dirty*; ``os.fsync(...)`` clears the dirty set (the fd↔path
association is not tracked — any fsync in between is accepted, which
errs toward silence, never toward a false alarm); a rename
(``os.replace`` / ``os.rename``, or single-argument ``p.replace`` /
``p.rename``) whose *source* is still dirty is a finding.  Paths are
compared by source text, so the tmp-file idiom (one local name used for
write and rename) matches exactly; renames of files written elsewhere
resolve to nothing and stay silent.

Control flow is deliberately ignored — the protocol is a straight-line
contract inside one function, and every implementation in this codebase
(``atomicio``, WAL compaction, checkpoint rotation) is written that way.

Scope: ``repro.service.wal``, ``repro.resilience``,
``repro.shard.manifest``; all modules when absent (fixtures).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import Finding, ModuleUnit, Project, Rule

SCOPE_PREFIXES = (
    "repro.service.wal",
    "repro.resilience",
    "repro.shard.manifest",
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

_WRITE_METHODS = {"write_text", "write_bytes"}
_RENAME_ATTRS = {"replace", "rename"}


@dataclass(frozen=True)
class _Event:
    line: int
    kind: str  #: ``write`` | ``fsync`` | ``rename``
    key: str | None  #: source-text of the path expression


def _write_mode(call: ast.Call, mode_position: int) -> str | None:
    mode: ast.expr | None = None
    if len(call.args) > mode_position:
        mode = call.args[mode_position]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(flag in mode.value for flag in ("w", "a", "x", "+"))
    ):
        return mode.value
    return None


def _own_calls(function: ast.AST) -> list[ast.Call]:
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (*_FUNCTION_NODES, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return calls


def _receiver(func: ast.Attribute) -> str | None:
    if isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _classify(call: ast.Call) -> _Event | None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open" and call.args:
            if _write_mode(call, mode_position=1) is not None:
                return _Event(call.lineno, "write", ast.unparse(call.args[0]))
        if func.id == "fsync":
            return _Event(call.lineno, "fsync", None)
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr == "fsync":
        return _Event(call.lineno, "fsync", None)
    if attr == "open" and _write_mode(call, mode_position=0) is not None:
        return _Event(call.lineno, "write", ast.unparse(func.value))
    if attr in _WRITE_METHODS:
        return _Event(call.lineno, "write", ast.unparse(func.value))
    if attr in _RENAME_ATTRS and _receiver(func) == "os" and call.args:
        return _Event(call.lineno, "rename", ast.unparse(call.args[0]))
    if (
        attr in _RENAME_ATTRS
        and _receiver(func) != "os"
        and len(call.args) == 1
        and not call.keywords
    ):
        # ``p.replace(target)`` / ``p.rename(target)`` — exactly one
        # argument, which excludes ``str.replace(old, new)``.
        return _Event(call.lineno, "rename", ast.unparse(func.value))
    return None


class AtomicProtocolRule(Rule):
    rule_id = "RA009"
    title = "renames must be dominated by an fsync of the written data"
    rationale = (
        "rename-before-fsync publishes a file whose bytes may not have "
        "hit disk; after a crash the reader sees a complete-looking "
        "zero-filled file, defeating the atomic-publish protocol the "
        "durability story depends on"
    )

    def __init__(self, prefixes: tuple[str, ...] = SCOPE_PREFIXES) -> None:
        self.prefixes = prefixes

    def _in_scope(self, project: Project) -> list[ModuleUnit]:
        scoped = [
            unit
            for unit in project.units
            if unit.module.startswith(self.prefixes)
        ]
        return scoped if scoped else list(project.units)

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for unit in self._in_scope(project):
            for node in ast.walk(unit.tree):
                if not isinstance(node, _FUNCTION_NODES):
                    continue
                events = sorted(
                    filter(
                        None, (_classify(call) for call in _own_calls(node))
                    ),
                    key=lambda event: event.line,
                )
                dirty: set[str] = set()
                for event in events:
                    if event.kind == "write" and event.key is not None:
                        dirty.add(event.key)
                    elif event.kind == "fsync":
                        dirty.clear()
                    elif event.kind == "rename" and event.key in dirty:
                        findings.append(
                            self.finding(
                                unit,
                                event.line,
                                f"{event.key} is renamed into place "
                                "without an fsync after writing it; a "
                                "crash can publish a file whose data "
                                "never reached disk",
                            )
                        )
        return findings
