"""RA008 — acquired OS resources must reach cleanup on exception paths.

Named ``multiprocessing.shared_memory`` segments are the one resource in
this codebase the operating system will *not* reclaim when the process
dies: a segment attached or created and then leaked by an exception path
survives in ``/dev/shm`` until someone unlinks it (the PR 6 single-owner
rule, DESIGN.md §10).  Heartbeat threads and ``delete=False`` tempfiles
have the same shape — an acquire whose matching release lives on the
happy path only.

The rule finds acquisitions — ``SharedMemory(...)`` construction,
``tempfile.mkstemp(...)`` / ``NamedTemporaryFile(delete=False)``, and
``.start()`` on a heartbeat object — and requires each to be protected
by a ``try`` *in the same function* whose handlers or ``finally`` run a
cleanup call (``close`` / ``unlink`` / ``stop`` / ``set`` / ``release``
/ ``terminate`` / ``kill`` / ``clear``).  Protection means the
acquisition sits inside the ``try`` body, or in the statement
immediately before it — anything else leaves a window where an
exception between acquire and ``try`` entry leaks the resource, which
is exactly the bug class this rule exists to catch.

The check is intraprocedural on purpose: "this function hands the open
segment to its caller" is a contract the analysis cannot see, so
functions that legitimately *return* live resources (e.g. ``allocate``)
still must guard the window between acquiring and returning.

Scope: ``repro.shard`` and ``repro.service``; all modules when absent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import Finding, ModuleUnit, Project, Rule

SCOPE_PREFIXES = ("repro.shard", "repro.service")

#: Method names that release one of the tracked resource kinds.
CLEANUP_ATTRS = {
    "close",
    "unlink",
    "stop",
    "set",
    "release",
    "clear",
    "terminate",
    "kill",
}

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class Acquisition:
    """One resource-acquiring statement inside a function."""

    line: int
    description: str


def _own_statements(node: ast.AST) -> list[ast.stmt]:
    """Every statement in ``node``'s body, not descending into nested
    function/class definitions (those are analysed on their own)."""
    collected: list[ast.stmt] = []
    stack: list[ast.stmt] = list(getattr(node, "body", []))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (*_FUNCTION_NODES, ast.ClassDef)):
            continue
        collected.append(stmt)
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field, []))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)
    return collected


def _own_blocks(node: ast.AST) -> list[list[ast.stmt]]:
    """Every statement list in ``node``, again skipping nested defs."""
    blocks: list[list[ast.stmt]] = [list(getattr(node, "body", []))]
    for stmt in _own_statements(node):
        for field in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field, None)
            if inner:
                blocks.append(list(inner))
        for handler in getattr(stmt, "handlers", []):
            blocks.append(list(handler.body))
    return blocks


def _is_shared_memory_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    return isinstance(func, ast.Attribute) and func.attr == "SharedMemory"


def _is_tempfile_call(call: ast.Call) -> str | None:
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name == "mkstemp":
        return "tempfile.mkstemp(...)"
    if name == "NamedTemporaryFile":
        for keyword in call.keywords:
            if (
                keyword.arg == "delete"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return "NamedTemporaryFile(delete=False)"
    return None


def _heartbeat_vars(statements: list[ast.stmt]) -> set[str]:
    """Variables assigned from a ``*Heartbeat*``-named constructor."""
    names: set[str] = set()
    for stmt in statements:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and "heartbeat" in stmt.value.func.id.lower()
        ):
            continue
        names.add(stmt.targets[0].id)
    return names


def _own_calls(function: ast.AST) -> list[ast.Call]:
    """Call nodes in the function, not descending into nested defs."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (*_FUNCTION_NODES, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return calls


def _acquisitions(function: ast.AST) -> list[Acquisition]:
    heartbeats = _heartbeat_vars(_own_statements(function))
    found: list[Acquisition] = []
    for node in _own_calls(function):
        if _is_shared_memory_call(node):
            found.append(Acquisition(node.lineno, "SharedMemory segment"))
            continue
        tempfile_kind = _is_tempfile_call(node)
        if tempfile_kind is not None:
            found.append(Acquisition(node.lineno, tempfile_kind))
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "start"
            and isinstance(func.value, ast.Name)
            and func.value.id in heartbeats
        ):
            found.append(
                Acquisition(
                    node.lineno, f"heartbeat thread {func.value.id!r}"
                )
            )
    return found


def _has_cleanup(try_stmt: ast.Try) -> bool:
    exception_paths: list[ast.stmt] = list(try_stmt.finalbody)
    for handler in try_stmt.handlers:
        exception_paths.extend(handler.body)
    for stmt in exception_paths:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CLEANUP_ATTRS
            ):
                return True
    return False


def _is_protected(function: ast.AST, line: int) -> bool:
    """True when a cleanup-bearing ``try`` covers the acquisition: the
    line is inside the try body, or in the statement immediately before
    the try in the same block."""
    for block in _own_blocks(function):
        for index, stmt in enumerate(block):
            if not (isinstance(stmt, ast.Try) and _has_cleanup(stmt)):
                continue
            end = stmt.end_lineno or stmt.lineno
            if stmt.lineno <= line <= end:
                return True
            if index > 0:
                previous = block[index - 1]
                previous_end = previous.end_lineno or previous.lineno
                if previous.lineno <= line <= previous_end:
                    return True
    return False


class ResourceLifecycleRule(Rule):
    rule_id = "RA008"
    title = "resource acquisitions must reach cleanup on exception paths"
    rationale = (
        "a leaked shared-memory segment outlives the process in "
        "/dev/shm and a leaked heartbeat thread keeps a dead job "
        "looking alive; every acquire needs a try whose handlers or "
        "finally release it, with no exception window before the try"
    )

    def __init__(self, prefixes: tuple[str, ...] = SCOPE_PREFIXES) -> None:
        self.prefixes = prefixes

    def _in_scope(self, project: Project) -> list[ModuleUnit]:
        scoped = [
            unit
            for unit in project.units
            if unit.module.startswith(self.prefixes)
        ]
        return scoped if scoped else list(project.units)

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for unit in self._in_scope(project):
            for node in ast.walk(unit.tree):
                if not isinstance(node, _FUNCTION_NODES):
                    continue
                for acquisition in _acquisitions(node):
                    if _is_protected(node, acquisition.line):
                        continue
                    findings.append(
                        self.finding(
                            unit,
                            acquisition.line,
                            f"{acquisition.description} acquired in "
                            f"{node.name}() with no try/finally or "
                            "except-path cleanup covering it; an "
                            "exception here leaks the resource",
                        )
                    )
        return findings
