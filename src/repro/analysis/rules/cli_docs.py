"""RA005 — every CLI flag must be documented.

The CLI surface (``repro.cli`` and ``repro.bench.run_figures``) is how
users reach the parallel, cache, and resilience machinery; a flag that
exists only in ``--help`` output drifts out of README examples and
DESIGN contracts within a few PRs (both files document flag semantics the
code alone cannot express, e.g. the determinism guarantee of
``--inject-faults``).

The rule extracts every ``add_argument("--flag", ...)`` literal from the
in-scope modules and requires the flag to appear — as a standalone token,
so ``--out`` is not satisfied by ``--output`` — in the project's
``README.md`` or ``DESIGN.md`` (located at the nearest ancestor of the
analysed files holding a ``pyproject.toml``).  Subcommands registered
via ``add_parser("name", ...)`` are held to a stronger bar: the docs
must contain a ``repro name`` usage mention, not merely the bare word —
a subcommand whose only trace is prose (say, "the serve subcommand")
gives users nothing to copy.  This covers the ``serve`` and ``gc-shm``
surfaces the service stack added, whose flags are all registered on
subparsers.

Scope: modules whose dotted name ends in ``cli`` or ``run_figures``;
when the analysed project contains none (fixtures linted in isolation),
every module with ``add_argument`` calls is in scope.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Finding, ModuleUnit, Project, Rule

#: Module-name suffixes that define the user-facing CLI surface.
SCOPE_SUFFIXES = ("cli", "run_figures")

#: Documentation files consulted, relative to the project root.
DOC_FILES = ("README.md", "DESIGN.md")


class CliDocRule(Rule):
    rule_id = "RA005"
    title = "argparse flags must appear in README or DESIGN"
    rationale = (
        "flags carry contract semantics (determinism of --inject-faults, "
        "resume guarantees of --checkpoint) that only the docs state; an "
        "undocumented flag is drift the moment it lands"
    )

    def __init__(self, suffixes: tuple[str, ...] = SCOPE_SUFFIXES) -> None:
        self.suffixes = suffixes

    def _in_scope(self, project: Project) -> list[ModuleUnit]:
        scoped = [
            unit
            for unit in project.units
            if unit.module.rsplit(".", 1)[-1] in self.suffixes
        ]
        return scoped if scoped else list(project.units)

    def run(self, project: Project) -> list[Finding]:
        root = project.root()
        docs = ""
        if root is not None:
            for name in DOC_FILES:
                doc_path = root / name
                if doc_path.exists():
                    docs += doc_path.read_text() + "\n"
        findings: list[Finding] = []
        for unit in self._in_scope(project):
            for line, flag in self._flags(unit):
                # Standalone-token match: the flag must not be satisfied
                # by a longer flag containing it (--out vs --output).
                if not re.search(re.escape(flag) + r"(?![\w-])", docs):
                    findings.append(
                        self.finding(
                            unit,
                            line,
                            f"CLI flag {flag!r} is not documented in "
                            + " or ".join(DOC_FILES),
                        )
                    )
            for line, name in self._subcommands(unit):
                if not re.search(
                    r"repro[ `]+" + re.escape(name) + r"(?![\w-])", docs
                ):
                    findings.append(
                        self.finding(
                            unit,
                            line,
                            f"CLI subcommand {name!r} has no "
                            f"'repro {name}' usage mention in "
                            + " or ".join(DOC_FILES),
                        )
                    )
        return findings

    @staticmethod
    def _flags(unit: ModuleUnit) -> list[tuple[int, str]]:
        flags: list[tuple[int, str]] = []
        for node in ast.walk(unit.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    flags.append((node.lineno, arg.value))
        return flags

    @staticmethod
    def _subcommands(unit: ModuleUnit) -> list[tuple[int, str]]:
        """Every ``add_parser("name", ...)`` registration in the unit."""
        names: list[tuple[int, str]] = []
        for node in ast.walk(unit.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_parser"
                and node.args
            ):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                names.append((node.lineno, first.value))
        return names
