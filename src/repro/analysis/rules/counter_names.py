"""RA002 — counter and span literals must match the obs registry.

The dotted counter namespace (``frequency.*``, ``cache.*``, ``parallel.*``,
``fault.*``, ``retry.*``) is an API: the bench export, the trajectory
tooling, and the differential tests all read counters *by name*.  A typo'd
name in an ``incr()`` call does not fail — it silently creates a counter
nobody reads while the real one stays at zero.  This rule resolves every
name literal at a counter/span call site against the machine-readable
registry exported by :mod:`repro.obs.registry` and flags anything
undeclared.

Checked call shapes (first positional argument is the name):

* ``<anything>.incr(name, ...)`` / ``<anything>.note_max(name, ...)``
* ``<anything>.set(name, value)`` with a *positional string* name (keyword
  ``sp.set(attr=...)`` span attributes are not counters and are ignored)
* ``<anything>.span(name, ...)`` / ``span(name, ...)`` — checked against
  the registry's span-name set
* ``<anything>.observe(name, value)`` / ``<anything>.timer(name)`` —
  histogram/timer instruments, checked against the registry's metric set.

Name arguments resolve through :meth:`Project.resolve_string`: plain
literals, module-level string constants (``_PEAK_KEY``), dict-constant
lookups (``_COUNTER_KEYS["table_scans"]``), and f-strings — an f-string's
constant head must extend a registered *prefix* family such as
``fault.injected.``.  Genuinely dynamic names are skipped, not guessed.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleUnit, Project, Rule

_COUNTER_METHODS = ("incr", "note_max", "set")

_METRIC_METHODS = ("observe", "timer")


class CounterRegistryRule(Rule):
    rule_id = "RA002"
    title = "counter/span name literals must be registered"
    rationale = (
        "a typo'd counter name silently creates a new counter that no "
        "export or test reads; the repro.obs registry makes the namespace "
        "closed and machine-checked"
    )

    def __init__(self, registry=None) -> None:
        self._registry = registry

    @property
    def registry(self):
        if self._registry is None:
            from repro.obs.registry import default_registry

            self._registry = default_registry()
        return self._registry

    def _in_scope(self, project: Project) -> list[ModuleUnit]:
        """Project modules only, when any are present.

        The counter-namespace contract binds *production* code; the obs
        and stats test suites legitimately mint synthetic names
        (``widgets``, ``a.peak``) to exercise the instrument machinery
        itself, so when the analysed set spans both (the CI gate runs
        over ``src/`` and ``tests/`` together) only ``repro.*`` units
        are checked.  With no project units at all — fixture files
        linted in isolation — every unit is in scope, as elsewhere.
        """
        scoped = [
            unit
            for unit in project.units
            if unit.module.startswith("repro.")
        ]
        return scoped if scoped else list(project.units)

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for unit in self._in_scope(project):
            for node in ast.walk(unit.tree):
                if not isinstance(node, ast.Call):
                    continue
                method = self._method_name(node)
                if method in _COUNTER_METHODS:
                    findings.extend(self._check_counter(project, unit, node))
                elif method == "span":
                    findings.extend(self._check_span(project, unit, node))
                elif method in _METRIC_METHODS:
                    findings.extend(self._check_metric(project, unit, node))
        return findings

    @staticmethod
    def _method_name(call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        if isinstance(call.func, ast.Name):
            return call.func.id
        return None

    def _check_counter(
        self, project: Project, unit: ModuleUnit, call: ast.Call
    ) -> list[Finding]:
        if not call.args:
            return []  # keyword-only .set(attr=...) — a span attribute
        resolved = project.resolve_string(unit, call.args[0])
        if resolved is None:
            return []
        kind, name = resolved
        registry = self.registry
        if kind == "exact" and not registry.allows_counter(name):
            return [
                self.finding(
                    unit,
                    call.lineno,
                    f"counter name {name!r} is not in the obs registry; "
                    "declare it in repro.core.stats._COUNTER_KEYS or "
                    "repro.obs.registry before incrementing it",
                )
            ]
        if kind == "prefix" and not registry.allows_counter_prefix(name):
            return [
                self.finding(
                    unit,
                    call.lineno,
                    f"dynamic counter name starting {name!r} matches no "
                    "registered prefix family (repro.obs.registry."
                    "COUNTER_PREFIXES)",
                )
            ]
        return []

    def _check_span(
        self, project: Project, unit: ModuleUnit, call: ast.Call
    ) -> list[Finding]:
        if not call.args:
            return []
        resolved = project.resolve_string(unit, call.args[0])
        if resolved is None or resolved[0] != "exact":
            return []
        name = resolved[1]
        if not self.registry.allows_span(name):
            return [
                self.finding(
                    unit,
                    call.lineno,
                    f"span name {name!r} is not in the obs registry; add "
                    "it to repro.obs.registry.SPAN_NAMES",
                )
            ]
        return []

    def _check_metric(
        self, project: Project, unit: ModuleUnit, call: ast.Call
    ) -> list[Finding]:
        if not call.args:
            return []
        resolved = project.resolve_string(unit, call.args[0])
        if resolved is None or resolved[0] != "exact":
            return []  # dynamic metric names are skipped, like counters
        name = resolved[1]
        if not self.registry.allows_metric(name):
            return [
                self.finding(
                    unit,
                    call.lineno,
                    f"metric name {name!r} is not in the obs registry; add "
                    "it to repro.obs.registry.METRIC_NAMES before "
                    "recording it",
                )
            ]
        return []
