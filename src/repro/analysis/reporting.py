"""Finding reporters: human text and machine JSON.

Both render the same finding list; the JSON form is stable and
diff-friendly (sorted by path/line/rule upstream) so CI logs and local
runs can be compared mechanically.
"""

from __future__ import annotations

import json
from typing import IO, Sequence

from repro.analysis.core import Finding, active


def render_text(
    findings: Sequence[Finding], stream: IO[str], *, verbose: bool = False
) -> None:
    """One line per finding, suppressed ones last, then a summary line."""
    live = active(findings)
    suppressed = [finding for finding in findings if finding.suppressed]
    for finding in live:
        stream.write(finding.render() + "\n")
    if verbose:
        for finding in suppressed:
            stream.write(finding.render() + "\n")
            if finding.justification:
                stream.write(f"    justification: {finding.justification}\n")
    stream.write(
        f"{len(live)} finding(s), {len(suppressed)} suppressed\n"
    )


def render_json(findings: Sequence[Finding], stream: IO[str]) -> None:
    document = {
        "findings": [finding.as_document() for finding in findings],
        "active": len(active(findings)),
        "suppressed": sum(1 for finding in findings if finding.suppressed),
    }
    json.dump(document, stream, indent=2, sort_keys=True)
    stream.write("\n")
