"""Runtime lock-order recorder — the dynamic half of RA006.

The static analysis (:mod:`repro.analysis.rules.lock_order`) *predicts*
the lock-acquisition graph from source text; this module *observes* it
from a live process and lets tests assert the two agree.  The value is
mutual: an acquisition order the static pass missed (dynamic dispatch,
a lock reached through a path the call graph could not prove) shows up
here, and a static edge that never fires in practice is at worst noise —
while a cycle in the *combined* graph is a deadlock witness no matter
which half contributed each edge.

Mechanics: :meth:`LockOrderRecorder.install` monkeypatches the
``threading.Lock`` / ``threading.RLock`` factories so every lock created
while installed is wrapped in a :class:`_RecordingLock` that remembers
its *creation site* — ``(filename, line)`` of the factory call, which is
exactly the site RA006's lock table keys on (``self._lock =
threading.RLock()``).  Each wrapper maintains a thread-local held-stack;
acquiring while other wrapped locks are held records one ``(held site,
acquired site)`` pair per held lock.  ``Condition``'s internal waiter
locks come from ``_thread.allocate_lock`` and are deliberately not
wrapped.

:func:`combined_cycle` then merges observed pairs (translated to static
lock identities; pairs touching locks outside the static table —
stdlib ``Event`` internals, test scaffolding — are ignored) with the
static edges and returns a cycle if one exists.  The service conftest
runs this after every test (see DESIGN.md §13), so the full chaos suite
doubles as a continuous cross-check of the analysis.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass, field

from repro.analysis.rules.lock_order import LockAnalysis

#: A lock's identity at runtime: where its factory call was made.
Site = tuple[str, int]


class _RecordingLock:
    """Wraps one real lock; mirrors its API, records acquisition order."""

    def __init__(
        self,
        inner: object,
        kind: str,
        site: Site,
        recorder: "LockOrderRecorder",
    ) -> None:
        self._inner = inner
        self._kind = kind
        self._site = site
        self._recorder = recorder

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if acquired:
            self._recorder._note_acquire(self)
        return acquired

    def release(self) -> None:
        self._recorder._note_release(self)
        self._inner.release()  # type: ignore[attr-defined]

    def locked(self) -> bool:
        return self._inner.locked()  # type: ignore[attr-defined]

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __getattr__(self, name: str) -> object:
        # _is_owned / _acquire_restore / _release_save etc. — Condition
        # interop goes straight to the real lock.
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecordingLock {self._kind} @ {self._site[0]}:{self._site[1]}>"


@dataclass
class LockOrderRecorder:
    """Observes lock-acquisition order process-wide while installed."""

    #: Every observed (held site, acquired site) pair, with kinds.
    observed: set[tuple[Site, Site]] = field(default_factory=set)
    #: Site → lock kind ("Lock" | "RLock") for every wrapped lock.
    kinds: dict[Site, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._tls = threading.local()
        # A *real* (unwrapped) mutex guarding the observed set.
        self._mutex = threading.Lock()
        self._originals: tuple[object, object] | None = None

    # ------------------------------------------------------------------
    # wrapper callbacks
    # ------------------------------------------------------------------
    def _held_stack(self) -> list[_RecordingLock]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _note_acquire(self, lock: _RecordingLock) -> None:
        stack = self._held_stack()
        pairs = [
            (held._site, lock._site)
            for held in stack
            if held is not lock or held._kind == "Lock"
        ]
        stack.append(lock)
        if pairs:
            with self._mutex:
                self.observed.update(pairs)

    def _note_release(self, lock: _RecordingLock) -> None:
        stack = self._held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        if self._originals is not None:
            raise RuntimeError("recorder already installed")
        self._originals = (threading.Lock, threading.RLock)
        threading.Lock = self._factory("Lock", self._originals[0])  # type: ignore[misc]
        threading.RLock = self._factory("RLock", self._originals[1])  # type: ignore[misc]

    def uninstall(self) -> None:
        if self._originals is None:
            return
        threading.Lock, threading.RLock = self._originals  # type: ignore[misc]
        self._originals = None

    def _factory(self, kind: str, real: object):
        def make_lock(*args: object, **kwargs: object) -> _RecordingLock:
            frame = sys._getframe(1)
            site = (
                os.path.abspath(frame.f_code.co_filename),
                frame.f_lineno,
            )
            self.kinds.setdefault(site, kind)
            return _RecordingLock(real(*args, **kwargs), kind, site, self)  # type: ignore[operator]

        return make_lock

    def __enter__(self) -> "LockOrderRecorder":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()


def observed_static_pairs(
    recorder: LockOrderRecorder, analysis: LockAnalysis
) -> set[tuple[str, str]]:
    """Observed pairs translated to static lock quals; pairs touching
    any lock the static table does not know are dropped (stdlib
    internals, test scaffolding)."""
    by_site = {
        (os.path.abspath(info.path), info.line): qual
        for qual, info in analysis.locks.items()
    }
    pairs: set[tuple[str, str]] = set()
    for held_site, acquired_site in recorder.observed:
        held = by_site.get(held_site)
        acquired = by_site.get(acquired_site)
        if held is None or acquired is None:
            continue
        if held == acquired and analysis.locks[held].kind != "Lock":
            continue  # reentrant reacquisition is legal
        pairs.add((held, acquired))
    return pairs


def combined_cycle(
    recorder: LockOrderRecorder, analysis: LockAnalysis
) -> list[str] | None:
    """A lock-order cycle in static ∪ observed edges, or None.

    Static-only, observed-only, and mixed cycles all count: a deadlock
    needs the edges to *exist*, not to come from the same evidence.
    """
    edges: dict[str, set[str]] = {}
    all_pairs = analysis.edge_pairs() | observed_static_pairs(
        recorder, analysis
    )
    for held, acquired in all_pairs:
        if held == acquired:
            if analysis.locks[held].kind == "Lock":
                return [held, held]
            continue
        edges.setdefault(held, set()).add(acquired)

    visited: set[str] = set()

    def dfs(node: str, path: list[str]) -> list[str] | None:
        for nxt in sorted(edges.get(node, ())):
            if nxt in path:
                return [*path[path.index(nxt) :], nxt]
            if nxt in visited:
                continue
            visited.add(nxt)
            found = dfs(nxt, [*path, nxt])
            if found is not None:
                return found
        return None

    for root in sorted(edges):
        if root in visited:
            continue
        visited.add(root)
        found = dfs(root, [root])
        if found is not None:
            return found
    return None
