"""Deterministic fault injection for the parallel evaluator.

A :class:`FaultPlan` is a seeded specification of how often dispatched
chunks misbehave, with one injector per failure class the supervised batch
path (:mod:`repro.parallel.evaluator`) must survive:

* ``crash``   — the worker dies mid-task (``os._exit`` in a process pool,
  an :class:`InjectedWorkerCrash` in a thread pool);
* ``timeout`` — the worker stalls past the supervision timeout and the
  parent must give up on it and re-dispatch;
* ``slow``    — the worker is merely late (tests the retry machinery does
  *not* fire for ordinary latency);
* ``poison``  — the worker returns a corrupt result the parent-side
  validation must reject (truncated payloads, mangled counts);
* ``memory``  — a memory-pressure signal handled entirely in the parent:
  the attached :class:`~repro.core.fscache.FrequencySetCache` is demoted
  to scan-through (see :meth:`FrequencySetCache.degrade`).

Every decision is a pure function of ``(seed, task_id, attempt)``, so a
replayed run injects exactly the same faults at exactly the same tasks —
which is what makes the fault-matrix differential tests reproducible —
and a *retry* of the same task draws a fresh decision, so with any rate
below 1.0 retries converge.  The plan is installed through
``ExecutionConfig(faults=...)`` or the ``--inject-faults`` CLI flag.

Faults are only drawn for work dispatched to a pool: serial execution —
including the degradation ladder's final serial fallback — is never
injected, which guarantees every run terminates with correct results.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, fields

__all__ = [
    "FaultPlan",
    "InjectedWorkerCrash",
    "PoisonedResultError",
    "apply_worker_fault",
    "poison_payload",
]

#: Draw order of the fault classes (first match wins on the unit draw).
_FAULT_KINDS = ("crash", "timeout", "slow", "poison", "memory")

#: Spec aliases accepted by :meth:`FaultPlan.from_spec`.
_SPEC_KEYS = {
    "crash": "crash_rate",
    "timeout": "timeout_rate",
    "slow": "slow_rate",
    "poison": "poison_rate",
    "memory": "memory_pressure_rate",
    "seed": "seed",
    "hold": "hold_seconds",
    "delay": "slow_seconds",
}


class InjectedWorkerCrash(RuntimeError):
    """Raised inside a thread worker to simulate its death."""


class PoisonedResultError(RuntimeError):
    """A chunk result failed parent-side validation and must be retried."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault-injection rates for chunk dispatch."""

    crash_rate: float = 0.0
    timeout_rate: float = 0.0
    slow_rate: float = 0.0
    poison_rate: float = 0.0
    memory_pressure_rate: float = 0.0
    seed: int = 0
    #: How long an injected-timeout worker stalls before giving up its slot.
    hold_seconds: float = 1.0
    #: Added latency of an injected-slow worker (must stay under timeouts).
    slow_seconds: float = 0.02

    def __post_init__(self) -> None:
        total = 0.0
        for name in (
            "crash_rate",
            "timeout_rate",
            "slow_rate",
            "poison_rate",
            "memory_pressure_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
            total += value
        if total > 1.0:
            raise ValueError(
                f"fault rates must sum to at most 1.0, got {total:.3f}"
            )
        if self.hold_seconds <= 0:
            raise ValueError(
                f"hold_seconds must be positive, got {self.hold_seconds!r}"
            )
        if self.slow_seconds <= 0:
            raise ValueError(
                f"slow_seconds must be positive, got {self.slow_seconds!r}"
            )

    @property
    def any_faults(self) -> bool:
        """True when at least one injector has a non-zero rate."""
        return (
            self.crash_rate
            + self.timeout_rate
            + self.slow_rate
            + self.poison_rate
            + self.memory_pressure_rate
        ) > 0.0

    # ------------------------------------------------------------------
    # drawing
    # ------------------------------------------------------------------
    def draw(self, task_id: int, attempt: int) -> str | None:
        """The fault injected for ``(task_id, attempt)``, or None.

        Returns one of ``"crash"``, ``"timeout"``, ``"slow"``,
        ``"poison"``, ``"memory"``.  Pure: the same arguments always draw
        the same outcome for a given plan.
        """
        unit = random.Random(
            f"faultplan:{self.seed}:{task_id}:{attempt}"
        ).random()
        cumulative = 0.0
        for kind, rate in zip(
            _FAULT_KINDS,
            (
                self.crash_rate,
                self.timeout_rate,
                self.slow_rate,
                self.poison_rate,
                self.memory_pressure_rate,
            ),
        ):
            cumulative += rate
            if unit < cumulative:
                return kind
        return None

    def jitter(self, task_id: int, attempt: int) -> float:
        """Deterministic backoff jitter factor in [0.5, 1.5)."""
        return 0.5 + random.Random(
            f"faultjitter:{self.seed}:{task_id}:{attempt}"
        ).random()

    # ------------------------------------------------------------------
    # spec parsing
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"crash=0.2,timeout=0.1,seed=7"`` into a plan.

        Keys: ``crash`` / ``timeout`` / ``slow`` / ``poison`` / ``memory``
        (rates in [0, 1]), ``seed`` (int), ``hold`` (stall seconds of an
        injected timeout), ``delay`` (added seconds of an injected-slow
        worker).  Raises ValueError on unknown keys or malformed values.
        """
        values: dict[str, float | int] = {}
        for pair in spec.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, raw = pair.partition("=")
            key = key.strip().lower()
            if not sep or key not in _SPEC_KEYS:
                known = ",".join(sorted(_SPEC_KEYS))
                raise ValueError(
                    f"bad fault spec entry {pair!r} (expected key=value with "
                    f"key in {{{known}}})"
                )
            field = _SPEC_KEYS[key]
            try:
                values[field] = int(raw) if field == "seed" else float(raw)
            except ValueError:
                raise ValueError(
                    f"bad fault spec value for {key!r}: {raw!r}"
                ) from None
        return cls(**values)

    def describe(self) -> str:
        """Compact one-line rendering (CLI/bench banners)."""
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            default = field.default
            if value != default:
                parts.append(f"{field.name}={value}")
        return "FaultPlan(" + ", ".join(parts or ["no-op"]) + ")"


# ----------------------------------------------------------------------
# worker-side application (shared by the thread and process chunk runners)
# ----------------------------------------------------------------------
def apply_worker_fault(directive: tuple[str, float] | None, *, in_process: bool) -> None:
    """Apply a pre-execution fault directive inside a worker.

    ``directive`` is ``(kind, param)`` as computed by the parent (the
    parent draws; workers only obey, so decisions stay deterministic no
    matter which worker a chunk lands on).  ``crash`` kills a process
    worker outright (``os._exit`` — the pool observes a broken process)
    and raises :class:`InjectedWorkerCrash` in a thread worker; ``timeout``
    and ``slow`` stall for ``param`` seconds.
    """
    if directive is None:
        return
    kind, param = directive
    if kind == "crash":
        if in_process:
            import os

            os._exit(73)  # noqa: SLF001 - deliberate simulated worker death
        raise InjectedWorkerCrash("injected worker crash")
    if kind in ("timeout", "slow"):
        time.sleep(param)
        return
    if kind == "poison":
        return  # applied to the payload after execution, not here
    raise ValueError(f"unknown fault directive {kind!r}")


def poison_payload(payload: tuple) -> tuple:
    """Corrupt a chunk payload the way a buggy worker might.

    Truncates the result list (a lost job), which the parent's shape
    validation must detect and convert into a retry.  The accompanying
    delta elements (counters, metrics) pass through untouched — shape
    validation must catch the corruption from the results alone.
    """
    results, *deltas = payload
    return (results[:-1], *deltas)
