"""Crash-safe file writes shared by checkpoints and bench exports.

The one primitive everything here builds on is *atomic replace*: write the
full payload to a temporary file in the target's directory, flush and fsync
it, then ``os.replace`` it over the destination.  A reader (or a resumed
run) therefore only ever observes either the previous complete file or the
new complete file — never a torn half-write, no matter where the writer was
killed.  The temporary lives in the same directory so the rename can never
cross filesystems.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path``'s contents with ``text``.

    Creates parent directories as needed.  On any failure the temporary
    file is removed and the destination is left exactly as it was.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        # ra: RA004 -- this IS the atomic-write primitive: the plain write
        # targets a private temp file, fsynced then os.replace()d into place.
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_json(path: str | Path, document: Any, *, indent: int | None = None) -> Path:
    """Atomically replace ``path`` with ``document`` serialised as JSON."""
    return atomic_write_text(
        path, json.dumps(document, indent=indent, sort_keys=True) + "\n"
    )
