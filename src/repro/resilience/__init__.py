"""``repro.resilience`` — the fault-tolerant execution layer.

Three pieces, built for the "partial failure is the norm" regime of
long-running, production-scale k-anonymization:

* :mod:`~repro.resilience.faults` — a deterministic, seeded
  fault-injection framework (:class:`FaultPlan`): worker crashes,
  per-job timeouts, slow workers, poisoned results, and memory-pressure
  signals, installable via ``ExecutionConfig(faults=...)`` or the
  ``--inject-faults`` CLI flag;
* the supervised batch path in :mod:`repro.parallel.evaluator` consumes
  the plan and survives real or injected failures through bounded retries
  with backoff and a graceful-degradation ladder (rebuild the pool once,
  then demote processes → threads → serial) — with bit-identical results
  and ``frequency.*`` counters, failures accounted under ``fault.*`` /
  ``retry.*``;
* :mod:`~repro.resilience.checkpoint` — level-granular checkpoint/resume
  (:class:`CheckpointStore`, atomic write-temp-fsync-rename) threaded
  through the Incognito variants, bottom-up, and binary search, plus the
  shared :mod:`~repro.resilience.atomicio` primitives that also make the
  bench JSON export crash-safe.

See DESIGN.md §7 for the failure model and exactly what is guaranteed
bit-identical under each degradation.
"""

from repro.resilience.atomicio import atomic_write_json, atomic_write_text
from repro.resilience.checkpoint import (
    ChainMatch,
    ChainMismatchWarning,
    CheckpointError,
    CheckpointStore,
    frequency_set_from_json,
    frequency_set_to_json,
    node_from_json,
    match_chain,
    node_to_json,
    nodes_from_json,
    nodes_to_json,
    problem_fingerprint,
    resolve_checkpoint,
    segment_fingerprint,
    set_default_checkpoints,
    use_checkpoints,
)
from repro.resilience.faults import (
    FaultPlan,
    InjectedWorkerCrash,
    PoisonedResultError,
)

__all__ = [
    "ChainMatch",
    "ChainMismatchWarning",
    "CheckpointError",
    "CheckpointStore",
    "FaultPlan",
    "InjectedWorkerCrash",
    "PoisonedResultError",
    "atomic_write_json",
    "atomic_write_text",
    "frequency_set_from_json",
    "frequency_set_to_json",
    "match_chain",
    "node_from_json",
    "node_to_json",
    "nodes_from_json",
    "nodes_to_json",
    "problem_fingerprint",
    "resolve_checkpoint",
    "segment_fingerprint",
    "set_default_checkpoints",
    "use_checkpoints",
]
