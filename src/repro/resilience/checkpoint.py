"""Level-granular checkpoint/resume for the long-running lattice searches.

The search algorithms are level-synchronous: at the end of every completed
unit of work — an Incognito iteration (one a-priori subset size), a
bottom-up lattice height, a binary-search probe — the algorithm's entire
progress is describable as plain data (which nodes survived or were
marked, the boundary frequency sets children still roll up from, the run's
counters).  :class:`CheckpointStore` persists exactly that snapshot after
each unit, atomically (write-temp-fsync-rename, see
:mod:`repro.resilience.atomicio`), so a killed run can be resumed with
``--resume`` and *never re-does a completed level* — completed levels are
replayed from the snapshot (pure graph work, no table scans), and their
counters are restored rather than recomputed.

A checkpoint is only trusted when its header matches the run asking to
resume: same algorithm, same ``k`` / suppression budget, and the same
*content* fingerprint of the prepared table (the in-memory
``cache_fingerprint`` is identity-based and so useless across processes —
:func:`problem_fingerprint` hashes the encoded columns and hierarchy
shapes instead).  A mismatched or missing file simply means "start
fresh"; a torn file cannot exist by construction.

Fixed-signature callers (the bench harness's algorithm table, the CLI's
figure sweeps) opt in through a region default: :func:`use_checkpoints`
installs a directory, and every checkpoint-aware algorithm derives its own
store file from its algorithm tag, ``k``, and the problem fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import re
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

from repro.resilience.atomicio import atomic_write_json

if TYPE_CHECKING:  # typing only: keep the core <-> resilience cycle lazy
    from repro.core.problem import PreparedTable
    from repro.lattice.node import LatticeNode

#: Schema version of the checkpoint files.
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be parsed."""


class ChainMismatchWarning(UserWarning):
    """A version-chained checkpoint diverged from the live dataset.

    Emitted (never raised) when an incremental session finds that some
    suffix of its persisted fingerprint chain no longer matches the data —
    the session falls back to the longest valid prefix, and the warning
    names exactly which delta diverged (see :meth:`ChainMatch.describe`).
    """


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
def problem_fingerprint(problem: "PreparedTable") -> str:
    """Content hash of the prepared data, stable across processes.

    Covers the quasi-identifier (names and order), every hierarchy's level
    structure, and the dictionary-encoded column data — i.e. everything a
    frequency set depends on.  Two processes preparing the same CSV with
    the same spec produce the same fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(repr((problem.quasi_identifier, problem.num_rows)).encode())
    for name in problem.quasi_identifier:
        hierarchy = problem.hierarchy(name)
        shape = tuple(
            hierarchy.cardinality(level)
            for level in range(hierarchy.height + 1)
        )
        digest.update(repr((name, shape)).encode())
        codes = problem.table.column(name).codes
        digest.update(np.ascontiguousarray(codes).tobytes())
    return digest.hexdigest()


def segment_fingerprint(
    problem: "PreparedTable", start: int, stop: int
) -> str:
    """Content hash of the quasi-identifier data in rows ``[start, stop)``.

    The chain element for one appended delta of a versioned dataset.
    Chain-stable by construction: dictionary encoding appends new values
    *after* the existing codes (``Column.concat``), so the codes of rows
    already in the table never change when later deltas arrive — the same
    slice hashed at any later version yields the same digest.  Unlike
    :func:`problem_fingerprint` it deliberately excludes the hierarchy
    shapes, which *do* grow as deltas introduce new values; the base
    segment of a chain uses the full :func:`problem_fingerprint` instead.
    """
    digest = hashlib.sha256()
    digest.update(
        repr((problem.quasi_identifier, int(start), int(stop))).encode()
    )
    for name in problem.quasi_identifier:
        codes = problem.table.column(name).codes[start:stop]
        digest.update(np.ascontiguousarray(codes).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class ChainMatch:
    """Outcome of validating a stored version chain against the live one.

    ``matched`` counts the leading chain elements (base fingerprint plus
    ordered delta fingerprints) that agree; everything derived from those
    segments — persisted delta pieces covering at most
    ``offsets[matched]`` rows — remains reusable.  When a mid-chain
    element disagrees, ``diverged_index`` pinpoints it (0 is the base
    segment, i >= 1 is delta i) together with both fingerprints, so the
    operator learns *which* append no longer matches instead of silently
    losing the whole checkpoint.
    """

    matched: int
    stored: int
    expected: int
    diverged_index: int | None = None
    expected_fingerprint: str | None = None
    found_fingerprint: str | None = None

    @property
    def full(self) -> bool:
        """Whether the stored chain covers the live chain exactly."""
        return (
            self.diverged_index is None
            and self.matched == self.expected
            and self.stored == self.expected
        )

    def describe(self) -> str:
        if self.diverged_index is not None:
            which = (
                "the base segment"
                if self.diverged_index == 0
                else f"delta {self.diverged_index}"
            )
            return (
                f"checkpoint version chain diverged at {which}: expected "
                f"{self.expected_fingerprint}, found "
                f"{self.found_fingerprint}; falling back to the longest "
                f"valid prefix ({self.matched} of {self.expected} "
                f"segment(s))"
            )
        if self.full:
            return (
                f"checkpoint version chain matches all "
                f"{self.expected} segment(s)"
            )
        if self.stored > self.expected:
            return (
                f"checkpoint version chain holds {self.stored} segments "
                f"but the dataset has only {self.expected}; reusing the "
                f"{self.matched} that match"
            )
        return (
            f"checkpoint version chain covers {self.matched} of "
            f"{self.expected} segment(s); the rest will be computed fresh"
        )


def match_chain(
    stored: Sequence[str], expected: Sequence[str]
) -> ChainMatch:
    """Longest-common-prefix comparison of two fingerprint chains."""
    stored = [str(item) for item in stored]
    expected = [str(item) for item in expected]
    for index in range(min(len(stored), len(expected))):
        if stored[index] != expected[index]:
            return ChainMatch(
                matched=index,
                stored=len(stored),
                expected=len(expected),
                diverged_index=index,
                expected_fingerprint=expected[index],
                found_fingerprint=stored[index],
            )
    return ChainMatch(
        matched=min(len(stored), len(expected)),
        stored=len(stored),
        expected=len(expected),
    )


def node_to_json(node: "LatticeNode") -> dict[str, Any]:
    return {"a": list(node.attributes), "l": list(node.levels)}


def node_from_json(data: dict[str, Any]) -> "LatticeNode":
    from repro.lattice.node import LatticeNode

    return LatticeNode(tuple(data["a"]), tuple(int(x) for x in data["l"]))


def nodes_to_json(nodes) -> list[dict[str, Any]]:
    return [node_to_json(node) for node in nodes]


def nodes_from_json(items) -> list["LatticeNode"]:
    return [node_from_json(item) for item in items]


def frequency_set_to_json(frequency_set) -> dict[str, Any]:
    """JSON-encode one frequency set (node + raw code/count arrays).

    Only used for *boundary* sets — the handful of per-level rollup
    sources the next level still needs — never whole caches, so the
    plain-list encoding stays small.
    """
    return {
        "node": node_to_json(frequency_set.node),
        "key_codes": frequency_set.key_codes.tolist(),
        "counts": frequency_set.counts.tolist(),
    }


def frequency_set_from_json(data: dict[str, Any], problem):
    """Rebuild a frequency set persisted with :func:`frequency_set_to_json`."""
    from repro.core.anonymity import FrequencySet
    from repro.relational.column import CODE_DTYPE

    node = node_from_json(data["node"])
    key_codes = np.asarray(data["key_codes"], dtype=CODE_DTYPE).reshape(
        -1, len(node.attributes)
    )
    counts = np.asarray(data["counts"], dtype=np.int64)
    return FrequencySet(node, key_codes, counts, problem)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
#: Internal sentinel: a checkpoint file exists but cannot be trusted.
_CORRUPT = object()


class CheckpointStore:
    """Atomic persistence of one search's level-granular progress.

    Corruption is survived, not raised: ``atomic_write_json`` makes a
    torn *write* impossible on POSIX-atomic filesystems, but power loss
    mid-rename on filesystems without atomic replacement, bit rot, or a
    stray editor can still leave an unparseable file.  :meth:`load`
    detects that, **quarantines** the bad file (renamed with a
    ``.quarantined`` suffix so the evidence survives for inspection) and
    falls back to the *previous* level's snapshot — :meth:`save` rotates
    the outgoing checkpoint to a ``.prev`` sibling before writing the new
    one — so a resumable run loses at most one level of progress instead
    of crashing at startup.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: Number of successful saves performed through this store.
        self.saves = 0
        #: Files quarantined by :meth:`load` (empty in healthy runs).
        self.quarantined: list[Path] = []
        #: True when the last load served the rotated previous snapshot.
        self.fell_back = False

    @property
    def previous_path(self) -> Path:
        """Where :meth:`save` rotates the outgoing snapshot."""
        return self.path.with_name(self.path.name + ".prev")

    def load(self) -> dict[str, Any] | None:
        """The persisted state, or None when no usable checkpoint exists.

        A corrupt current file is quarantined and the previous level's
        rotated snapshot is served instead; if that is also missing or
        corrupt, the result is None — "start fresh", never an exception.
        """
        self.fell_back = False
        state = self._read_state(self.path)
        if state is _CORRUPT:
            self._quarantine(self.path)
            state = self._read_state(self.previous_path)
            if state is _CORRUPT:
                self._quarantine(self.previous_path)
                state = None
            elif state is not None:
                self.fell_back = True
        return state  # type: ignore[return-value]

    def _read_state(self, path: Path):
        """Parse one checkpoint file: dict, None (absent), or _CORRUPT."""
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            state = json.loads(text)
        except json.JSONDecodeError:
            return _CORRUPT
        return state if isinstance(state, dict) else _CORRUPT

    def _quarantine(self, path: Path) -> None:
        """Move a bad file aside (never deleted: it is evidence)."""
        target = path.with_name(path.name + ".quarantined")
        try:
            path.replace(target)
        except OSError:
            return
        self.quarantined.append(target)

    def load_matching(self, header: dict[str, Any]) -> dict[str, Any] | None:
        """The state if every ``header`` field matches, else None.

        A header mismatch (different algorithm, k, fingerprint, or format)
        is not an error — it means the checkpoint belongs to a different
        run and the caller should start fresh (the next save overwrites).
        """
        state = self.load()
        if state is None:
            return None
        for key, expected in header.items():
            if state.get(key) != expected:
                return None
        return state

    def load_chain(
        self, header: dict[str, Any], chain: Sequence[str]
    ) -> tuple[dict[str, Any] | None, ChainMatch | None]:
        """Chain-aware load: the state plus how much of its chain is valid.

        Non-chain ``header`` fields (algorithm, k, format, ...) behave
        like :meth:`load_matching` — any mismatch means "different run,
        start fresh" and returns ``(None, None)``.  The stored ``"chain"``
        list, however, is *diffed* against the live ``chain`` rather than
        discarded on inequality: the returned :class:`ChainMatch` reports
        the longest matching prefix and, on divergence, exactly which
        segment disagrees with which fingerprints — so a caller can keep
        every piece of state derived from the still-valid prefix instead
        of silently throwing the whole checkpoint away.
        """
        state = self.load()
        if state is None:
            return None, None
        for key, expected in header.items():
            if state.get(key) != expected:
                return None, None
        stored = state.get("chain")
        if not isinstance(stored, list):
            raise CheckpointError(
                f"checkpoint {self.path} carries no version chain; "
                f"delete it to start fresh"
            )
        return state, match_chain(stored, chain)

    def save(self, state: dict[str, Any]) -> None:
        """Atomically persist ``state``, rotating the old snapshot aside.

        The outgoing checkpoint becomes ``<name>.prev`` *before* the new
        one is written, so there is always a one-level-older fallback for
        :meth:`load` to quarantine-recover into.  A crash between the
        rotate and the write leaves only ``.prev`` — a resume then redoes
        exactly one level, which is the degradation contract.
        """
        try:
            self.path.replace(self.previous_path)
        except OSError:
            pass  # first save, or rotation impossible — never blocks saving
        atomic_write_json(self.path, state)
        self.saves += 1

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)
        self.previous_path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.path)!r}, saves={self.saves})"


# ----------------------------------------------------------------------
# region default (fixed-signature callers: bench table, figure sweeps)
# ----------------------------------------------------------------------
_default_dir: Path | None = None
_default_resume: bool = False


def set_default_checkpoints(
    directory: str | Path | None, resume: bool = False
) -> tuple[Path | None, bool]:
    """Install a region-default checkpoint directory; returns the previous."""
    global _default_dir, _default_resume
    previous = (_default_dir, _default_resume)
    _default_dir = Path(directory) if directory is not None else None
    _default_resume = bool(resume)
    return previous


@contextmanager
def use_checkpoints(
    directory: str | Path | None, resume: bool = False
) -> Iterator[Path | None]:
    """Temporarily install a region-default checkpoint directory."""
    previous = set_default_checkpoints(directory, resume)
    try:
        yield _default_dir
    finally:
        set_default_checkpoints(previous[0], previous[1])


def resolve_checkpoint(
    tag: str, problem: "PreparedTable", k: int
) -> tuple[CheckpointStore | None, bool]:
    """The region-default store for one algorithm run, plus the resume flag.

    Returns ``(None, False)`` when no directory is installed.  The file
    name is deterministic in (algorithm tag, k, problem fingerprint), so
    a re-run of the same sweep finds its own checkpoints and runs over
    different problems or k values never collide.
    """
    if _default_dir is None:
        return None, False
    fingerprint = problem_fingerprint(problem)[:16]
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", tag)
    path = _default_dir / f"{safe}-k{k}-{fingerprint}.ckpt.json"
    return CheckpointStore(path), _default_resume
