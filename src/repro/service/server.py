"""The asyncio HTTP/JSON front end of the anonymization service.

Deliberately a *thin protocol shim*: no framework, no routing table
magic — just ``asyncio.start_server``, a small HTTP/1.1 request parser,
and a handful of routes that translate between JSON documents and the
synchronous :class:`~repro.service.manager.JobManager` (blocking manager
calls run in the default executor so the event loop never stalls on a
lock or a dataset spill).

Routes::

    POST   /jobs            submit a job spec        202 | 400 | 429 | 503
    GET    /jobs            job summaries            200
    GET    /jobs/{id}       full job record          200 | 404
    GET    /jobs/{id}/result terminal result payload 200 | 404 | 409
    DELETE /jobs/{id}       cancel                   200 | 404 | 409
    GET    /healthz         liveness + SLO state     200 | 503
    GET    /metrics         service counters/metrics 200
    GET    /metrics?format=prometheus  text exposition      200
    GET    /metrics/history sampled delta time series 200

Admission refusals map to explicit status codes — ``429`` for
``queue_full`` / ``tenant_budget``, ``503`` for ``draining`` — with the
machine-readable reason in the body, per the bounded-overload contract.

On start the server writes ``server.json`` (pid, host, bound port)
atomically into the data directory: with ``port=0`` the OS picks the
port, and the chaos harness needs both the port to talk to and the pid
to SIGKILL.  SIGTERM/SIGINT trigger the graceful path: stop accepting,
then :meth:`JobManager.drain` checkpoints running jobs and compacts the
store before the process exits.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from pathlib import Path
from typing import Any

from repro.resilience.atomicio import atomic_write_json
from repro.service.jobs import AdmissionError, JobSpec, JobValidationError
from repro.service.manager import JobManager

#: Hard limits on request framing (one job spec is small by design).
MAX_HEADER_BYTES = 16_384
MAX_BODY_BYTES = 8_000_000

#: File the running server describes itself in (pid, host, port).
SERVER_INFO_FILE = "server.json"

_REASON_STATUS = {"queue_full": 429, "tenant_budget": 429, "draining": 503}

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _query_params(query: str) -> dict[str, str]:
    """Parse a query string into a flat dict (last value wins)."""
    params: dict[str, str] = {}
    for piece in query.split("&"):
        if piece:
            name, _, value = piece.partition("=")
            params[name] = value
    return params


class _HttpError(Exception):
    """Routes raise this to short-circuit into an error response."""

    def __init__(self, status: int, document: dict[str, Any]) -> None:
        super().__init__(document.get("error", ""))
        self.status = status
        self.document = document


class ServiceServer:
    """One listening server bound to one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, record the bound address in ``server.json``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        await self._call(
            atomic_write_json,
            self.manager.data_dir / SERVER_INFO_FILE,
            {"pid": os.getpid(), "host": self.host, "port": self.port},
        )

    async def _call(self, fn: Any, *args: Any) -> Any:
        """Run a blocking callable on the default executor.

        Every manager entry point takes the manager lock, and result/
        info reads touch the filesystem; awaiting them directly would
        stall the event loop for every connected client (RA007).
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.manager.counters.incr("service.requests")
        try:
            method, path, body, headers = await self._read_request(reader)
            status, document = await self._route(method, path, body, headers)
        except _HttpError as error:
            status, document = error.status, error.document
        except (asyncio.IncompleteReadError, ConnectionError, TimeoutError):
            writer.close()
            return
        except Exception as error:  # noqa: BLE001 - one request, not the server
            self.manager.counters.incr("service.request_errors")
            status, document = 500, {"error": f"{type(error).__name__}: {error}"}
        if status >= 400:
            self.manager.counters.incr("service.request_errors")
        if isinstance(document, str):
            # Text route (the Prometheus exposition); everything else
            # stays JSON.
            payload = document.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            payload = json.dumps(document).encode()
            content_type = "application/json"
        writer.write(
            (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + payload
        )
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes, dict[str, str]]:
        header_blob = await reader.readuntil(b"\r\n\r\n")
        if len(header_blob) > MAX_HEADER_BYTES:
            raise _HttpError(413, {"error": "headers too large"})
        head, *header_lines = header_blob.decode("latin-1").split("\r\n")
        parts = head.split()
        if len(parts) != 3:
            raise _HttpError(400, {"error": f"malformed request line {head!r}"})
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in header_lines:
            name, _, value = line.partition(":")
            if name:
                headers[name.strip().lower()] = value.strip()
        content_length = 0
        if "content-length" in headers:
            try:
                content_length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, {"error": "bad Content-Length"})
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, {"error": "body too large"})
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        return method.upper(), path, body, headers

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes, headers: dict[str, str]
    ) -> tuple[int, dict[str, Any] | str]:
        path, _, query = path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            document = await self._call(self.manager.health_document)
            # A breached SLO degrades liveness: 503 with the breached
            # objectives named, so load balancers and probes see it.
            # Draining stays 200 — shutdown is intended, not unhealthy.
            status = 503 if document.get("status") == "degraded" else 200
            return status, document
        if path == "/metrics" and method == "GET":
            if _query_params(query).get("format") == "prometheus":
                return 200, await self._call(self.manager.prometheus_document)
            return 200, await self._call(self.manager.metrics_document)
        if path == "/metrics/history" and method == "GET":
            return 200, await self._call(self.manager.history_document)
        if path == "/jobs":
            if method == "GET":
                return 200, {"jobs": await self._call(self.manager.list_jobs)}
            if method == "POST":
                return await self._submit(body, headers.get("traceparent"))
            raise _HttpError(405, {"error": f"{method} not allowed on /jobs"})
        if path.startswith("/jobs/"):
            return await self._job_route(method, path)
        raise _HttpError(404, {"error": f"no route for {path!r}"})

    async def _submit(
        self, body: bytes, traceparent: str | None = None
    ) -> tuple[int, dict[str, Any]]:
        try:
            document = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _HttpError(400, {"error": f"body is not JSON: {error}"})
        if not isinstance(document, dict):
            raise _HttpError(400, {"error": "job spec must be a JSON object"})
        try:
            spec = JobSpec.from_json(document)
        except (JobValidationError, TypeError) as error:
            raise _HttpError(400, {"error": str(error)})
        try:
            record = await self._call(self.manager.submit, spec, traceparent)
        except AdmissionError as error:
            raise _HttpError(
                _REASON_STATUS.get(error.reason, 429),
                {"error": error.detail, "reason": error.reason},
            )
        except (JobValidationError, ValueError) as error:
            raise _HttpError(400, {"error": str(error)})
        return 202, {"id": record.id, "state": record.state}

    async def _job_route(
        self, method: str, path: str
    ) -> tuple[int, dict[str, Any]]:
        pieces = path.split("/")  # ["", "jobs", id, ...rest]
        job_id = pieces[2]
        rest = pieces[3:]
        record = await self._call(self.manager.get, job_id)
        if record is None:
            raise _HttpError(404, {"error": f"no job {job_id!r}"})
        if not rest:
            if method == "GET":
                return 200, record.to_json()
            if method == "DELETE":
                if record.terminal:
                    raise _HttpError(
                        409,
                        {"error": f"job {job_id} is already {record.state}"},
                    )
                cancelled = await self._call(self.manager.cancel, job_id)
                return 200, cancelled.to_json() if cancelled else {}
            raise _HttpError(405, {"error": f"{method} not allowed"})
        if rest == ["result"] and method == "GET":
            if not record.terminal:
                raise _HttpError(
                    409, {"error": f"job {job_id} is still {record.state}"}
                )
            result = await self._call(self.manager.result, job_id)
            if result is None:
                return 200, {
                    "status": record.state,
                    "cause": record.cause,
                }
            return 200, result
        raise _HttpError(404, {"error": f"no route for {path!r}"})


async def serve_async(server: ServiceServer) -> None:
    """Run until SIGTERM/SIGINT, then stop accepting and drain."""
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # non-unix event loops
            pass
    await server.start()
    await stop.wait()
    await server.stop()
    await loop.run_in_executor(None, server.manager.drain)


def run_server(
    data_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_running: int = 2,
    max_queue: int = 16,
    tenant_budget: int = 4,
    heartbeat_timeout: float | None = None,
    max_attempts: int = 3,
    fault_spec: str | None = None,
    slo_p99_seconds: float | None = None,
    slo_error_rate: float | None = None,
    slo_queue_depth: int | None = None,
    sample_interval: float = 2.0,
) -> None:
    """Blocking entry point behind ``repro serve``.

    Builds the manager (recovering any persisted jobs), binds, serves
    until a termination signal, then drains gracefully.  The three
    ``slo_*`` thresholds (each optional) arm the telemetry sampler's
    rolling windows; any breach degrades ``/healthz`` to 503 until the
    window recovers.
    """
    from repro.obs.telemetry import SloPolicy
    from repro.resilience.faults import FaultPlan
    from repro.service.manager import DEFAULT_HEARTBEAT_TIMEOUT

    manager = JobManager(
        data_dir,
        max_running=max_running,
        max_queue=max_queue,
        tenant_budget=tenant_budget,
        heartbeat_timeout=(
            heartbeat_timeout
            if heartbeat_timeout is not None
            else DEFAULT_HEARTBEAT_TIMEOUT
        ),
        max_attempts=max_attempts,
        fault_plan=FaultPlan.from_spec(fault_spec) if fault_spec else None,
        slo_policy=SloPolicy(
            p99_latency_seconds=slo_p99_seconds,
            max_error_rate=slo_error_rate,
            max_queue_depth=slo_queue_depth,
        ),
        sample_interval=sample_interval,
    )
    manager.start()
    try:
        asyncio.run(serve_async(ServiceServer(manager, host, port)))
    finally:
        manager.drain()  # idempotent; covers non-signal exits
