"""The per-job subprocess runner: isolation, heartbeats, drain, resume.

Every accepted job executes in its own *spawned* subprocess
(:func:`run_job_child` is the process target), for three reasons the
robustness contract depends on:

* **crash containment** — a runner that segfaults, OOMs, or is killed by
  the watchdog takes down one job's attempt, never the server;
* **budget enforcement** — per-job execution mode and worker count are
  just the existing :class:`~repro.parallel.ExecutionConfig`, installed
  inside the child, so one tenant's shard fan-out cannot commandeer
  another job's workers;
* **resumability** — the child checkpoints through the job's own
  :class:`~repro.resilience.CheckpointStore` after every completed
  level, so any later attempt (retry, drain, whole-server restart)
  resumes with ``resume=True`` and never re-scans completed levels.

Liveness is a heartbeat file: a daemon thread touches
``<job_dir>/heartbeat`` every :data:`HEARTBEAT_INTERVAL` seconds, and the
manager's watchdog treats a stale mtime as a hung runner — kill, then
retry with backoff.  A *graceful* stop (server drain) is SIGTERM: the
child converts it into a :class:`DrainRequested` raised at the next
bytecode boundary, records a ``drained`` result, and exits cleanly; the
level checkpoint already on disk is the drain point.

Fault injection reuses the seeded :class:`~repro.resilience.FaultPlan`
vocabulary one layer up: the manager draws ``(job seq, attempt)`` →
crash/timeout decisions from the plan and ships them as *directives*;
the child applies them **after its first checkpoint save**, so an
injected crash always exercises true mid-flight resume (and an injected
hang stops the heartbeat first, so the watchdog path actually fires).

:func:`run_job_inline` is the differential oracle: the same spec
executed directly in-process, no subprocess, no checkpoint — the chaos
suite asserts byte-identical payloads between the two.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.resilience.atomicio import atomic_write_json
from repro.resilience.checkpoint import CheckpointStore

if TYPE_CHECKING:
    from repro.service.jobs import JobSpec

#: Seconds between heartbeat touches in the child.
HEARTBEAT_INTERVAL = 0.2

#: Exit code of an injected runner crash (mirrors the worker-fault code).
CRASH_EXIT_CODE = 73

#: File names inside one job's directory.
RESULT_FILE = "result.json"
HEARTBEAT_FILE = "heartbeat"
CHECKPOINT_FILE = "checkpoint.ckpt.json"
TRACE_FILE = "trace.jsonl"
LOG_FILE = "runner.log"


class DrainRequested(BaseException):
    """SIGTERM received: stop at the next bytecode boundary and drain.

    Derives from ``BaseException`` so ordinary ``except Exception``
    error handling inside algorithms cannot swallow a drain.
    """


def _algorithm_registry() -> dict[str, Callable]:
    from repro.core.binary_search import samarati_binary_search
    from repro.core.bottomup import bottom_up_search
    from repro.core.cube import cube_incognito
    from repro.core.incognito import basic_incognito
    from repro.core.superroots import superroots_incognito

    return {
        "basic": basic_incognito,
        "superroots": superroots_incognito,
        "cube": cube_incognito,
        "binary": samarati_binary_search,
        "bottomup": bottom_up_search,
    }


# ----------------------------------------------------------------------
# result payloads (shared by the child and the inline oracle)
# ----------------------------------------------------------------------
def frequency_fingerprint(problem: Any, node: Any) -> str:
    """Content hash of one node's frequency set (fresh scan, no cache).

    The chaos suite's bit-identity witness: two runs that produce the
    same fingerprint computed the same key codes and counts byte for
    byte, whatever path (resume, retry, degradation) they took.
    """
    from repro.core.anonymity import FrequencyEvaluator
    from repro.core.stats import SearchStats

    frequency_set = FrequencyEvaluator(problem, SearchStats()).scan(node)
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(frequency_set.key_codes).tobytes())
    digest.update(np.ascontiguousarray(frequency_set.counts).tobytes())
    return digest.hexdigest()


def result_payload(
    problem: Any, result: Any, spec_json: dict[str, Any]
) -> dict[str, Any]:
    """The job's terminal result document (also the comparable oracle).

    ``comparable()`` below names the subset that must be bit-identical
    between a service execution (with any number of crashes, resumes,
    and retries along the way) and a direct batch run.
    """
    best = result.best_node() if result.found else None
    counters = {
        key: value
        for key, value in result.stats.as_dict().items()
        if key.startswith("frequency.")
    }
    return {
        "status": "succeeded",
        "found": bool(result.found),
        "anonymous_nodes": [node.label() for node in result.anonymous_nodes],
        "best_node": best.label() if best is not None else None,
        "fingerprint": (
            frequency_fingerprint(problem, best) if best is not None else None
        ),
        "frequency_counters": counters,
        "nodes_checked": int(result.stats.nodes_checked),
        "k": spec_json["k"],
        "algorithm": spec_json["algorithm"],
    }


def comparable(payload: dict[str, Any]) -> dict[str, Any]:
    """The payload subset the bit-identity contract covers."""
    return {
        key: payload[key]
        for key in (
            "found",
            "anonymous_nodes",
            "best_node",
            "fingerprint",
            "frequency_counters",
            "k",
            "algorithm",
        )
    }


def run_job_inline(spec: "JobSpec") -> dict[str, Any]:
    """Execute a job spec directly in-process: the differential oracle.

    No subprocess, no checkpointing, no supervision — the plain batch
    path a ``repro.cli`` run would take.  Chaos tests compare
    ``comparable()`` of this against the service's persisted result.
    """
    from repro.service.connectors import load_problem

    problem = load_problem(spec)
    algorithm = _algorithm_registry()[spec.algorithm]
    with _execution_region(spec):
        result = algorithm(problem, spec.k, max_suppression=spec.max_suppression)
    return result_payload(problem, result, spec.to_json())


def _execution_region(spec: "JobSpec") -> Any:
    from repro.parallel import ExecutionConfig, use_execution

    return use_execution(
        ExecutionConfig(
            mode=spec.mode if spec.workers > 1 else "serial",
            workers=spec.workers,
            shard_rows=spec.shard_rows,
        )
    )


# ----------------------------------------------------------------------
# child-side machinery
# ----------------------------------------------------------------------
class _Heartbeat:
    """Daemon thread touching the job's heartbeat file at a fixed cadence."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )

    def start(self) -> None:
        self.path.touch()
        self._thread.start()

    def _run(self) -> None:
        while not self.stop.wait(HEARTBEAT_INTERVAL):
            try:
                self.path.touch()
            except OSError:
                return  # job dir vanished: the parent is tearing us down


class _FaultingStore(CheckpointStore):
    """Checkpoint store that injects a runner fault after the first save.

    Crashing *after* a save is what makes the injection meaningful: the
    next attempt finds a valid checkpoint and must genuinely resume.
    ``hang`` silences the heartbeat first — a wedged process stops
    beating, and the watchdog (not the fault) must kill it.
    """

    def __init__(
        self, path: Path, directive: str, heartbeat: _Heartbeat
    ) -> None:
        super().__init__(path)
        self.directive = directive
        self.heartbeat = heartbeat

    def save(self, state: dict[str, Any]) -> None:
        super().save(state)
        if self.saves != 1:
            return
        if self.directive == "crash":
            os._exit(CRASH_EXIT_CODE)  # noqa: SLF001 - simulated runner death
        if self.directive == "hang":
            self.heartbeat.stop.set()
            while True:  # wedged: no beats, no progress, no exit
                time.sleep(3600)


def _install_drain_handler() -> None:
    def handler(signum: int, frame: object) -> None:
        raise DrainRequested()

    signal.signal(signal.SIGTERM, handler)


class _StructuredLog:
    """``runner.log`` as JSON lines that correlate with the trace.

    Every line carries the job id and trace/span ids, so ``grep
    <trace_id> runner.log`` finds the lifecycle events of exactly the
    attempts a stitched Chrome trace shows.  Write failures are
    swallowed: logging must never take down an attempt.
    """

    def __init__(self, handle: Any, **common: Any) -> None:
        self._handle = handle
        self._common = common

    def bind(self, **fields: Any) -> None:
        self._common.update(fields)

    def event(self, event: str, **fields: Any) -> None:
        record = {"ts": time.time(), "event": event}
        record.update(self._common)
        record.update(fields)
        try:
            self._handle.write(json.dumps(record, default=str) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            pass


def run_job_child(
    spec_json: dict[str, Any],
    job_dir: str,
    resume: bool,
    directive: str | None,
    traceparent: str | None = None,
) -> None:
    """Process target: execute one job attempt inside its own process.

    Writes ``result.json`` atomically with status ``succeeded`` /
    ``failed`` / ``drained`` and exits 0; any other exit (crash, kill,
    injected death) leaves no result file, which the manager treats as a
    crashed attempt.  Trace spans land in ``trace.jsonl`` per job —
    opened in append mode so earlier attempts' spans survive, and
    parented under the manager's launch span via ``traceparent``, so
    every attempt of the job shares the trace id minted at submission.
    """
    from repro import obs
    from repro.service.jobs import JobSpec

    directory = Path(job_dir)
    _install_drain_handler()
    heartbeat = _Heartbeat(directory / HEARTBEAT_FILE)
    heartbeat.start()
    # Everything after start() runs under the outer try: an exception in
    # setup (log open, spec parse, sink open) must still stop the
    # heartbeat thread, or a dead attempt keeps beating and the watchdog
    # never learns (RA008).
    try:
        log_handle = open(directory / LOG_FILE, "a", encoding="utf-8")
        sys.stdout = log_handle  # noqa: RA000 - child-scoped redirect
        sys.stderr = log_handle

        spec = JobSpec.from_json(spec_json)
        sink = obs.JsonLinesSink.open(directory / TRACE_FILE, append=True)
        context = obs.TraceContext.from_traceparent(traceparent)
        tracer = obs.Tracer(sink, context=context)
        log = _StructuredLog(
            log_handle,
            job_id=directory.name,
            pid=os.getpid(),
            trace_id=tracer.trace_id,
        )
        store: CheckpointStore = (
            _FaultingStore(directory / CHECKPOINT_FILE, directive, heartbeat)
            if directive is not None
            else CheckpointStore(directory / CHECKPOINT_FILE)
        )
        try:
            with obs.use_tracer(tracer):
                with obs.span(
                    "service.job.run",
                    job_dir=str(directory.name),
                    algorithm=spec.algorithm,
                    attempt_resume=bool(resume),
                ) as sp:
                    # Pool/shard workers spawned below inherit these:
                    # where to write their own span files, and which
                    # trace position to fall back to when a chunk
                    # payload carries no context of its own.
                    os.environ[obs.TRACE_DIR_ENV] = str(directory)
                    os.environ[obs.TRACEPARENT_ENV] = sp.traceparent()
                    log.bind(span_id=sp.span_id)
                    log.event(
                        "attempt_start",
                        algorithm=spec.algorithm,
                        mode=spec.mode,
                        resume=bool(resume),
                        directive=directive,
                    )
                    from repro.service.connectors import load_problem

                    problem = load_problem(spec)
                    algorithm = _algorithm_registry()[spec.algorithm]
                    with _execution_region(spec):
                        result = algorithm(
                            problem,
                            spec.k,
                            max_suppression=spec.max_suppression,
                            checkpoint=store,
                            resume=resume,
                        )
                    payload = result_payload(problem, result, spec.to_json())
            atomic_write_json(directory / RESULT_FILE, payload)
            log.event("attempt_finished", status="succeeded")
        except DrainRequested:
            atomic_write_json(
                directory / RESULT_FILE,
                {"status": "drained", "saves": store.saves},
            )
            log.event("attempt_finished", status="drained", saves=store.saves)
        except BaseException as error:  # noqa: BLE001 - the job's cause
            cause = f"{type(error).__name__}: {error}"
            atomic_write_json(
                directory / RESULT_FILE,
                {"status": "failed", "cause": cause},
            )
            log.event("attempt_finished", status="failed", cause=cause)
        finally:
            try:
                sink.close()
            except OSError:
                pass
            log_handle.flush()
    finally:
        heartbeat.stop.set()


# ----------------------------------------------------------------------
# parent-side result collection helpers
# ----------------------------------------------------------------------
def read_result(job_dir: Path) -> dict[str, Any] | None:
    """The child's result document, or None when the attempt died raw.

    The file is written atomically by the child, so a parse failure is
    not a torn write — it is treated like a missing file (crashed
    attempt) rather than trusted.
    """
    try:
        text = (job_dir / RESULT_FILE).read_text()
    except FileNotFoundError:
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


def clear_attempt_artifacts(job_dir: Path) -> None:
    """Remove the previous attempt's result and heartbeat before a rerun.

    The stale heartbeat must go too — its old mtime would read as "hung"
    the instant the new attempt starts.  The checkpoint file deliberately
    survives: it is the resume point.
    """
    (job_dir / RESULT_FILE).unlink(missing_ok=True)
    (job_dir / HEARTBEAT_FILE).unlink(missing_ok=True)


def clear_terminal_artifacts(job_dir: Path) -> None:
    """Drop the resume machinery once a job can never run again.

    A terminal job (succeeded / failed / cancelled) has no further
    attempt to resume, so keeping its checkpoint would be an orphan —
    the chaos suite asserts none survive.  The result file stays: it is
    the job's deliverable.
    """
    CheckpointStore(job_dir / CHECKPOINT_FILE).clear()
    (job_dir / HEARTBEAT_FILE).unlink(missing_ok=True)
