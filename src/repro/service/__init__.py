"""``repro.service`` — anonymization as a crash-safe asynchronous service.

ROADMAP item 2: the batch reproduction wrapped in a long-lived,
multi-tenant job server.  The paper's algorithms stay untouched — the
service composes the machinery previous PRs built (supervised parallel
evaluation, checkpoint/resume, seeded fault injection, shared-memory
shards, the obs registry) into a serving layer whose headline property is
robustness:

* **jobs** (:mod:`repro.service.jobs`) — the explicit job state machine
  (``queued → running → succeeded | failed | cancelled``), validated
  specs, and admission errors;
* **connectors** (:mod:`repro.service.connectors`) — datasets by
  reference: ``builtin:``, ``csv:``, ``sqlite:``, ``memory:``;
* **wal** (:mod:`repro.service.wal`) — write-ahead, fsync'd persistence
  of every transition; queued/running jobs survive a server SIGKILL;
* **runner** (:mod:`repro.service.runner`) — per-job spawned
  subprocesses with heartbeats, SIGTERM-drain, checkpoint resume, and
  the bit-identity result fingerprint the chaos suite asserts;
* **manager** (:mod:`repro.service.manager`) — admission control,
  bounded retries with backoff, heartbeat/deadline watchdogs, startup
  recovery (including the shared-memory orphan sweep), graceful drain;
* **server** (:mod:`repro.service.server`) — the asyncio HTTP/JSON front
  end (``repro serve``), ``/healthz`` + ``/metrics`` included;
* **client** (:mod:`repro.service.client`) — a stdlib client used by the
  chaos harness, the bench workload, and the tests.

DESIGN.md §12 documents the failure model (state machine, WAL format,
drain semantics) in full.
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.connectors import (
    ConnectorError,
    describe_connectors,
    load_problem,
    load_table,
    parse_ref,
    register_memory_dataset,
    unregister_memory_dataset,
)
from repro.service.jobs import (
    JOB_ALGORITHMS,
    JOB_MODES,
    TERMINAL_STATES,
    AdmissionError,
    JobRecord,
    JobSpec,
    JobValidationError,
)
from repro.service.manager import JobManager
from repro.service.server import ServiceServer, run_server
from repro.service.wal import JobStore

__all__ = [
    "JOB_ALGORITHMS",
    "JOB_MODES",
    "TERMINAL_STATES",
    "AdmissionError",
    "ConnectorError",
    "JobManager",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "JobValidationError",
    "ServiceClient",
    "ServiceServer",
    "ServiceUnavailable",
    "describe_connectors",
    "load_problem",
    "load_table",
    "parse_ref",
    "register_memory_dataset",
    "run_server",
    "unregister_memory_dataset",
]
