"""Dataset connectors: resolve a job's dataset reference to a problem.

The service accepts datasets by *reference*, so job payloads stay small
and the same job document works against in-memory fixtures, files on
disk, and real stores.  A reference is ``kind:target`` with optional
``?key=value`` parameters:

``builtin:adults?rows=2000&qi=4``
    The paper's seeded synthetic databases (``adults``, ``landsend``,
    ``patients``).  Hierarchies and quasi-identifier come with the
    dataset; ``rows`` caps the row count and ``qi`` the QI size.
``csv:/path/to/data.csv``
    A CSV file with a header row.  The job spec must carry ``qi`` and a
    ``hierarchies`` spec (:mod:`repro.hierarchy.spec` format).
``sqlite:/path/to/db.sqlite#tablename``
    One table of a SQLite database, read through the stdlib ``sqlite3``
    module.  Like csv, the job supplies ``qi`` + ``hierarchies``.
``memory:name``
    A table registered in-process via :func:`register_memory_dataset` —
    the fixture/test connector.  Because job runners are *spawned*
    subprocesses (nothing is inherited), the manager spills memory
    datasets to a CSV inside the job directory at submission time and
    rewrites the reference (:func:`spill_memory_dataset`), which also
    makes the job resumable after a server restart.

Connectors are deliberately read-only: a job loads its input, anonymizes,
and writes results into its own job directory — the service never mutates
a source store.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qsl, unquote

from repro.relational.schema import Schema
from repro.relational.table import Table

if TYPE_CHECKING:
    from repro.core.problem import PreparedTable
    from repro.service.jobs import JobSpec


class ConnectorError(ValueError):
    """A dataset reference cannot be parsed or resolved."""


#: In-process dataset registry backing the ``memory:`` connector.
_MEMORY_DATASETS: dict[str, Table] = {}


def register_memory_dataset(name: str, table: Table) -> None:
    """Register ``table`` under ``memory:name`` (replaces any previous)."""
    if not name:
        raise ConnectorError("memory dataset name must be non-empty")
    _MEMORY_DATASETS[name] = table


def unregister_memory_dataset(name: str) -> None:
    _MEMORY_DATASETS.pop(name, None)


def parse_ref(text: str) -> tuple[str, str, dict[str, str]]:
    """Split ``kind:target?params`` into its three pieces.

    A bare builtin name (``adults``) is accepted as ``builtin:`` shorthand
    so quick CLI submissions stay terse.
    """
    if not isinstance(text, str) or not text.strip():
        raise ConnectorError("dataset reference must be a non-empty string")
    text = text.strip()
    head, sep, rest = text.partition(":")
    if not sep:
        head, rest = "builtin", text
    kind = head.lower()
    if kind not in ("builtin", "csv", "sqlite", "memory"):
        raise ConnectorError(
            f"unknown dataset connector {kind!r} "
            f"(expected builtin:, csv:, sqlite:, or memory:)"
        )
    target, qsep, query = rest.partition("?")
    params = dict(parse_qsl(query)) if qsep else {}
    target = unquote(target)
    if not target:
        raise ConnectorError(f"dataset reference {text!r} names no target")
    return kind, target, params


def _int_param(params: dict[str, str], key: str) -> int | None:
    raw = params.get(key)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConnectorError(f"dataset parameter {key}={raw!r} is not an integer")
    if value < 1:
        raise ConnectorError(f"dataset parameter {key} must be >= 1, got {value}")
    return value


def _builtin_problem(target: str, params: dict[str, str]) -> "PreparedTable":
    from repro.datasets.adults import adults_problem
    from repro.datasets.landsend import landsend_problem
    from repro.datasets.patients import patients_problem

    rows = _int_param(params, "rows")
    qi_size = _int_param(params, "qi")
    name = target.lower()
    if name == "adults":
        return adults_problem(rows or 45_222, qi_size=qi_size)
    if name == "landsend":
        return landsend_problem(rows or 200_000, qi_size=qi_size)
    if name == "patients":
        return patients_problem()
    raise ConnectorError(
        f"unknown builtin dataset {target!r} "
        f"(expected adults, landsend, or patients)"
    )


def _load_sqlite(target: str) -> Table:
    path_text, sep, table_name = target.partition("#")
    if not sep or not table_name:
        raise ConnectorError(
            f"sqlite reference {target!r} must name a table: "
            f"sqlite:/path/db.sqlite#tablename"
        )
    path = Path(path_text)
    if not path.exists():
        raise ConnectorError(f"sqlite database {path} does not exist")
    connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        if not connection.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name=?",
            (table_name,),
        ).fetchone():
            raise ConnectorError(f"sqlite table {table_name!r} not found in {path}")
        # Identifier quoting: table names cannot be parameterised, but the
        # existence check above confines the name to real tables.
        quoted = table_name.replace('"', '""')
        cursor = connection.execute(f'SELECT * FROM "{quoted}"')
        names = [description[0] for description in cursor.description]
        rows = [tuple(row) for row in cursor.fetchall()]
    finally:
        connection.close()
    return Table.from_rows(Schema.of(*names), rows)


def load_table(ref: str) -> Table:
    """Resolve a non-builtin reference to its raw :class:`Table`."""
    kind, target, _ = parse_ref(ref)
    if kind == "csv":
        from repro.relational.csvio import read_csv

        path = Path(target)
        if not path.exists():
            raise ConnectorError(f"csv file {path} does not exist")
        return read_csv(path)
    if kind == "sqlite":
        return _load_sqlite(target)
    if kind == "memory":
        table = _MEMORY_DATASETS.get(target)
        if table is None:
            raise ConnectorError(
                f"no memory dataset registered under {target!r} "
                f"(register_memory_dataset first)"
            )
        return table
    raise ConnectorError(f"load_table cannot resolve builtin reference {ref!r}")


def load_problem(spec: "JobSpec") -> "PreparedTable":
    """Resolve a job spec's dataset + QI spec into a prepared problem.

    Builtin datasets carry their own hierarchies; every other connector
    requires the spec's ``hierarchies`` (and uses ``qi`` to order the
    quasi-identifier, defaulting to all hierarchy keys).
    """
    from repro.core.problem import PreparedTable
    from repro.hierarchy.spec import hierarchies_from_spec

    kind, target, params = parse_ref(spec.dataset)
    if kind == "builtin":
        return _builtin_problem(target, params)
    if not spec.hierarchies:
        raise ConnectorError(
            f"{kind}: datasets need a 'hierarchies' spec in the job payload"
        )
    table = load_table(spec.dataset)
    hierarchies = hierarchies_from_spec(spec.hierarchies)
    qi = list(spec.qi) if spec.qi else list(hierarchies)
    missing = [name for name in qi if name not in table.schema.names]
    if missing:
        raise ConnectorError(
            f"quasi-identifier column(s) {missing} not present in dataset "
            f"{spec.dataset!r}"
        )
    return PreparedTable(table, hierarchies, qi)


def spill_memory_dataset(spec: "JobSpec", job_dir: Path) -> "JobSpec":
    """Materialise a ``memory:`` reference into the job's directory.

    Job runners are spawned subprocesses and inherit nothing, and a
    server restart loses the in-process registry entirely — so at
    admission time the manager spills the registered table to
    ``<job_dir>/dataset.csv`` and rewrites the reference to ``csv:``.
    Non-memory references pass through untouched.
    """
    from dataclasses import replace

    from repro.relational.csvio import write_csv

    kind, target, _ = parse_ref(spec.dataset)
    if kind != "memory":
        return spec
    table = _MEMORY_DATASETS.get(target)
    if table is None:
        raise ConnectorError(
            f"no memory dataset registered under {target!r} "
            f"(register_memory_dataset first)"
        )
    job_dir.mkdir(parents=True, exist_ok=True)
    spill_path = job_dir / "dataset.csv"
    write_csv(table, spill_path)
    return replace(spec, dataset=f"csv:{spill_path}")


def describe_connectors() -> dict[str, Any]:
    """Connector inventory for the health endpoint / CLI diagnostics."""
    return {
        "kinds": ["builtin", "csv", "sqlite", "memory"],
        "memory_datasets": sorted(_MEMORY_DATASETS),
    }
