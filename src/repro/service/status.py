"""``repro status``: a live one-screen operational view of one server.

Renders, from a single round of ``/healthz`` + ``/metrics`` + ``/jobs``
requests, what an operator glancing at the service needs: overall health
(including which SLO is breached when the server is degraded), queue and
runner occupancy, per-tenant budget consumption, the active jobs, and
the top latency histograms.  Pure text on stdout — no curses, no
refresh loop — so it composes with ``watch``, pagers, and CI logs.

The entry point takes the path to the ``server.json`` a running server
wrote (or the data directory containing it), the same file the chaos
harness and tests use to find a server's ephemeral port.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.service.client import ServiceClient

#: Latency histograms shown, most interesting first; only instruments
#: with observations are rendered, and at most ``TOP_METRICS`` of them.
TOP_METRICS = 6

#: Instrument-name prefixes considered "latency" for the metrics panel.
LATENCY_PREFIXES = ("latency.", "worker.", "telemetry.")


def resolve_server_info(path: str | Path) -> Path:
    """Accept either ``server.json`` itself or its data directory."""
    from repro.service.server import SERVER_INFO_FILE

    candidate = Path(path)
    if candidate.is_dir():
        candidate = candidate / SERVER_INFO_FILE
    if not candidate.exists():
        raise FileNotFoundError(
            f"no server info at {candidate} — is the server running?"
        )
    return candidate


def client_from_info(path: str | Path, timeout: float = 5.0) -> ServiceClient:
    info = json.loads(resolve_server_info(path).read_text())
    return ServiceClient(info["host"], int(info["port"]), timeout=timeout)


def _format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _slo_lines(slo: dict[str, Any]) -> list[str]:
    policy = slo.get("policy") or {}
    if not policy:
        return ["  no SLO policy configured"]
    lines = []
    breached = {entry["name"]: entry for entry in slo.get("breached", ())}
    thresholds = {
        "p99_latency": policy.get("p99_latency_seconds"),
        "error_rate": policy.get("max_error_rate"),
        "queue_depth": policy.get("max_queue_depth"),
    }
    for name, threshold in thresholds.items():
        if threshold is None:
            continue
        entry = breached.get(name)
        if entry is None:
            lines.append(f"  OK      {name} (threshold {threshold:g})")
        else:
            lines.append(
                f"  BREACH  {name}: {entry['value']:g} > {threshold:g} "
                f"({entry['detail']})"
            )
    lines.append(f"  window: {slo.get('samples', 0)} sample(s)")
    return lines


def render_status(
    health: dict[str, Any],
    metrics: dict[str, Any],
    jobs: list[dict[str, Any]],
) -> str:
    """The one-screen view, from already-fetched documents (testable)."""
    lines: list[str] = []
    status = health.get("status", "unknown")
    lines.append(
        f"server: {status.upper()}  "
        f"running {health.get('running', 0)}/{health.get('max_running', 0)}  "
        f"queued {health.get('queue_depth', 0)}"
    )
    states = health.get("jobs") or {}
    if states:
        rendered = "  ".join(
            f"{state}={count}" for state, count in sorted(states.items())
        )
        lines.append(f"jobs: {rendered}")

    lines.append("slo:")
    lines.extend(_slo_lines(health.get("slo") or {}))

    tenants = health.get("tenants") or {}
    budget = health.get("tenant_budget")
    lines.append("tenants:")
    if tenants:
        for tenant in sorted(tenants):
            used = tenants[tenant]
            quota = f"/{budget}" if budget is not None else ""
            lines.append(f"  {tenant}: {used}{quota} active")
    else:
        lines.append("  none active")

    active = [
        job for job in jobs if job.get("state") in ("queued", "running")
    ]
    lines.append(f"active jobs ({len(active)}):")
    for job in active:
        flags = "".join(
            marker
            for marker, set_ in (
                ("R", job.get("resumed")),
                ("C", job.get("recovered")),
            )
            if set_
        )
        lines.append(
            f"  {job['id']}  {job['state']:<8} {job.get('tenant', '?'):<12} "
            f"{job.get('algorithm', '?')} k={job.get('k', '?')} "
            f"attempt={job.get('attempt', 0)}"
            + (f" [{flags}]" if flags else "")
        )
    if not active:
        lines.append("  none")

    summaries = metrics.get("metrics") or {}
    latency = [
        (name, summary)
        for name, summary in summaries.items()
        if name.startswith(LATENCY_PREFIXES) and summary.get("count")
    ]
    latency.sort(key=lambda item: -item[1].get("sum", 0.0))
    lines.append("top latency metrics:")
    for name, summary in latency[:TOP_METRICS]:
        lines.append(
            f"  {name}: n={int(summary['count'])} "
            f"p50={_format_seconds(summary.get('p50', 0.0))} "
            f"p99={_format_seconds(summary.get('p99', 0.0))} "
            f"max={_format_seconds(summary.get('max', 0.0))}"
        )
    if not latency:
        lines.append("  none recorded yet")
    return "\n".join(lines)


def render_status_from_info(path: str | Path, timeout: float = 5.0) -> str:
    """Fetch from the server named by ``server.json`` and render."""
    client = client_from_info(path, timeout=timeout)
    return render_status(client.healthz(), client.metrics(), client.jobs())
