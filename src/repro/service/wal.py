"""Crash-safe persistence of the job table: snapshot + fsync'd WAL.

Two files under the service data directory:

``jobs.snapshot.json``
    The compacted job table, written atomically
    (:func:`repro.resilience.atomicio.atomic_write_json`) — a reader sees
    a complete old snapshot or a complete new one, never a torn file.
``jobs.wal``
    An append-only JSON-lines log of full job records, one line per
    state transition, each appended with ``flush`` + ``fsync`` *before*
    the transition takes effect in memory.  Write-ahead in the strict
    sense: if the server process dies at any instant, the on-disk log is
    never behind what the server believed.

Replay is last-write-wins by job id (every line carries the whole
record), so recovery is ``snapshot ∪ wal`` with later sequence numbers
winning.  Torn tails are expected — a crash mid-append leaves a partial
final line, which replay drops silently (the transition it described
never finished happening).  A corrupt line *before* the tail means real
damage; it is counted and skipped rather than aborting recovery, because
a service that refuses to start over one bad record converts one lost
job into a lost store.

Compaction (startup and graceful shutdown) folds the WAL into a fresh
snapshot and truncates the log, bounding replay work by the live job
count instead of the server's lifetime transition count.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any

from repro.resilience.atomicio import atomic_write_json

#: Schema version of both the snapshot document and WAL lines.
WAL_FORMAT = 1

#: Compact at startup whenever the WAL holds at least this many lines.
COMPACT_THRESHOLD = 256


class JobStoreReplay:
    """Outcome of loading the store: records plus damage accounting."""

    def __init__(self) -> None:
        self.records: dict[str, dict[str, Any]] = {}
        self.max_seq: int = 0
        self.wal_lines: int = 0
        #: Corrupt non-tail lines skipped during replay (real damage).
        self.corrupt_lines: int = 0
        #: True when the final line was partial (normal crash artifact).
        self.torn_tail: bool = False

    def apply(self, record: dict[str, Any]) -> None:
        self.records[str(record["id"])] = record
        self.max_seq = max(self.max_seq, int(record.get("seq", 0)))


class JobStore:
    """The service's write-ahead job persistence (one directory)."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.snapshot_path = self.directory / "jobs.snapshot.json"
        self.wal_path = self.directory / "jobs.wal"
        self._wal_handle: IO[str] | None = None
        #: Lifetime appends through this store instance.
        self.appended = 0

    # ------------------------------------------------------------------
    # load / replay
    # ------------------------------------------------------------------
    def load(self) -> JobStoreReplay:
        """Rebuild the job table: snapshot first, then WAL replay."""
        replay = JobStoreReplay()
        snapshot = self._read_snapshot()
        for record in snapshot:
            replay.apply(record)
        self._replay_wal(replay)
        return replay

    def _read_snapshot(self) -> list[dict[str, Any]]:
        try:
            text = self.snapshot_path.read_text()
        except FileNotFoundError:
            return []
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            # The snapshot is written atomically; a torn one cannot exist
            # by construction.  A corrupt one is external damage — treat
            # it as absent (the WAL still holds every live transition
            # since the last compaction).
            return []
        if not isinstance(document, dict):
            return []
        jobs = document.get("jobs")
        return [job for job in jobs if isinstance(job, dict)] if isinstance(
            jobs, list
        ) else []

    def _replay_wal(self, replay: JobStoreReplay) -> None:
        try:
            raw = self.wal_path.read_bytes()
        except FileNotFoundError:
            return
        if not raw:
            return
        lines = raw.split(b"\n")
        # A file ending in "\n" splits with one trailing empty piece; a
        # torn tail is a non-empty final piece with no newline after it.
        tail_complete = raw.endswith(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for index, line in enumerate(lines):
            replay.wal_lines += 1
            last = index == len(lines) - 1
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict) or "job" not in entry:
                    raise ValueError("not a WAL entry")
                replay.apply(entry["job"])
            except (ValueError, KeyError, TypeError):
                if last and not tail_complete:
                    replay.torn_tail = True
                else:
                    replay.corrupt_lines += 1

    # ------------------------------------------------------------------
    # append / compact
    # ------------------------------------------------------------------
    def _handle(self) -> IO[str]:
        if self._wal_handle is None or self._wal_handle.closed:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Append-only by design: the WAL's durability comes from the
            # per-record fsync below, not from atomic replacement — a log
            # is the one file the atomic-write primitive cannot model.
            self._wal_handle = open(self.wal_path, "a", encoding="utf-8")
        return self._wal_handle

    def append(self, record: dict[str, Any]) -> None:
        """Durably log one full job record *before* acting on it.

        The line is flushed and fsync'd before this returns — the
        write-ahead contract.  ``sort_keys`` keeps lines diffable; the
        compact separators keep the log small.
        """
        handle = self._handle()
        handle.write(
            json.dumps(
                {"format": WAL_FORMAT, "job": record},
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        )
        handle.flush()
        os.fsync(handle.fileno())
        self.appended += 1

    def compact(self, records: dict[str, dict[str, Any]], max_seq: int) -> None:
        """Fold the live table into the snapshot and truncate the WAL.

        Ordering is what makes this crash-safe: the snapshot (holding
        everything the WAL held) lands atomically *first*; only then is
        the log truncated.  A crash between the two replays the old WAL
        over the new snapshot — records are full and last-write-wins, so
        the double-apply is harmless.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        snapshot = {
            "format": WAL_FORMAT,
            "max_seq": max_seq,
            "jobs": [records[key] for key in sorted(records)],
        }
        atomic_write_json(self.snapshot_path, snapshot)
        self.close()
        with open(self.wal_path, "w", encoding="utf-8") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def wal_line_count(self) -> int:
        try:
            with open(self.wal_path, "rb") as handle:
                return sum(1 for _ in handle)
        except FileNotFoundError:
            return 0

    def close(self) -> None:
        handle, self._wal_handle = self._wal_handle, None
        if handle is not None and not handle.closed:
            handle.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
